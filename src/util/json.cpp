#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sidet {

// --- JsonObject --------------------------------------------------------------

bool JsonObject::contains(std::string_view key) const { return find(key) != nullptr; }

const Json* JsonObject::find(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json* JsonObject::find(std::string_view key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& JsonObject::operator[](std::string_view key) {
  if (Json* existing = find(key)) return *existing;
  entries_.emplace_back(std::string(key), Json());
  return entries_.back().second;
}

bool JsonObject::operator==(const JsonObject& other) const {
  // Order-insensitive equality: two objects with the same members are equal.
  if (entries_.size() != other.entries_.size()) return false;
  for (const auto& [k, v] : entries_) {
    const Json* theirs = other.find(k);
    if (theirs == nullptr || !(*theirs == v)) return false;
  }
  return true;
}

// --- Lookup helpers ----------------------------------------------------------

double Json::number_or(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::move(fallback);
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

// --- Printing ----------------------------------------------------------------

std::string JsonQuote(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void AppendNumber(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

}  // namespace

void Json::DumpTo(std::string& out) const {
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += as_bool() ? "true" : "false"; break;
    case Type::kNumber: AppendNumber(out, as_number()); break;
    case Type::kString: out += JsonQuote(as_string()); break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : as_array()) {
        if (!first) out.push_back(',');
        first = false;
        item.DumpTo(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : as_object()) {
        if (!first) out.push_back(',');
        first = false;
        out += JsonQuote(k);
        out.push_back(':');
        v.DumpTo(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out);
  return out;
}

void Json::PrettyTo(std::string& out, int indent, int depth) const {
  const auto pad = [&](int d) { out.append(static_cast<std::size_t>(indent) * d, ' '); };
  switch (type()) {
    case Type::kArray: {
      const JsonArray& arr = as_array();
      if (arr.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr.size(); ++i) {
        pad(depth + 1);
        arr[i].PrettyTo(out, indent, depth + 1);
        if (i + 1 < arr.size()) out.push_back(',');
        out.push_back('\n');
      }
      pad(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const JsonObject& obj = as_object();
      if (obj.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      std::size_t i = 0;
      for (const auto& [k, v] : obj) {
        pad(depth + 1);
        out += JsonQuote(k);
        out += ": ";
        v.PrettyTo(out, indent, depth + 1);
        if (++i < obj.size()) out.push_back(',');
        out.push_back('\n');
      }
      pad(depth);
      out.push_back('}');
      break;
    }
    default:
      DumpTo(out);
  }
}

std::string Json::Pretty(int indent) const {
  std::string out;
  PrettyTo(out, indent, 0);
  return out;
}

// --- Parsing -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipSpace();
    Result<Json> value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters after JSON value");
    return value;
  }

 private:
  Error MakeError(const std::string& what) const {
    return Error("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }
  Result<Json> Fail(const std::string& what) const { return MakeError(what); }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char Take() { return text_[pos_++]; }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' || Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (++depth_ > kMaxDepth) return Fail("nesting too deep");
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth_};

    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case 'n': return Consume("null") ? Result<Json>(Json(nullptr)) : Fail("expected 'null'");
      case 't': return Consume("true") ? Result<Json>(Json(true)) : Fail("expected 'true'");
      case 'f': return Consume("false") ? Result<Json>(Json(false)) : Fail("expected 'false'");
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.error();
        return Json(std::move(s).value());
      }
      case '[': return ParseArray();
      case '{': return ParseObject();
      default: return ParseNumber();
    }
  }

  Result<std::string> ParseString() {
    if (AtEnd() || Take() != '"') return MakeError("expected '\"'");
    std::string out;
    while (true) {
      if (AtEnd()) return MakeError("unterminated string");
      char c = Take();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return MakeError("unterminated escape");
      c = Take();
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return MakeError("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = Take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return MakeError("bad hex digit in \\u escape");
          }
          // Encode as UTF-8 (surrogate pairs not needed for our data; encode
          // the raw code point).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return MakeError("unknown escape");
      }
    }
  }

  Result<Json> ParseNumber() {
    const std::size_t start = pos_;
    if (!AtEnd() && (Peek() == '-' || Peek() == '+')) ++pos_;
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) || Peek() == '.' ||
                        Peek() == 'e' || Peek() == 'E' || Peek() == '-' || Peek() == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("malformed number '" + token + "'");
    return Json(value);
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    JsonArray arr;
    SkipSpace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      SkipSpace();
      Result<Json> item = ParseValue();
      if (!item.ok()) return item;
      arr.push_back(std::move(item).value());
      SkipSpace();
      if (AtEnd()) return Fail("unterminated array");
      const char c = Take();
      if (c == ']') return Json(std::move(arr));
      if (c != ',') return Fail("expected ',' or ']' in array");
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    JsonObject obj;
    SkipSpace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      SkipSpace();
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.error();
      SkipSpace();
      if (AtEnd() || Take() != ':') return Fail("expected ':' in object");
      SkipSpace();
      Result<Json> value = ParseValue();
      if (!value.ok()) return value;
      obj[key.value()] = std::move(value).value();
      SkipSpace();
      if (AtEnd()) return Fail("unterminated object");
      const char c = Take();
      if (c == '}') return Json(std::move(obj));
      if (c != ',') return Fail("expected ',' or '}' in object");
    }
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) { return Parser(text).Parse(); }

}  // namespace sidet
