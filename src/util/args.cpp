#include "util/args.h"

#include <cassert>
#include <cstdlib>

#include "util/strings.h"

namespace sidet {

void ArgParser::AddFlag(const std::string& name, std::string default_value,
                        std::string description) {
  flags_[name] = Flag{std::move(default_value), std::move(description)};
}

Status ArgParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (!StartsWith(token, "--")) {
      positional_.push_back(token);
      continue;
    }
    std::string name = token.substr(2);
    std::string value;
    if (const std::size_t eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else {
      if (i + 1 >= argc) return Error("flag --" + name + " lacks a value");
      value = argv[++i];
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) return Error("unknown flag --" + name);
    it->second.value = std::move(value);
  }
  return Status::Ok();
}

const std::string& ArgParser::Get(const std::string& name) const {
  const auto it = flags_.find(name);
  assert(it != flags_.end());
  return it->second.value;
}

std::int64_t ArgParser::GetInt(const std::string& name) const {
  return std::strtoll(Get(name).c_str(), nullptr, 10);
}

double ArgParser::GetDouble(const std::string& name) const {
  return std::strtod(Get(name).c_str(), nullptr);
}

bool ArgParser::GetBool(const std::string& name) const {
  const std::string lowered = ToLower(Get(name));
  return lowered == "true" || lowered == "1" || lowered == "yes";
}

std::string ArgParser::Help(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (default: " + flag.value + ")";
    if (!flag.description.empty()) out += "  " + flag.description;
    out += '\n';
  }
  return out;
}

}  // namespace sidet
