// Minimal but complete JSON: value model, recursive-descent parser, printer.
//
// The paper's sensor data collector normalizes every vendor's sensor reply
// into "unified data in JSON format" (§IV.B.3); the REST bridge and the miio
// payloads also speak JSON. This is the single JSON implementation used by
// all of them.
//
// Object member order is preserved (insertion order), which keeps printed
// packets and golden tests stable.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/result.h"

namespace sidet {

class Json;

using JsonArray = std::vector<Json>;

// Insertion-ordered string -> Json map.
class JsonObject {
 public:
  bool contains(std::string_view key) const;
  // Returns nullptr when absent.
  const Json* find(std::string_view key) const;
  Json* find(std::string_view key);
  // Inserts a null value when absent.
  Json& operator[](std::string_view key);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }
  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }

  bool operator==(const JsonObject& other) const;

 private:
  std::vector<std::pair<std::string, Json>> entries_;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}          // NOLINT
  Json(bool b) : value_(b) {}                        // NOLINT
  Json(double d) : value_(d) {}                      // NOLINT
  Json(int i) : value_(static_cast<double>(i)) {}    // NOLINT
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(std::uint64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}    // NOLINT
  Json(std::string s) : value_(std::move(s)) {}      // NOLINT
  Json(std::string_view s) : value_(std::string(s)) {}  // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}        // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}       // NOLINT

  static Json Array() { return Json(JsonArray{}); }
  static Json Object() { return Json(JsonObject{}); }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Typed accessors assert on type mismatch (programming error).
  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  std::int64_t as_int() const { return static_cast<std::int64_t>(as_number()); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  // Object convenience: value[key]. Creates members on mutable access.
  Json& operator[](std::string_view key) { return as_object()[key]; }
  // Returns nullptr when this is not an object or the key is absent.
  const Json* find(std::string_view key) const {
    return is_object() ? as_object().find(key) : nullptr;
  }

  // Lookup with fallback — the common "optional field" pattern.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;

  bool operator==(const Json& other) const { return value_ == other.value_; }

  // Compact single-line form.
  std::string Dump() const;
  // Pretty-printed with the given indent width.
  std::string Pretty(int indent = 2) const;

  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string& out) const;
  void PrettyTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

// Escapes a string per RFC 8259 (quotes included).
std::string JsonQuote(std::string_view raw);

}  // namespace sidet
