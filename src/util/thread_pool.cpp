#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace sidet {

std::size_t ThreadPool::DefaultThreadCount() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : reported;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t resolved = threads == 0 ? DefaultThreadCount() : threads;
  if (resolved <= 1) return;  // inline mode: no workers, no queue consumers
  workers_.reserve(resolved);
  for (std::size_t i = 0; i < resolved; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::SetHooks(ThreadPoolHooks hooks) {
  const std::lock_guard<std::mutex> lock(mu_);
  hooks_ = std::move(hooks);
  has_hooks_.store(hooks_.queue_depth != nullptr || hooks_.task_seconds != nullptr,
                   std::memory_order_release);
}

// Runs one task, timing it when the task_seconds hook is installed. Hooks
// are copied under the lock and invoked outside it, so a slow observer never
// serializes the queue.
void ThreadPool::RunTask(std::packaged_task<void()>& task) {
  if (!has_hooks_.load(std::memory_order_acquire)) {
    task();
    return;
  }
  std::function<void(double)> observe;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    observe = hooks_.task_seconds;
  }
  if (!observe) {
    task();
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  task();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  observe(elapsed.count());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    std::size_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    if (has_hooks_.load(std::memory_order_acquire)) {
      std::function<void(std::size_t)> on_depth;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        on_depth = hooks_.queue_depth;
      }
      if (on_depth) on_depth(depth);
    }
    RunTask(task);
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (inline_mode()) {
    RunTask(packaged);
    return future;
  }
  std::size_t depth = 0;
  std::function<void(std::size_t)> on_depth;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
    depth = queue_.size();
    if (has_hooks_.load(std::memory_order_relaxed)) on_depth = hooks_.queue_depth;
  }
  cv_.notify_one();
  if (on_depth) on_depth(depth);
  return future;
}

namespace {

// Chunk geometry shared by the member and one-shot chunked loops: ranges of
// `per` indices (a multiple of `align`, at least `min_chunk`) across at most
// `lane_limit` lanes.
struct ChunkPlan {
  std::size_t lanes = 1;
  std::size_t per = 0;
};

ChunkPlan PlanChunks(std::size_t n, std::size_t lane_limit, std::size_t min_chunk,
                     std::size_t align) {
  if (min_chunk == 0) min_chunk = 1;
  if (align == 0) align = 1;
  ChunkPlan plan;
  if (n == 0) return plan;
  const std::size_t max_lanes = std::max<std::size_t>(1, n / min_chunk);
  const std::size_t lanes = std::max<std::size_t>(1, std::min(lane_limit, max_lanes));
  std::size_t per = (n + lanes - 1) / lanes;
  per = ((per + align - 1) / align) * align;  // round up to the block size
  plan.per = per;
  plan.lanes = (n + per - 1) / per;
  return plan;
}

}  // namespace

void ThreadPool::ParallelForChunks(
    std::size_t n, std::size_t min_chunk, std::size_t align,
    const std::function<void(std::size_t lane, std::size_t begin, std::size_t end)>& body) {
  if (n == 0) return;
  const ChunkPlan plan = PlanChunks(n, size(), min_chunk, align);
  if (inline_mode() || plan.lanes <= 1) {
    body(0, 0, n);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(plan.lanes);
  for (std::size_t lane = 0; lane < plan.lanes; ++lane) {
    const std::size_t begin = lane * plan.per;
    const std::size_t end = std::min(n, begin + plan.per);
    futures.push_back(Submit([&body, lane, begin, end] { body(lane, begin, end); }));
  }
  for (std::future<void>& future : futures) future.get();
}

void ThreadPool::ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (inline_mode() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t lanes = std::min(size(), n);
  // Dynamic chunked scheduling: cheap enough for fine-grained bodies, and
  // self-balancing when per-index cost is skewed (deep vs shallow trees).
  const std::size_t grain = std::max<std::size_t>(1, n / (lanes * 8));
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(Submit([next, grain, n, &body] {
      for (;;) {
        const std::size_t begin = next->fetch_add(grain);
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + grain);
        for (std::size_t i = begin; i < end; ++i) body(i);
      }
    }));
  }
  for (std::future<void>& future : futures) future.get();
}

std::size_t ResolveLaneCount(int threads) {
  const std::size_t hardware = ThreadPool::DefaultThreadCount();
  if (threads <= 0) return hardware;
  return std::min(static_cast<std::size_t>(threads), hardware);
}

void ParallelFor(int threads, std::size_t n, const std::function<void(std::size_t)>& body) {
  const std::size_t resolved = ResolveLaneCount(threads);
  if (resolved <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(std::min(resolved, n));
  pool.ParallelFor(n, body);
}

void ParallelForChunks(int threads, std::size_t n, std::size_t min_chunk, std::size_t align,
                       const std::function<void(std::size_t lane, std::size_t begin,
                                                std::size_t end)>& body) {
  if (n == 0) return;
  const std::size_t resolved = ResolveLaneCount(threads);
  const ChunkPlan plan = PlanChunks(n, resolved, min_chunk, align);
  if (plan.lanes <= 1) {
    body(0, 0, n);
    return;
  }
  ThreadPool pool(plan.lanes);
  pool.ParallelForChunks(n, min_chunk, align, body);
}

}  // namespace sidet
