#include "util/sim_clock.h"

#include "util/strings.h"

namespace sidet {

DaySegment SimTime::day_segment() const {
  const int h = hour();
  if (h < 6) return DaySegment::kNight;
  if (h < 12) return DaySegment::kMorning;
  if (h < 18) return DaySegment::kAfternoon;
  return DaySegment::kEvening;
}

const char* ToString(DayOfWeek day) {
  switch (day) {
    case DayOfWeek::kMonday: return "Mon";
    case DayOfWeek::kTuesday: return "Tue";
    case DayOfWeek::kWednesday: return "Wed";
    case DayOfWeek::kThursday: return "Thu";
    case DayOfWeek::kFriday: return "Fri";
    case DayOfWeek::kSaturday: return "Sat";
    case DayOfWeek::kSunday: return "Sun";
  }
  return "?";
}

const char* ToString(DaySegment segment) {
  switch (segment) {
    case DaySegment::kNight: return "night";
    case DaySegment::kMorning: return "morning";
    case DaySegment::kAfternoon: return "afternoon";
    case DaySegment::kEvening: return "evening";
  }
  return "?";
}

std::string SimTime::ToString() const {
  return Format("d%lld %02d:%02d:%02lld (%s)", static_cast<long long>(day()), hour(), minute(),
                static_cast<long long>(second_of_day() % 60),
                sidet::ToString(day_of_week()));
}

}  // namespace sidet
