#include "util/alloc_probe.h"

namespace sidet {
namespace detail {

thread_local std::size_t alloc_probe_count = 0;
bool alloc_probe_active = false;

}  // namespace detail
}  // namespace sidet
