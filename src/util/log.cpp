#include "util/log.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace sidet {

namespace {

std::mutex g_mutex;

void DefaultSink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s\n", ToString(level), static_cast<int>(message.size()),
               message.data());
}

LogSink& GlobalSink() {
  static LogSink sink = DefaultSink;
  return sink;
}

// First use reads SIDET_LOG_LEVEL exactly once; SetMinLogLevel overrides.
LogLevel& MinLevelRef() {
  static LogLevel level = [] {
    const char* env = std::getenv("SIDET_LOG_LEVEL");
    return env == nullptr ? LogLevel::kInfo : ParseLogLevel(env, LogLevel::kInfo);
  }();
  return level;
}

}  // namespace

const char* ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

LogLevel ParseLogLevel(std::string_view text, LogLevel fallback) {
  std::string lowered(text);
  for (char& c : lowered) {
    if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
  }
  if (lowered == "debug" || lowered == "0") return LogLevel::kDebug;
  if (lowered == "info" || lowered == "1") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning" || lowered == "2") return LogLevel::kWarn;
  if (lowered == "error" || lowered == "3") return LogLevel::kError;
  return fallback;
}

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  LogSink previous = std::move(GlobalSink());
  GlobalSink() = std::move(sink);
  return previous;
}

void SetMinLogLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  MinLevelRef() = level;
}

LogLevel MinLogLevel() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return MinLevelRef();
}

void Log(LogLevel level, std::string_view message) {
  // Copy the sink under the lock, invoke it outside: a sink that itself logs
  // (re-entrancy) or blocks must not deadlock or serialize every other
  // logging thread behind it.
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (level < MinLevelRef()) return;
    sink = GlobalSink();
  }
  if (sink) sink(level, message);
}

ScopedLogCapture::ScopedLogCapture(std::string& captured) {
  previous_ = SetLogSink([&captured](LogLevel level, std::string_view message) {
    captured += std::string(ToString(level)) + ": " + std::string(message) + "\n";
  });
}

ScopedLogCapture::~ScopedLogCapture() { SetLogSink(std::move(previous_)); }

}  // namespace sidet
