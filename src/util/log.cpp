#include "util/log.h"

#include <cstdio>
#include <mutex>
#include <utility>

namespace sidet {

namespace {

std::mutex g_mutex;
LogLevel g_min_level = LogLevel::kInfo;

void DefaultSink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s\n", ToString(level), static_cast<int>(message.size()),
               message.data());
}

LogSink& GlobalSink() {
  static LogSink sink = DefaultSink;
  return sink;
}

}  // namespace

const char* ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  LogSink previous = std::move(GlobalSink());
  GlobalSink() = std::move(sink);
  return previous;
}

void SetMinLogLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_min_level = level;
}

void Log(LogLevel level, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (level < g_min_level) return;
  if (GlobalSink()) GlobalSink()(level, message);
}

ScopedLogCapture::ScopedLogCapture(std::string& captured) {
  previous_ = SetLogSink([&captured](LogLevel level, std::string_view message) {
    captured += std::string(ToString(level)) + ": " + std::string(message) + "\n";
  });
}

ScopedLogCapture::~ScopedLogCapture() { SetLogSink(std::move(previous_)); }

}  // namespace sidet
