#include "util/bytes.h"

#include <algorithm>

namespace sidet {

void ByteWriter::U16Be(std::uint16_t v) {
  U8(static_cast<std::uint8_t>(v >> 8));
  U8(static_cast<std::uint8_t>(v));
}

void ByteWriter::U32Be(std::uint32_t v) {
  U16Be(static_cast<std::uint16_t>(v >> 16));
  U16Be(static_cast<std::uint16_t>(v));
}

void ByteWriter::U64Be(std::uint64_t v) {
  U32Be(static_cast<std::uint32_t>(v >> 32));
  U32Be(static_cast<std::uint32_t>(v));
}

void ByteWriter::U16Le(std::uint16_t v) {
  U8(static_cast<std::uint8_t>(v));
  U8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::U32Le(std::uint32_t v) {
  U16Le(static_cast<std::uint16_t>(v));
  U16Le(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::U64Le(std::uint64_t v) {
  U32Le(static_cast<std::uint32_t>(v));
  U32Le(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::Raw(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::Raw(std::string_view text) {
  buffer_.insert(buffer_.end(), text.begin(), text.end());
}

void ByteWriter::FixedString(std::string_view text, std::size_t width) {
  const std::size_t n = std::min(text.size(), width);
  Raw(text.substr(0, n));
  Pad(width - n);
}

void ByteWriter::Pad(std::size_t count, std::uint8_t fill) {
  buffer_.insert(buffer_.end(), count, fill);
}

void ByteWriter::PatchU32Be(std::size_t offset, std::uint32_t v) {
  ByteWriter tmp;
  tmp.U32Be(v);
  PatchRaw(offset, tmp.data());
}

void ByteWriter::PatchRaw(std::size_t offset, std::span<const std::uint8_t> bytes) {
  std::copy(bytes.begin(), bytes.end(),
            buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
}

namespace {
Error Short(std::size_t want, std::size_t have) {
  return Error("short read: want " + std::to_string(want) + " bytes, have " +
               std::to_string(have));
}
}  // namespace

Result<std::uint8_t> ByteReader::U8() {
  if (remaining() < 1) return Short(1, remaining());
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::U16Be() {
  if (remaining() < 2) return Short(2, remaining());
  const auto hi = data_[pos_], lo = data_[pos_ + 1];
  pos_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

Result<std::uint32_t> ByteReader::U32Be() {
  if (remaining() < 4) return Short(4, remaining());
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::U64Be() {
  if (remaining() < 8) return Short(8, remaining());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

Result<std::uint16_t> ByteReader::U16Le() {
  if (remaining() < 2) return Short(2, remaining());
  const auto lo = data_[pos_], hi = data_[pos_ + 1];
  pos_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

Result<std::uint32_t> ByteReader::U32Le() {
  if (remaining() < 4) return Short(4, remaining());
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::U64Le() {
  if (remaining() < 8) return Short(8, remaining());
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

Result<Bytes> ByteReader::Raw(std::size_t count) {
  if (remaining() < count) return Short(count, remaining());
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += count;
  return out;
}

Result<std::string> ByteReader::FixedString(std::size_t width) {
  Result<Bytes> raw = Raw(width);
  if (!raw.ok()) return raw.error();
  const Bytes& b = raw.value();
  std::size_t len = b.size();
  while (len > 0 && b[len - 1] == 0) --len;
  return std::string(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(len));
}

Status ByteReader::Skip(std::size_t count) {
  if (remaining() < count) return Short(count, remaining());
  pos_ += count;
  return Status::Ok();
}

Status ByteReader::SeekTo(std::size_t offset) {
  if (offset > data_.size()) {
    return Error("seek to " + std::to_string(offset) + " beyond buffer of " +
                 std::to_string(data_.size()));
  }
  pos_ = offset;
  return Status::Ok();
}

std::string ToHex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

Result<Bytes> FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) return Error("hex string has odd length");
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return Error("bad hex digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes ToBytes(std::string_view text) { return Bytes(text.begin(), text.end()); }

std::string ToString(std::span<const std::uint8_t> bytes) {
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace sidet
