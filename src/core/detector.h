// SensitiveInstructionDetector — component 1 of the Fig 3 framework.
//
// Makes "the first judgment on all the IoT devices' commands": is this a
// high-threat (sensitive) instruction? Configured from the questionnaire
// survey's measured threat profile; a control instruction is sensitive when
// more than `threshold` of respondents rated its device category high-threat
// (§IV.A). Status-acquisition instructions are never sensitive.
#pragma once

#include "instructions/instruction.h"
#include "instructions/threat.h"

namespace sidet {

class SensitiveInstructionDetector {
 public:
  explicit SensitiveInstructionDetector(ThreatProfile profile, double threshold = 0.5);

  bool IsSensitive(const Instruction& instruction) const;
  bool IsSensitiveCategory(DeviceCategory category) const;
  std::vector<DeviceCategory> SensitiveCategories() const;
  const ThreatProfile& profile() const { return profile_; }
  double threshold() const { return threshold_; }

 private:
  ThreatProfile profile_;
  double threshold_;
};

}  // namespace sidet
