// SensorDataCollector — component 2 of the Fig 3 framework.
//
// "Collect the data of the relevant sensors in real-time during the
// execution of the instruction request" (§IV.B), across both vendor stacks:
// the miio-style encrypted gateway (Xiaomi path) and the Home-Assistant-style
// REST bridge (SmartThings path). Vendor replies are merged into one
// normalized JSON-backed SensorSnapshot.
//
// Fault tolerance: transient transport faults are retried with jittered
// exponential backoff under a per-collection deadline budget; a per-vendor
// circuit breaker stops hammering a dead stack; on vendor failure the
// collector degrades instead of aborting — it serves the vendor's
// last-known-good readings (with staleness stamps) and reports coverage in
// the snapshot's SnapshotQuality. Collect only hard-fails when every
// configured vendor is unreachable with no usable cache.
#pragma once

#include <memory>
#include <optional>

#include "core/circuit_breaker.h"
#include "protocol/miio_gateway.h"
#include "protocol/mqtt.h"
#include "protocol/rest_bridge.h"
#include "sensors/snapshot.h"
#include "telemetry/metrics.h"
#include "util/json.h"
#include "util/sim_clock.h"

namespace sidet {

// Jittered exponential backoff between retry attempts, in simulated seconds.
struct BackoffPolicy {
  std::int64_t initial_seconds = 1;
  double multiplier = 2.0;
  std::int64_t max_seconds = 30;
  double jitter = 0.25;  // each wait scaled by uniform [1-jitter, 1+jitter]
};

struct CollectorConfig {
  int max_retries = 3;  // extra attempts per vendor per Collect (clamped >= 0)
  BackoffPolicy backoff;
  CircuitBreakerConfig breaker;
  // Total simulated-time budget for one Collect call (polls + backoff waits).
  std::int64_t deadline_budget_seconds = 120;
  // Cached readings older than this are not served as stale fallback.
  std::int64_t max_cache_age_seconds = 6 * kSecondsPerHour;
  // Serving a breaker-open vendor's last-known-good readings past this age is
  // worth shouting about (stale_beyond_horizon + warn log): a long-dead stack
  // still shaping verdicts is exactly what a sensor-compromise campaign wants.
  std::int64_t lkg_warn_staleness_seconds = 1800;
  std::uint64_t jitter_seed = 0xbacc0ff;
};

struct CollectorStats {
  std::size_t collections = 0;
  std::size_t miio_retries = 0;
  std::size_t rest_retries = 0;
  std::size_t failures = 0;  // Collect-level failures (no vendor served)
  std::size_t mqtt_snapshots = 0;
  std::size_t mqtt_failures = 0;      // push source had nothing / errored
  std::size_t vendor_failures = 0;    // per-vendor live-poll give-ups
  std::size_t stale_serves = 0;       // vendor served from last-known-good
  // Stale serves for a breaker-open vendor past lkg_warn_staleness_seconds.
  std::size_t stale_beyond_horizon = 0;
  std::size_t breaker_skips = 0;      // polls skipped on an open breaker
  std::size_t deadline_stops = 0;     // retry ladders cut by the budget
  std::int64_t backoff_wait_seconds = 0;  // simulated time spent backing off

  Json ToJson() const;
};

class SensorDataCollector {
 public:
  // Either client may be absent (single-vendor home). Retries are per
  // vendor, per Collect call.
  SensorDataCollector(std::unique_ptr<MiioClient> miio, std::unique_ptr<RestClient> rest,
                      int max_retries = 3);
  SensorDataCollector(std::unique_ptr<MiioClient> miio, std::unique_ptr<RestClient> rest,
                      CollectorConfig config);

  // Attaches a push-based (MQTT) source; its last-known readings merge into
  // every Collect result under the polled vendors' readings.
  void AttachMqtt(std::unique_ptr<MqttCollector> mqtt);

  // Enables real backoff waits and deadline accounting: waits advance this
  // clock, and the per-collection budget is measured on it. Not owned.
  // Without a clock, retries are immediate and only attempt-bounded.
  void AttachClock(SimClock* clock) { clock_ = clock; }

  // Polls every sensor both stacks serve and merges the readings. `now`
  // stamps the snapshot. Degrades through the cache on vendor failure; fails
  // only when no configured vendor could serve anything.
  Result<SensorSnapshot> Collect(SimTime now);

  // Mirrors CollectorStats into `sidet_collector_*` counters, records
  // per-vendor retry/breaker-transition counters and backoff/staleness
  // histograms, and publishes the last snapshot's SnapshotQuality as gauges.
  // Passing nullptr detaches. Not owned; must outlive the collector.
  void AttachTelemetry(MetricsRegistry* registry);

  const CollectorStats& stats() const { return stats_; }
  const CircuitBreaker& miio_breaker() const { return miio_vendor_.breaker; }
  const CircuitBreaker& rest_breaker() const { return rest_vendor_.breaker; }

 private:
  struct VendorRuntime {
    CircuitBreaker breaker;
    std::optional<SensorSnapshot> cache;  // last-known-good readings
    SimTime cache_at{};
    std::size_t* retry_counter = nullptr;

    explicit VendorRuntime(const CircuitBreakerConfig& config) : breaker(config) {}
  };

  // Pre-resolved metric handles; absent (null) when telemetry is detached.
  struct Instruments {
    Counter* collections;
    Counter* failures;
    Counter* vendor_failures;
    Counter* stale_serves;
    Counter* stale_beyond_horizon;
    Counter* breaker_skips;
    Counter* deadline_stops;
    Counter* mqtt_snapshots;
    Counter* mqtt_failures;
    Counter* miio_retries;
    Counter* rest_retries;
    Counter* backoff_wait_seconds_total;
    Histogram* backoff_wait_seconds;
    Histogram* staleness_seconds;
    Gauge* last_coverage;
    Gauge* last_fresh_readings;
    Gauge* last_stale_readings;
    Gauge* last_missing_vendors;
    CollectorStats mirrored;  // last stats snapshot pushed to the counters
  };

  SimTime Now(SimTime fallback) const;
  void Wait(std::int64_t seconds);
  void WireBreakerObserver(VendorRuntime& vendor, const char* vendor_label,
                           MetricsRegistry* registry);
  // Pushes the stats delta since the last flush into the mirrored counters
  // and publishes `quality` (when non-null) as the last-snapshot gauges.
  void FlushTelemetry(const SnapshotQuality* quality);
  // Polls one vendor with backoff/breaker/deadline and merges into `merged`;
  // falls back to the vendor's cache on failure. Returns the quality report.
  template <typename PollFn>
  VendorQuality CollectVendor(const char* name, PollFn&& poll, VendorRuntime& vendor,
                              SensorSnapshot& merged, SimTime now, SimTime deadline);

  std::unique_ptr<MiioClient> miio_;
  std::unique_ptr<RestClient> rest_;
  std::unique_ptr<MqttCollector> mqtt_;
  CollectorConfig config_;
  SimClock* clock_ = nullptr;  // not owned
  Rng jitter_rng_;
  VendorRuntime miio_vendor_;
  VendorRuntime rest_vendor_;
  CollectorStats stats_;
  std::unique_ptr<Instruments> telemetry_;  // null when detached
};

}  // namespace sidet
