// SensorDataCollector — component 2 of the Fig 3 framework.
//
// "Collect the data of the relevant sensors in real-time during the
// execution of the instruction request" (§IV.B), across both vendor stacks:
// the miio-style encrypted gateway (Xiaomi path) and the Home-Assistant-style
// REST bridge (SmartThings path). Vendor replies are merged into one
// normalized JSON-backed SensorSnapshot. Transient transport faults are
// retried per vendor.
#pragma once

#include <memory>
#include <optional>

#include "protocol/miio_gateway.h"
#include "protocol/mqtt.h"
#include "protocol/rest_bridge.h"
#include "sensors/snapshot.h"
#include "util/sim_clock.h"

namespace sidet {

struct CollectorStats {
  std::size_t collections = 0;
  std::size_t miio_retries = 0;
  std::size_t rest_retries = 0;
  std::size_t failures = 0;
  std::size_t mqtt_snapshots = 0;
};

class SensorDataCollector {
 public:
  // Either client may be absent (single-vendor home). Retries are per
  // vendor, per Collect call.
  SensorDataCollector(std::unique_ptr<MiioClient> miio, std::unique_ptr<RestClient> rest,
                      int max_retries = 3);

  // Attaches a push-based (MQTT) source; its last-known readings merge into
  // every Collect result under the polled vendors' readings.
  void AttachMqtt(std::unique_ptr<MqttCollector> mqtt);

  // Polls every sensor both stacks serve and merges the readings. `now`
  // stamps the snapshot. Fails when any present vendor stays unreachable
  // after retries.
  Result<SensorSnapshot> Collect(SimTime now);

  const CollectorStats& stats() const { return stats_; }

 private:
  std::unique_ptr<MiioClient> miio_;
  std::unique_ptr<RestClient> rest_;
  std::unique_ptr<MqttCollector> mqtt_;
  int max_retries_;
  CollectorStats stats_;
};

}  // namespace sidet
