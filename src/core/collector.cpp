#include "core/collector.h"

#include <algorithm>

#include "telemetry/exporters.h"
#include "util/log.h"
#include "util/strings.h"

namespace sidet {

Json CollectorStats::ToJson() const {
  Json out = Json::Object();
  out["collections"] = collections;
  out["miio_retries"] = miio_retries;
  out["rest_retries"] = rest_retries;
  out["failures"] = failures;
  out["mqtt_snapshots"] = mqtt_snapshots;
  out["mqtt_failures"] = mqtt_failures;
  out["vendor_failures"] = vendor_failures;
  out["stale_serves"] = stale_serves;
  out["stale_beyond_horizon"] = stale_beyond_horizon;
  out["breaker_skips"] = breaker_skips;
  out["deadline_stops"] = deadline_stops;
  out["backoff_wait_seconds"] = backoff_wait_seconds;
  return out;
}

SensorDataCollector::SensorDataCollector(std::unique_ptr<MiioClient> miio,
                                         std::unique_ptr<RestClient> rest, int max_retries)
    : SensorDataCollector(std::move(miio), std::move(rest), [max_retries] {
        CollectorConfig config;
        config.max_retries = max_retries;
        return config;
      }()) {}

SensorDataCollector::SensorDataCollector(std::unique_ptr<MiioClient> miio,
                                         std::unique_ptr<RestClient> rest,
                                         CollectorConfig config)
    : miio_(std::move(miio)),
      rest_(std::move(rest)),
      config_(config),
      jitter_rng_(config.jitter_seed),
      miio_vendor_(config.breaker),
      rest_vendor_(config.breaker) {
  // A negative retry count used to mean "never attempt a poll" and surfaced
  // as a bogus vendor failure; clamp so 0 means exactly one attempt.
  config_.max_retries = std::max(config_.max_retries, 0);
  miio_vendor_.retry_counter = &stats_.miio_retries;
  rest_vendor_.retry_counter = &stats_.rest_retries;
}

void SensorDataCollector::AttachMqtt(std::unique_ptr<MqttCollector> mqtt) {
  mqtt_ = std::move(mqtt);
}

void SensorDataCollector::WireBreakerObserver(VendorRuntime& vendor,
                                              const char* vendor_label,
                                              MetricsRegistry* registry) {
  if (registry == nullptr) {
    vendor.breaker.SetTransitionObserver(nullptr);
    return;
  }
  const std::string vendor_labels = PrometheusLabel("vendor", vendor_label);
  Counter* to_open = registry->GetCounter("sidet_collector_breaker_transitions_total",
                                          vendor_labels + "," + PrometheusLabel("to", "open"),
                                          "Circuit-breaker state transitions");
  Counter* to_half = registry->GetCounter(
      "sidet_collector_breaker_transitions_total",
      vendor_labels + "," + PrometheusLabel("to", "half-open"),
      "Circuit-breaker state transitions");
  Counter* to_closed = registry->GetCounter(
      "sidet_collector_breaker_transitions_total",
      vendor_labels + "," + PrometheusLabel("to", "closed"),
      "Circuit-breaker state transitions");
  vendor.breaker.SetTransitionObserver(
      [to_open, to_half, to_closed](BreakerState, BreakerState to) {
        switch (to) {
          case BreakerState::kOpen: to_open->Increment(); break;
          case BreakerState::kHalfOpen: to_half->Increment(); break;
          case BreakerState::kClosed: to_closed->Increment(); break;
        }
      });
}

void SensorDataCollector::AttachTelemetry(MetricsRegistry* registry) {
  WireBreakerObserver(miio_vendor_, "miio", registry);
  WireBreakerObserver(rest_vendor_, "rest", registry);
  if (registry == nullptr) {
    telemetry_.reset();
    return;
  }
  auto inst = std::make_unique<Instruments>();
  inst->collections = registry->GetCounter("sidet_collector_collections_total", "",
                                           "Collect() calls");
  inst->failures = registry->GetCounter("sidet_collector_failures_total", "",
                                        "Collections where no vendor served anything");
  inst->vendor_failures = registry->GetCounter("sidet_collector_vendor_failures_total", "",
                                               "Per-vendor live-poll give-ups");
  inst->stale_serves = registry->GetCounter("sidet_collector_stale_serves_total", "",
                                            "Vendors served from last-known-good cache");
  inst->stale_beyond_horizon = registry->GetCounter(
      "sidet_collector_stale_beyond_horizon_total", "",
      "Breaker-open vendors served past the staleness warning horizon");
  inst->breaker_skips = registry->GetCounter("sidet_collector_breaker_skips_total", "",
                                             "Polls skipped on an open breaker");
  inst->deadline_stops = registry->GetCounter("sidet_collector_deadline_stops_total", "",
                                              "Retry ladders cut by the deadline budget");
  inst->mqtt_snapshots = registry->GetCounter("sidet_collector_mqtt_snapshots_total", "",
                                              "Push-source snapshots merged");
  inst->mqtt_failures = registry->GetCounter("sidet_collector_mqtt_failures_total", "",
                                             "Push-source snapshot failures");
  inst->miio_retries = registry->GetCounter("sidet_collector_retries_total",
                                            "vendor=\"miio\"", "Poll retries per vendor");
  inst->rest_retries = registry->GetCounter("sidet_collector_retries_total",
                                            "vendor=\"rest\"", "Poll retries per vendor");
  inst->backoff_wait_seconds_total =
      registry->GetCounter("sidet_collector_backoff_wait_seconds_total", "",
                           "Simulated seconds spent in retry backoff");
  inst->backoff_wait_seconds = registry->GetHistogram(
      "sidet_collector_backoff_wait_seconds", "",
      {1, 2, 5, 10, 15, 30, 60, 120}, "Per-wait backoff duration (simulated seconds)");
  inst->staleness_seconds = registry->GetHistogram(
      "sidet_collector_staleness_seconds", "",
      {1, 10, 60, 300, 900, 1800, 3600, 7200, 21600},
      "Age of cache-served readings (simulated seconds)");
  inst->last_coverage = registry->GetGauge("sidet_collector_last_coverage", "",
                                           "Served/present vendors of the last snapshot");
  inst->last_fresh_readings = registry->GetGauge(
      "sidet_collector_last_fresh_readings", "", "Fresh readings in the last snapshot");
  inst->last_stale_readings = registry->GetGauge(
      "sidet_collector_last_stale_readings", "", "Stale readings in the last snapshot");
  inst->last_missing_vendors = registry->GetGauge(
      "sidet_collector_last_missing_vendors", "", "Vendors absent from the last snapshot");
  inst->mirrored = stats_;
  telemetry_ = std::move(inst);
}

void SensorDataCollector::FlushTelemetry(const SnapshotQuality* quality) {
  if (telemetry_ == nullptr) return;
  Instruments& inst = *telemetry_;
  const auto bump = [](Counter* counter, std::size_t now_value, std::size_t& mirrored) {
    if (now_value > mirrored) counter->Increment(now_value - mirrored);
    mirrored = now_value;
  };
  bump(inst.collections, stats_.collections, inst.mirrored.collections);
  bump(inst.failures, stats_.failures, inst.mirrored.failures);
  bump(inst.vendor_failures, stats_.vendor_failures, inst.mirrored.vendor_failures);
  bump(inst.stale_serves, stats_.stale_serves, inst.mirrored.stale_serves);
  bump(inst.stale_beyond_horizon, stats_.stale_beyond_horizon,
       inst.mirrored.stale_beyond_horizon);
  bump(inst.breaker_skips, stats_.breaker_skips, inst.mirrored.breaker_skips);
  bump(inst.deadline_stops, stats_.deadline_stops, inst.mirrored.deadline_stops);
  bump(inst.mqtt_snapshots, stats_.mqtt_snapshots, inst.mirrored.mqtt_snapshots);
  bump(inst.mqtt_failures, stats_.mqtt_failures, inst.mirrored.mqtt_failures);
  bump(inst.miio_retries, stats_.miio_retries, inst.mirrored.miio_retries);
  bump(inst.rest_retries, stats_.rest_retries, inst.mirrored.rest_retries);
  if (stats_.backoff_wait_seconds > inst.mirrored.backoff_wait_seconds) {
    inst.backoff_wait_seconds_total->Increment(static_cast<std::uint64_t>(
        stats_.backoff_wait_seconds - inst.mirrored.backoff_wait_seconds));
  }
  inst.mirrored.backoff_wait_seconds = stats_.backoff_wait_seconds;
  if (quality != nullptr) {
    inst.last_coverage->Set(quality->coverage());
    inst.last_fresh_readings->Set(static_cast<double>(quality->fresh_readings));
    inst.last_stale_readings->Set(static_cast<double>(quality->stale_readings));
    inst.last_missing_vendors->Set(static_cast<double>(quality->missing_vendors));
  }
}

SimTime SensorDataCollector::Now(SimTime fallback) const {
  return clock_ != nullptr ? clock_->now() : fallback;
}

void SensorDataCollector::Wait(std::int64_t seconds) {
  stats_.backoff_wait_seconds += seconds;
  if (telemetry_ != nullptr) {
    telemetry_->backoff_wait_seconds->Observe(static_cast<double>(seconds));
  }
  if (clock_ != nullptr) clock_->AdvanceSeconds(seconds);
}

template <typename PollFn>
VendorQuality SensorDataCollector::CollectVendor(const char* name, PollFn&& poll,
                                                 VendorRuntime& vendor,
                                                 SensorSnapshot& merged, SimTime now,
                                                 SimTime deadline) {
  VendorQuality quality;
  quality.present = true;

  Result<SensorSnapshot> partial = Error("not attempted");
  std::int64_t delay = config_.backoff.initial_seconds;
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (!vendor.breaker.AllowRequest(Now(now))) {
      ++stats_.breaker_skips;
      break;
    }
    if (attempt > 0) {
      // Jittered exponential backoff, charged against the deadline budget.
      std::int64_t wait = delay;
      if (config_.backoff.jitter > 0.0) {
        const double scale = jitter_rng_.UniformDouble(1.0 - config_.backoff.jitter,
                                                       1.0 + config_.backoff.jitter);
        wait = std::max<std::int64_t>(0, static_cast<std::int64_t>(
                                             static_cast<double>(delay) * scale));
      }
      if (Now(now) + wait > deadline) {
        ++stats_.deadline_stops;
        break;
      }
      Wait(wait);
      delay = std::min(static_cast<std::int64_t>(static_cast<double>(delay) *
                                                 config_.backoff.multiplier),
                       config_.backoff.max_seconds);
      ++*vendor.retry_counter;
    }
    partial = poll();
    if (partial.ok()) break;
    vendor.breaker.OnFailure(Now(now));
  }

  if (partial.ok()) {
    vendor.breaker.OnSuccess();
    quality.fresh = true;
    quality.readings = partial.value().entries().size();
    for (const SensorSnapshot::Entry& entry : partial.value().entries()) {
      merged.Set(entry.key, entry.type, entry.value);
    }
    vendor.cache = std::move(partial).value();
    vendor.cache_at = Now(now);
    return quality;
  }

  // Live poll failed (or was skipped by the breaker): degrade to the vendor's
  // last-known-good readings when they are recent enough.
  ++stats_.vendor_failures;
  const std::int64_t age = vendor.cache.has_value() ? Now(now) - vendor.cache_at : 0;
  if (vendor.cache.has_value() && age <= config_.max_cache_age_seconds) {
    ++stats_.stale_serves;
    quality.from_cache = true;
    quality.staleness_seconds = std::max<std::int64_t>(age, 0);
    if (telemetry_ != nullptr) {
      telemetry_->staleness_seconds->Observe(static_cast<double>(quality.staleness_seconds));
    }
    quality.readings = vendor.cache->entries().size();
    for (const SensorSnapshot::Entry& entry : vendor.cache->entries()) {
      merged.Set(entry.key, entry.type, entry.value);
    }
    LogWarn(Format("collector: %s unreachable (%s), serving %zu cached readings %llds stale",
                   name, partial.error().message().c_str(), quality.readings,
                   static_cast<long long>(quality.staleness_seconds)));
    // A vendor whose breaker is open has been dead for a while; once its
    // last-known-good readings outlive the warning horizon they stop being a
    // graceful degradation and start being an attack surface (a blinded stack
    // keeps vouching for stale context), so count and call it out loudly.
    if (vendor.breaker.state() == BreakerState::kOpen &&
        age > config_.lkg_warn_staleness_seconds) {
      ++stats_.stale_beyond_horizon;
      LogWarn(Format(
          "collector: %s breaker open and last-known-good %llds stale exceeds the "
          "%llds warning horizon — context from this vendor should not be trusted",
          name, static_cast<long long>(age),
          static_cast<long long>(config_.lkg_warn_staleness_seconds)));
    }
  } else {
    LogWarn(Format("collector: %s unreachable (%s), no usable cache", name,
                   partial.error().message().c_str()));
  }
  return quality;
}

Result<SensorSnapshot> SensorDataCollector::Collect(SimTime now) {
  ++stats_.collections;
  if (clock_ != nullptr) clock_->AdvanceTo(now);
  const SimTime start = Now(now);
  const SimTime deadline = start + config_.deadline_budget_seconds;

  SensorSnapshot merged(now);
  SnapshotQuality quality;

  // Push-based source first: polled vendors overwrite overlapping sensors
  // with fresher readings.
  if (mqtt_ != nullptr) {
    quality.mqtt.present = true;
    Result<SensorSnapshot> pushed = mqtt_->Snapshot(now);
    if (pushed.ok()) {
      ++stats_.mqtt_snapshots;
      quality.mqtt.fresh = true;
      quality.mqtt.readings = pushed.value().entries().size();
      for (const SensorSnapshot::Entry& entry : pushed.value().entries()) {
        merged.Set(entry.key, entry.type, entry.value);
      }
    } else {
      ++stats_.mqtt_failures;
      LogWarn("collector: mqtt snapshot failed: " + pushed.error().message());
    }
  }

  if (miio_ != nullptr) {
    quality.miio = CollectVendor(
        "miio gateway", [this] { return miio_->PollAll(); }, miio_vendor_, merged, now,
        deadline);
  }
  if (rest_ != nullptr) {
    quality.rest = CollectVendor(
        "rest bridge", [this] { return rest_->PollAll(); }, rest_vendor_, merged, now,
        deadline);
  }

  std::size_t present = 0;
  std::size_t served = 0;
  for (const VendorQuality* vendor : {&quality.miio, &quality.rest, &quality.mqtt}) {
    if (!vendor->present) continue;
    ++present;
    if (vendor->served()) {
      ++served;
      if (vendor->fresh) {
        quality.fresh_readings += vendor->readings;
      } else {
        quality.stale_readings += vendor->readings;
      }
    } else {
      ++quality.missing_vendors;
    }
  }

  if (present > 0 && served == 0) {
    ++stats_.failures;
    FlushTelemetry(nullptr);
    return Error("collector: no vendor reachable and no usable cache");
  }

  merged.set_quality(std::move(quality));
  FlushTelemetry(&merged.quality());
  return merged;
}

}  // namespace sidet
