#include "core/collector.h"

namespace sidet {

SensorDataCollector::SensorDataCollector(std::unique_ptr<MiioClient> miio,
                                         std::unique_ptr<RestClient> rest, int max_retries)
    : miio_(std::move(miio)), rest_(std::move(rest)), max_retries_(max_retries) {}

void SensorDataCollector::AttachMqtt(std::unique_ptr<MqttCollector> mqtt) {
  mqtt_ = std::move(mqtt);
}

Result<SensorSnapshot> SensorDataCollector::Collect(SimTime now) {
  ++stats_.collections;
  SensorSnapshot merged(now);

  // Push-based source first: polled vendors overwrite overlapping sensors
  // with fresher readings.
  if (mqtt_ != nullptr) {
    Result<SensorSnapshot> pushed = mqtt_->Snapshot(now);
    if (pushed.ok()) {
      ++stats_.mqtt_snapshots;
      for (const SensorSnapshot::Entry& entry : pushed.value().entries()) {
        merged.Set(entry.key, entry.type, entry.value);
      }
    }
  }

  if (miio_ != nullptr) {
    Result<SensorSnapshot> partial = Error("miio not attempted");
    for (int attempt = 0; attempt <= max_retries_; ++attempt) {
      if (attempt > 0) ++stats_.miio_retries;
      partial = miio_->PollAll();
      if (partial.ok()) break;
    }
    if (!partial.ok()) {
      ++stats_.failures;
      return partial.error().context("collector (xiaomi path)");
    }
    for (const SensorSnapshot::Entry& entry : partial.value().entries()) {
      merged.Set(entry.key, entry.type, entry.value);
    }
  }

  if (rest_ != nullptr) {
    Result<SensorSnapshot> partial = Error("rest not attempted");
    for (int attempt = 0; attempt <= max_retries_; ++attempt) {
      if (attempt > 0) ++stats_.rest_retries;
      partial = rest_->PollAll();
      if (partial.ok()) break;
    }
    if (!partial.ok()) {
      ++stats_.failures;
      return partial.error().context("collector (smartthings path)");
    }
    for (const SensorSnapshot::Entry& entry : partial.value().entries()) {
      merged.Set(entry.key, entry.type, entry.value);
    }
  }

  return merged;
}

}  // namespace sidet
