#include "core/collector.h"

#include <algorithm>

#include "util/log.h"
#include "util/strings.h"

namespace sidet {

SensorDataCollector::SensorDataCollector(std::unique_ptr<MiioClient> miio,
                                         std::unique_ptr<RestClient> rest, int max_retries)
    : SensorDataCollector(std::move(miio), std::move(rest), [max_retries] {
        CollectorConfig config;
        config.max_retries = max_retries;
        return config;
      }()) {}

SensorDataCollector::SensorDataCollector(std::unique_ptr<MiioClient> miio,
                                         std::unique_ptr<RestClient> rest,
                                         CollectorConfig config)
    : miio_(std::move(miio)),
      rest_(std::move(rest)),
      config_(config),
      jitter_rng_(config.jitter_seed),
      miio_vendor_(config.breaker),
      rest_vendor_(config.breaker) {
  // A negative retry count used to mean "never attempt a poll" and surfaced
  // as a bogus vendor failure; clamp so 0 means exactly one attempt.
  config_.max_retries = std::max(config_.max_retries, 0);
  miio_vendor_.retry_counter = &stats_.miio_retries;
  rest_vendor_.retry_counter = &stats_.rest_retries;
}

void SensorDataCollector::AttachMqtt(std::unique_ptr<MqttCollector> mqtt) {
  mqtt_ = std::move(mqtt);
}

SimTime SensorDataCollector::Now(SimTime fallback) const {
  return clock_ != nullptr ? clock_->now() : fallback;
}

void SensorDataCollector::Wait(std::int64_t seconds) {
  stats_.backoff_wait_seconds += seconds;
  if (clock_ != nullptr) clock_->AdvanceSeconds(seconds);
}

template <typename PollFn>
VendorQuality SensorDataCollector::CollectVendor(const char* name, PollFn&& poll,
                                                 VendorRuntime& vendor,
                                                 SensorSnapshot& merged, SimTime now,
                                                 SimTime deadline) {
  VendorQuality quality;
  quality.present = true;

  Result<SensorSnapshot> partial = Error("not attempted");
  std::int64_t delay = config_.backoff.initial_seconds;
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (!vendor.breaker.AllowRequest(Now(now))) {
      ++stats_.breaker_skips;
      break;
    }
    if (attempt > 0) {
      // Jittered exponential backoff, charged against the deadline budget.
      std::int64_t wait = delay;
      if (config_.backoff.jitter > 0.0) {
        const double scale = jitter_rng_.UniformDouble(1.0 - config_.backoff.jitter,
                                                       1.0 + config_.backoff.jitter);
        wait = std::max<std::int64_t>(0, static_cast<std::int64_t>(
                                             static_cast<double>(delay) * scale));
      }
      if (Now(now) + wait > deadline) {
        ++stats_.deadline_stops;
        break;
      }
      Wait(wait);
      delay = std::min(static_cast<std::int64_t>(static_cast<double>(delay) *
                                                 config_.backoff.multiplier),
                       config_.backoff.max_seconds);
      ++*vendor.retry_counter;
    }
    partial = poll();
    if (partial.ok()) break;
    vendor.breaker.OnFailure(Now(now));
  }

  if (partial.ok()) {
    vendor.breaker.OnSuccess();
    quality.fresh = true;
    quality.readings = partial.value().entries().size();
    for (const SensorSnapshot::Entry& entry : partial.value().entries()) {
      merged.Set(entry.key, entry.type, entry.value);
    }
    vendor.cache = std::move(partial).value();
    vendor.cache_at = Now(now);
    return quality;
  }

  // Live poll failed (or was skipped by the breaker): degrade to the vendor's
  // last-known-good readings when they are recent enough.
  ++stats_.vendor_failures;
  const std::int64_t age = vendor.cache.has_value() ? Now(now) - vendor.cache_at : 0;
  if (vendor.cache.has_value() && age <= config_.max_cache_age_seconds) {
    ++stats_.stale_serves;
    quality.from_cache = true;
    quality.staleness_seconds = std::max<std::int64_t>(age, 0);
    quality.readings = vendor.cache->entries().size();
    for (const SensorSnapshot::Entry& entry : vendor.cache->entries()) {
      merged.Set(entry.key, entry.type, entry.value);
    }
    LogWarn(Format("collector: %s unreachable (%s), serving %zu cached readings %llds stale",
                   name, partial.error().message().c_str(), quality.readings,
                   static_cast<long long>(quality.staleness_seconds)));
  } else {
    LogWarn(Format("collector: %s unreachable (%s), no usable cache", name,
                   partial.error().message().c_str()));
  }
  return quality;
}

Result<SensorSnapshot> SensorDataCollector::Collect(SimTime now) {
  ++stats_.collections;
  if (clock_ != nullptr) clock_->AdvanceTo(now);
  const SimTime start = Now(now);
  const SimTime deadline = start + config_.deadline_budget_seconds;

  SensorSnapshot merged(now);
  SnapshotQuality quality;

  // Push-based source first: polled vendors overwrite overlapping sensors
  // with fresher readings.
  if (mqtt_ != nullptr) {
    quality.mqtt.present = true;
    Result<SensorSnapshot> pushed = mqtt_->Snapshot(now);
    if (pushed.ok()) {
      ++stats_.mqtt_snapshots;
      quality.mqtt.fresh = true;
      quality.mqtt.readings = pushed.value().entries().size();
      for (const SensorSnapshot::Entry& entry : pushed.value().entries()) {
        merged.Set(entry.key, entry.type, entry.value);
      }
    } else {
      ++stats_.mqtt_failures;
      LogWarn("collector: mqtt snapshot failed: " + pushed.error().message());
    }
  }

  if (miio_ != nullptr) {
    quality.miio = CollectVendor(
        "miio gateway", [this] { return miio_->PollAll(); }, miio_vendor_, merged, now,
        deadline);
  }
  if (rest_ != nullptr) {
    quality.rest = CollectVendor(
        "rest bridge", [this] { return rest_->PollAll(); }, rest_vendor_, merged, now,
        deadline);
  }

  std::size_t present = 0;
  std::size_t served = 0;
  for (const VendorQuality* vendor : {&quality.miio, &quality.rest, &quality.mqtt}) {
    if (!vendor->present) continue;
    ++present;
    if (vendor->served()) {
      ++served;
      if (vendor->fresh) {
        quality.fresh_readings += vendor->readings;
      } else {
        quality.stale_readings += vendor->readings;
      }
    } else {
      ++quality.missing_vendors;
    }
  }

  if (present > 0 && served == 0) {
    ++stats_.failures;
    return Error("collector: no vendor reachable and no usable cache");
  }

  merged.set_quality(std::move(quality));
  return merged;
}

}  // namespace sidet
