// Per-vendor circuit breaker for the sensor data collector.
//
// A vendor stack that stops answering (gateway reboot, AP outage) should not
// cost every collection a full retry ladder: after `failure_threshold`
// consecutive failures the breaker opens and requests are skipped outright.
// After `open_seconds` of simulated time it moves to half-open and lets one
// probe through; a successful probe closes it, a failed probe re-opens it.
// Time is simulated (SimTime) like everything else in this project, so
// breaker behaviour replays deterministically.
#pragma once

#include <cstddef>
#include <functional>

#include "util/sim_clock.h"

namespace sidet {

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

const char* ToString(BreakerState state);

struct CircuitBreakerConfig {
  int failure_threshold = 4;       // consecutive failures that trip the breaker
  std::int64_t open_seconds = 120;  // cool-down before the half-open probe
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  // Whether a request may be issued at `now`. An open breaker whose cool-down
  // has elapsed transitions to half-open and admits the probe.
  bool AllowRequest(SimTime now);
  void OnSuccess();
  void OnFailure(SimTime now);

  BreakerState state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  std::size_t transitions() const { return transitions_; }
  std::size_t times_opened() const { return times_opened_; }

  // Invoked on every state change (telemetry taps open/half-open/close
  // transition counters here). Runs synchronously inside the breaker — keep
  // it cheap and never call back into the breaker.
  using TransitionObserver = std::function<void(BreakerState from, BreakerState to)>;
  void SetTransitionObserver(TransitionObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  void MoveTo(BreakerState next);

  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  SimTime opened_at_{};
  std::size_t transitions_ = 0;
  std::size_t times_opened_ = 0;
  TransitionObserver observer_;
};

}  // namespace sidet
