#include "core/circuit_breaker.h"

namespace sidet {

const char* ToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config) : config_(config) {
  if (config_.failure_threshold < 1) config_.failure_threshold = 1;
  if (config_.open_seconds < 0) config_.open_seconds = 0;
}

void CircuitBreaker::MoveTo(BreakerState next) {
  if (state_ == next) return;
  const BreakerState from = state_;
  state_ = next;
  ++transitions_;
  if (next == BreakerState::kOpen) ++times_opened_;
  if (observer_) observer_(from, next);
}

bool CircuitBreaker::AllowRequest(SimTime now) {
  if (state_ == BreakerState::kOpen) {
    if (now - opened_at_ >= config_.open_seconds) {
      MoveTo(BreakerState::kHalfOpen);
      return true;  // the probe
    }
    return false;
  }
  return true;
}

void CircuitBreaker::OnSuccess() {
  consecutive_failures_ = 0;
  MoveTo(BreakerState::kClosed);
}

void CircuitBreaker::OnFailure(SimTime now) {
  if (state_ == BreakerState::kHalfOpen) {
    // Failed probe: straight back to open for another cool-down.
    opened_at_ = now;
    MoveTo(BreakerState::kOpen);
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= config_.failure_threshold) {
    opened_at_ = now;
    MoveTo(BreakerState::kOpen);
  }
}

}  // namespace sidet
