// Audit trail for judgements — the forensic record an IDS deployment needs
// (cf. "Fear and Logging in the Internet of Things", which the paper cites
// for log-based monitoring). Every judgement appends one record; the log is
// queryable, JSON/CSV exportable, and bounded (ring semantics past capacity).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "instructions/device_category.h"
#include "util/json.h"
#include "util/sim_clock.h"

namespace sidet {

struct AuditRecord {
  SimTime at;
  std::string instruction;
  DeviceCategory category = DeviceCategory::kAlarm;
  bool sensitive = false;
  bool allowed = true;
  double consistency = 1.0;
  // Verdict reached on degraded/unavailable sensor context (stale cache,
  // missing vendor, or a fail-open/fail-closed policy decision).
  bool degraded = false;
  std::string reason;
  // Which guard tier produced a fail-open/fail-closed verdict ("availability",
  // "staleness", "coverage", "consistency"); empty for model verdicts. Lets
  // replay tooling distinguish "blocked by model" from "blocked by policy".
  std::string tier;
  // Worst staleness of the judged snapshot, stamped by the live path.
  std::int64_t staleness_seconds = 0;

  bool operator==(const AuditRecord&) const = default;

  Json ToJson() const;
  // One NDJSON line (no trailing newline). Consistency round-trips
  // bit-exactly: FromJsonLine(ToJsonLine(r)) == r for every record.
  std::string ToJsonLine() const;
  static Result<AuditRecord> FromJsonLine(std::string_view line);
};

class AuditLog {
 public:
  explicit AuditLog(std::size_t capacity = 100000);

  void Append(AuditRecord record);

  std::size_t size() const { return records_.size(); }
  std::size_t total_appended() const { return total_appended_; }
  const std::deque<AuditRecord>& records() const { return records_; }

  // --- Queries (pointers valid until the next Append) -------------------------
  std::vector<const AuditRecord*> Blocked() const;
  std::vector<const AuditRecord*> ForCategory(DeviceCategory category) const;
  std::vector<const AuditRecord*> Between(SimTime begin, SimTime end) const;

  double BlockRate() const;  // blocked / sensitive judgements

  Json ToJson() const;
  std::string ToCsv() const;
  // Newline-delimited JSON, one record per line — the streamable export the
  // flight-recorder era tooling consumes. Round-trips losslessly.
  std::string ToNdjson() const;
  static Result<AuditLog> FromNdjson(std::string_view text, std::size_t capacity = 100000);

 private:
  std::size_t capacity_;
  std::deque<AuditRecord> records_;
  std::size_t total_appended_ = 0;
};

}  // namespace sidet
