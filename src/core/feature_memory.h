// ContextFeatureMemory — component 3 of the Fig 3 framework.
//
// "We have established a corresponding decision tree model for equipment
// related to high-threat instructions. The context features and feature
// weights of the sensors are calculated and stored" (§IV.C.3). One decision
// tree + feature schema per device family; trained from the strategy corpus
// with oversampling; serializable to a single JSON document so the memory
// can persist between runs.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "automation/rule.h"
#include "datagen/context_schema.h"
#include "datagen/device_dataset.h"
#include "ml/compiled_tree.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "sensors/snapshot.h"

namespace sidet {

struct TrainedDeviceModel {
  ContextSchema schema;
  DecisionTree tree;
  // Flat-array mirror of `tree`, used on the judgement hot path. Rebuilt on
  // Install/FromJson (never serialized); predictions are bit-identical to
  // the pointer tree.
  CompiledTree compiled;
  BinaryMetrics holdout_metrics;  // measured on the 30% test split
  std::size_t training_rows = 0;
};

struct MemoryTrainingOptions {
  double test_fraction = 0.3;  // the paper's 7:3 split
  bool oversample = true;      // the paper's imbalance correction
  DecisionTreeParams tree_params;
  std::uint64_t seed = 99;
  std::size_t samples_per_device = 3000;
  // Worker lanes: device-family models train concurrently (dataset build +
  // split + oversample + fit per lane). 1 = sequential, 0 = hardware
  // concurrency. Each family draws from its own seed stream, so the trained
  // memory is byte-identical at any thread count.
  int threads = 1;
};

class ContextFeatureMemory {
 public:
  // Trains one model per evaluated device family from the corpus (dataset
  // construction per DefaultConfigFor). Fails if any family lacks rules.
  Status TrainFromCorpus(const RuleCorpus& corpus, const MemoryTrainingOptions& options = {});

  // Installs an externally trained model.
  void Install(DeviceCategory category, TrainedDeviceModel model);
  // Installs a pre-built immutable model without copying its storage. Models
  // are held behind shared_ptr<const>, so copying a memory (and the fleet
  // ModelCache handing the same blob to many lanes) shares one compiled
  // forest instead of duplicating it per home.
  void InstallShared(DeviceCategory category, std::shared_ptr<const TrainedDeviceModel> model);

  bool HasModel(DeviceCategory category) const;
  const TrainedDeviceModel* Model(DeviceCategory category) const;
  std::shared_ptr<const TrainedDeviceModel> ModelShared(DeviceCategory category) const;
  std::vector<DeviceCategory> Trained() const;

  // Judges whether (instruction `action`, snapshot) matches the family's
  // legitimate context. Fails when no model exists or the snapshot lacks
  // schema sensors.
  Result<bool> Consistent(DeviceCategory category, std::string_view action,
                          const SensorSnapshot& snapshot, SimTime time) const;
  Result<double> ConsistencyProbability(DeviceCategory category, std::string_view action,
                                        const SensorSnapshot& snapshot, SimTime time) const;

  // Toggles flat-array inference (on by default). Off = walk the pointer
  // tree; predictions are identical either way — the switch exists for
  // benchmarking and equivalence tests.
  void EnableCompiledInference(bool on) { use_compiled_ = on; }
  bool compiled_inference_enabled() const { return use_compiled_; }

  // Requires json_serializable() — compact-loaded memories carry only the
  // compiled arrays, not the pointer trees the JSON document encodes.
  Json ToJson() const;
  static Result<ContextFeatureMemory> FromJson(const Json& json);

  // True when every installed model still has its pointer tree, i.e. the
  // memory can round-trip through the JSON document form. Memories loaded
  // from the compact binary format are serving-only and return false.
  bool json_serializable() const;

  // MD5 of the serialized memory: two memories fingerprint equal iff their
  // persisted form (schemas, trees, holdout metrics) is byte-identical. The
  // flight recorder stamps this into every session header so a replay can
  // tell "same model, must be bit-identical" from "new model, diff expected".
  // A compact-loaded memory returns the fingerprint pinned in its blob
  // header (computed from the JSON form at save time), so both load paths
  // key the fleet ModelCache identically.
  std::string Fingerprint() const;
  // Pins the fingerprint a compact blob header recorded. Cleared by the next
  // Install/InstallShared (the content it described no longer matches).
  void SetStoredFingerprint(std::string fingerprint);

 private:
  std::map<DeviceCategory, std::shared_ptr<const TrainedDeviceModel>> models_;
  std::string stored_fingerprint_;
  bool use_compiled_ = true;
};

}  // namespace sidet
