// CameraWarningService — the §V "Security camera" behaviour.
//
// The paper keeps cameras out of the per-family ML models; instead it mines
// the 319 camera-warning strategies (Fig 7) and concludes the camera should
// proactively warn the user whenever the linked situations occur: doors or
// windows opening, and the smoke / water / combustible-gas detectors firing
// (plus motion while nobody is home). This service watches successive sensor
// snapshots, raises one warning per rising edge of each trigger, and rate
// limits repeats per trigger kind.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sensors/snapshot.h"
#include "util/sim_clock.h"

namespace sidet {

enum class WarningTrigger : std::uint8_t {
  kDoorOpened = 0,
  kWindowOpened,
  kSmokeOrFire,
  kWaterLeak,
  kCombustibleGas,
  kMotionWhileAway,
};

inline constexpr std::size_t kWarningTriggerCount = 6;
std::string_view ToString(WarningTrigger trigger);

struct CameraWarning {
  WarningTrigger trigger;
  SimTime at;
  std::string detail;
};

struct CameraWarningOptions {
  // Minimum gap between repeated warnings of the same kind.
  std::int64_t cooldown_seconds = 10 * kSecondsPerMinute;
};

class CameraWarningService {
 public:
  explicit CameraWarningService(CameraWarningOptions options = {});

  // Inspects a snapshot; returns warnings newly raised by it. Triggers are
  // edge-based: a door that stays open warns once, not every poll.
  std::vector<CameraWarning> Observe(const SensorSnapshot& snapshot, SimTime now);

  const std::vector<CameraWarning>& history() const { return history_; }
  std::map<WarningTrigger, int> CountsByTrigger() const;

 private:
  bool TriggerActive(WarningTrigger trigger, const SensorSnapshot& snapshot) const;

  CameraWarningOptions options_;
  std::map<WarningTrigger, bool> previous_state_;
  std::map<WarningTrigger, SimTime> last_warned_;
  std::vector<CameraWarning> history_;
};

}  // namespace sidet
