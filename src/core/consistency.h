// Cross-sensor consistency tier — physics corroboration of claimed context.
//
// The paper's judger trusts whatever the collector hands it, which makes the
// realistic attacker's move obvious: forge a *consistent-looking* context
// (spoofed miio packets, a stolen REST token, replayed benign snapshots)
// before issuing the sensitive instruction. This tier cross-checks the claimed
// readings against each other, against the home's actuator state, and against
// the recent history of accepted snapshots:
//
//   within-snapshot   smoke without elevated air quality; a voice command in
//                     a still, silent house
//   actuator-coupled  bright illuminance at night with every lamp off;
//                     window/door contacts open with every opening actuated
//                     closed; lock sensor contradicting the lock device
//   stateful          indoor temperature / air quality jumping faster than
//                     the HVAC (or even a fire) could move them; continuous
//                     readings repeating bit-identically — real sensors carry
//                     measurement noise, frozen or pinned feeds do not
//
// Each violated coupling carries a severity; a snapshot whose summed severity
// reaches the condemnation threshold is handed to DegradedContextPolicy
// (fail-closed for sensitive categories by default) instead of the model.
// Single-sensor noise flips stay below the threshold, keeping the benign
// false-positive cost small.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sensors/snapshot.h"
#include "util/json.h"
#include "util/sim_clock.h"

namespace sidet {

class SmartHome;

// Ground-truth actuator state the tier corroborates claimed readings against.
// Read from the device layer (`src/home`), which the attacker of our threat
// model does not control — they forge *sensor reports*, not device state.
struct ActuatorState {
  bool known = false;            // provider produced real state
  bool any_lamp_on = false;      // any lighting device switched on
  bool any_opening_open = false; // any window/door device actuated open
  bool hvac_on = false;
  int hvac_mode = 0;             // 0 off, 1 cooling, 2 heating
  double curtain_open_fraction = 1.0;
  bool lock_known = false;
  bool lock_engaged = false;     // every lock device reports locked
};

using ActuatorStateProvider = std::function<ActuatorState()>;

struct ConsistencyConfig {
  // Summed severity at which a snapshot is condemned. Individual couplings
  // are weighted so one noisy binary flip cannot reach it alone unless the
  // coupling is physically impossible (lux at night with lamps off).
  double condemn_threshold = 1.0;

  // Smoke claimed while the co-located air-quality index sits below this is
  // implausible: the simulator's cooking-smoke trip needs AQI > 220 and a
  // real fire drives AQI up ~25/min from its ~60 baseline.
  double smoke_aqi_floor = 100.0;

  // Night window (hour >= start or < end) during which daylight cannot
  // explain bright indoor illuminance.
  int night_start_hour = 22;
  int night_end_hour = 5;
  // Claimed lux above this at night with every lamp off is condemned. Sensor
  // noise is sigma = 40 lux around a true 0, a single 80 %-brightness lamp
  // contributes 240 lux, so 220 sits > 5 sigma from dark and below one lamp.
  double bright_lux_floor = 220.0;

  // A genuine voice command implies someone awake and speaking; ambient noise
  // while anyone is awake sits near 36 dB versus 28 dB asleep/empty.
  double quiet_db_ceiling = 33.0;

  // Temperature slew limits (degC per minute) against the last accepted
  // snapshot: HVAC moves the zone +-0.18/min, a fire +1.5/min, so the hazard
  // allowance only applies when the snapshot also claims smoke.
  double hvac_temp_rate_per_minute = 0.5;
  double hazard_temp_rate_per_minute = 2.0;
  double temp_slope_slack_c = 2.0;

  // Air-quality slew limits (index per minute): cooking adds +2.5/min, a fire
  // +25/min (again only credited when smoke is claimed).
  double aqi_rate_per_minute = 4.0;
  double hazard_aqi_rate_per_minute = 30.0;
  double aqi_slope_slack = 20.0;

  // Slope checks only apply when the accepted history is at most this old;
  // beyond it too much genuine drift could have accumulated.
  std::int64_t slope_window_seconds = 45 * kSecondsPerMinute;

  // Frozen-feed check: at least this many continuous readings repeating
  // bit-identically across accepted snapshots condemns the feed. Gaussian
  // read noise makes an exact repeat of even one continuous value vanishingly
  // unlikely; demanding several keeps the check conservative.
  std::size_t frozen_min_continuous = 3;
};

struct ConsistencyFinding {
  std::string check;   // stable snake_case identifier, e.g. "smoke_air"
  double severity = 0.0;
  std::string detail;
};

struct ConsistencyReport {
  std::vector<ConsistencyFinding> findings;
  std::size_t checks_run = 0;
  double severity = 0.0;   // sum over findings
  bool condemned = false;

  // "cross-sensor inconsistency (severity 2.0): smoke_air: ...; ..."
  std::string Summary() const;
};

class CrossSensorConsistency {
 public:
  explicit CrossSensorConsistency(ConsistencyConfig config = {});

  void SetActuatorProvider(ActuatorStateProvider provider);

  // Evaluates every coupling against `snapshot`. `now` must come from the
  // IDS's trusted clock, never from attacker-controlled data.
  ConsistencyReport Check(const SensorSnapshot& snapshot, SimTime now);

  // Records an *accepted* snapshot as history for the stateful checks. Only
  // feed snapshots that passed Check — condemned ones would poison the
  // baseline the slope and frozen checks compare against.
  void Observe(const SensorSnapshot& snapshot, SimTime now);

  void ResetHistory();

  const ConsistencyConfig& config() const { return config_; }
  ConsistencyConfig& mutable_config() { return config_; }

  std::size_t snapshots_checked() const { return snapshots_checked_; }
  std::size_t snapshots_condemned() const { return snapshots_condemned_; }
  Json StatsToJson() const;

 private:
  struct History {
    bool valid = false;
    SimTime at;
    bool has_temperature = false;
    double temperature = 0.0;
    bool has_aqi = false;
    double aqi = 0.0;
    std::map<std::string, double> continuous;  // key -> exact reading
  };

  ConsistencyConfig config_;
  ActuatorStateProvider actuators_;
  History history_;

  std::size_t snapshots_checked_ = 0;
  std::size_t snapshots_condemned_ = 0;
  std::size_t snapshots_observed_ = 0;
  std::map<std::string, std::size_t> finding_counts_;
};

// Actuator-state plumbing for the common case where the tier guards a live
// simulated home: reads lamp/opening/HVAC/curtain/lock state off the device
// layer. The returned provider holds a reference; `home` must outlive it.
ActuatorState ReadActuatorState(SmartHome& home);
ActuatorStateProvider HomeActuatorProvider(SmartHome& home);

}  // namespace sidet
