#include "core/audit.h"

#include "util/csv.h"
#include "util/strings.h"

namespace sidet {

AuditLog::AuditLog(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void AuditLog::Append(AuditRecord record) {
  ++total_appended_;
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
}

std::vector<const AuditRecord*> AuditLog::Blocked() const {
  std::vector<const AuditRecord*> out;
  for (const AuditRecord& record : records_) {
    if (!record.allowed) out.push_back(&record);
  }
  return out;
}

std::vector<const AuditRecord*> AuditLog::ForCategory(DeviceCategory category) const {
  std::vector<const AuditRecord*> out;
  for (const AuditRecord& record : records_) {
    if (record.category == category) out.push_back(&record);
  }
  return out;
}

std::vector<const AuditRecord*> AuditLog::Between(SimTime begin, SimTime end) const {
  std::vector<const AuditRecord*> out;
  for (const AuditRecord& record : records_) {
    if (record.at >= begin && record.at < end) out.push_back(&record);
  }
  return out;
}

double AuditLog::BlockRate() const {
  std::size_t sensitive = 0;
  std::size_t blocked = 0;
  for (const AuditRecord& record : records_) {
    if (record.sensitive) {
      ++sensitive;
      if (!record.allowed) ++blocked;
    }
  }
  return sensitive == 0 ? 0.0 : static_cast<double>(blocked) / static_cast<double>(sensitive);
}

Json AuditLog::ToJson() const {
  Json out = Json::Array();
  for (const AuditRecord& record : records_) {
    Json entry = Json::Object();
    entry["at_seconds"] = record.at.seconds();
    entry["instruction"] = record.instruction;
    entry["category"] = std::string(ToString(record.category));
    entry["sensitive"] = record.sensitive;
    entry["allowed"] = record.allowed;
    entry["consistency"] = record.consistency;
    entry["degraded"] = record.degraded;
    entry["reason"] = record.reason;
    out.as_array().push_back(std::move(entry));
  }
  return out;
}

std::string AuditLog::ToCsv() const {
  std::vector<CsvRow> rows;
  rows.push_back({"at_seconds", "instruction", "category", "sensitive", "allowed",
                  "consistency", "degraded", "reason"});
  for (const AuditRecord& record : records_) {
    rows.push_back({std::to_string(record.at.seconds()), record.instruction,
                    std::string(ToString(record.category)), record.sensitive ? "1" : "0",
                    record.allowed ? "1" : "0", Format("%.6f", record.consistency),
                    record.degraded ? "1" : "0", record.reason});
  }
  return WriteCsv(rows);
}

}  // namespace sidet
