#include "core/audit.h"

#include "util/csv.h"
#include "util/strings.h"

namespace sidet {

AuditLog::AuditLog(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void AuditLog::Append(AuditRecord record) {
  ++total_appended_;
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
}

std::vector<const AuditRecord*> AuditLog::Blocked() const {
  std::vector<const AuditRecord*> out;
  for (const AuditRecord& record : records_) {
    if (!record.allowed) out.push_back(&record);
  }
  return out;
}

std::vector<const AuditRecord*> AuditLog::ForCategory(DeviceCategory category) const {
  std::vector<const AuditRecord*> out;
  for (const AuditRecord& record : records_) {
    if (record.category == category) out.push_back(&record);
  }
  return out;
}

std::vector<const AuditRecord*> AuditLog::Between(SimTime begin, SimTime end) const {
  std::vector<const AuditRecord*> out;
  for (const AuditRecord& record : records_) {
    if (record.at >= begin && record.at < end) out.push_back(&record);
  }
  return out;
}

double AuditLog::BlockRate() const {
  std::size_t sensitive = 0;
  std::size_t blocked = 0;
  for (const AuditRecord& record : records_) {
    if (record.sensitive) {
      ++sensitive;
      if (!record.allowed) ++blocked;
    }
  }
  return sensitive == 0 ? 0.0 : static_cast<double>(blocked) / static_cast<double>(sensitive);
}

Json AuditRecord::ToJson() const {
  Json entry = Json::Object();
  entry["at_seconds"] = at.seconds();
  entry["instruction"] = instruction;
  entry["category"] = std::string(ToString(category));
  entry["sensitive"] = sensitive;
  entry["allowed"] = allowed;
  entry["consistency"] = consistency;
  entry["degraded"] = degraded;
  entry["reason"] = reason;
  // Tier provenance is optional on the wire so pre-tier exports stay
  // byte-identical and old logs parse to the same records they always did.
  if (!tier.empty()) entry["tier"] = tier;
  if (staleness_seconds != 0) entry["staleness_seconds"] = staleness_seconds;
  return entry;
}

std::string AuditRecord::ToJsonLine() const { return ToJson().Dump(); }

Result<AuditRecord> AuditRecord::FromJsonLine(std::string_view line) {
  Result<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) return parsed.error().context("audit record");
  const Json& json = parsed.value();
  if (!json.is_object()) return Error("audit record must be a JSON object");
  AuditRecord record;
  record.at = SimTime(static_cast<std::int64_t>(json.number_or("at_seconds", 0)));
  record.instruction = json.string_or("instruction", "");
  Result<DeviceCategory> category = DeviceCategoryFromString(json.string_or("category", ""));
  if (!category.ok()) return category.error().context("audit record");
  record.category = category.value();
  record.sensitive = json.bool_or("sensitive", false);
  record.allowed = json.bool_or("allowed", true);
  record.consistency = json.number_or("consistency", 1.0);
  record.degraded = json.bool_or("degraded", false);
  record.reason = json.string_or("reason", "");
  record.tier = json.string_or("tier", "");
  record.staleness_seconds =
      static_cast<std::int64_t>(json.number_or("staleness_seconds", 0));
  return record;
}

Json AuditLog::ToJson() const {
  Json out = Json::Array();
  for (const AuditRecord& record : records_) {
    out.as_array().push_back(record.ToJson());
  }
  return out;
}

std::string AuditLog::ToNdjson() const {
  std::string out;
  for (const AuditRecord& record : records_) {
    out += record.ToJsonLine();
    out += '\n';
  }
  return out;
}

Result<AuditLog> AuditLog::FromNdjson(std::string_view text, std::size_t capacity) {
  AuditLog log(capacity);
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    Result<AuditRecord> record = AuditRecord::FromJsonLine(line);
    if (!record.ok()) {
      return record.error().context(Format("audit ndjson line %zu", line_no));
    }
    log.Append(std::move(record).value());
  }
  return log;
}

std::string AuditLog::ToCsv() const {
  std::vector<CsvRow> rows;
  rows.push_back({"at_seconds", "instruction", "category", "sensitive", "allowed",
                  "consistency", "degraded", "reason", "tier", "staleness_seconds"});
  for (const AuditRecord& record : records_) {
    rows.push_back({std::to_string(record.at.seconds()), record.instruction,
                    std::string(ToString(record.category)), record.sensitive ? "1" : "0",
                    // %.17g round-trips the double exactly; the old %.6f
                    // silently truncated model probabilities in the export.
                    record.allowed ? "1" : "0", Format("%.17g", record.consistency),
                    record.degraded ? "1" : "0", record.reason, record.tier,
                    std::to_string(record.staleness_seconds)});
  }
  return WriteCsv(rows);
}

}  // namespace sidet
