#include "core/feature_memory.h"

#include <optional>

#include "crypto/md5.h"
#include "ml/sampling.h"
#include "ml/validation.h"
#include "util/thread_pool.h"

namespace sidet {

namespace {

Json SchemaToJson(const ContextSchema& schema) {
  Json fields = Json::Array();
  for (const ContextField& field : schema.fields()) {
    Json f = Json::Object();
    switch (field.source) {
      case ContextField::Source::kSensor:
        f["source"] = "sensor";
        f["sensor_type"] = std::string(ToString(field.sensor_type));
        break;
      case ContextField::Source::kHour: f["source"] = "hour"; break;
      case ContextField::Source::kSegment: f["source"] = "segment"; break;
      case ContextField::Source::kWeekend: f["source"] = "weekend"; break;
      case ContextField::Source::kAction: f["source"] = "action"; break;
    }
    f["name"] = field.name;
    fields.as_array().push_back(std::move(f));
  }
  return fields;
}

Result<ContextSchema> SchemaFromJson(DeviceCategory category, const Json& json) {
  if (!json.is_array()) return Error("schema must be an array");
  std::vector<ContextField> fields;
  for (const Json& f : json.as_array()) {
    ContextField field;
    field.name = f.string_or("name", "");
    const std::string source = f.string_or("source", "");
    if (source == "sensor") {
      field.source = ContextField::Source::kSensor;
      Result<SensorType> type = SensorTypeFromString(f.string_or("sensor_type", ""));
      if (!type.ok()) return type.error().context("schema field " + field.name);
      field.sensor_type = type.value();
    } else if (source == "hour") {
      field.source = ContextField::Source::kHour;
    } else if (source == "segment") {
      field.source = ContextField::Source::kSegment;
    } else if (source == "weekend") {
      field.source = ContextField::Source::kWeekend;
    } else if (source == "action") {
      field.source = ContextField::Source::kAction;
    } else {
      return Error("unknown schema source '" + source + "'");
    }
    fields.push_back(std::move(field));
  }
  return ContextSchema(category, std::move(fields));
}

}  // namespace

Status ContextFeatureMemory::TrainFromCorpus(const RuleCorpus& corpus,
                                             const MemoryTrainingOptions& options) {
  const std::vector<DeviceCategory>& categories = EvaluatedCategories();
  const Rng master(options.seed);

  // One independent pipeline per device family — dataset build, stratified
  // split, oversampling, tree fit — each drawing from its own Fork(index)
  // stream; families shard across the worker lanes and install in category
  // order afterwards, so the memory is byte-identical at any thread count.
  std::vector<std::optional<TrainedDeviceModel>> trained(categories.size());
  std::vector<Status> statuses(categories.size(), Status::Ok());

  ParallelFor(options.threads, categories.size(), [&](std::size_t index) {
    const DeviceCategory category = categories[index];
    Rng rng = master.Fork(index);
    DeviceDatasetConfig config = DefaultConfigFor(category, options.seed);
    config.samples = options.samples_per_device;

    Result<DeviceDataset> built = BuildDeviceDataset(corpus, config);
    if (!built.ok()) {
      statuses[index] = built.error().context("training " + std::string(ToString(category)));
      return;
    }

    const TrainTestSplit split =
        StratifiedSplit(built.value().data, options.test_fraction, rng);
    Dataset train = split.train;
    if (options.oversample) train = RandomOversample(train, rng);
    train.Shuffle(rng);

    TrainedDeviceModel model;
    model.schema = std::move(built.value().schema);
    model.tree = DecisionTree(options.tree_params);
    const Status fitted = model.tree.Fit(train);
    if (!fitted.ok()) {
      statuses[index] = fitted.error().context(std::string(ToString(category)));
      return;
    }
    model.training_rows = train.size();
    model.holdout_metrics =
        ComputeMetrics(split.test.labels(), model.tree.PredictAll(split.test));
    trained[index] = std::move(model);
  });

  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  for (std::size_t index = 0; index < categories.size(); ++index) {
    Install(categories[index], std::move(*trained[index]));
  }
  return Status::Ok();
}

void ContextFeatureMemory::Install(DeviceCategory category, TrainedDeviceModel model) {
  if (model.compiled.empty() && model.tree.trained()) {
    model.compiled = CompiledTree::Compile(model.tree);
  }
  InstallShared(category, std::make_shared<const TrainedDeviceModel>(std::move(model)));
}

void ContextFeatureMemory::InstallShared(DeviceCategory category,
                                         std::shared_ptr<const TrainedDeviceModel> model) {
  stored_fingerprint_.clear();
  models_[category] = std::move(model);
}

bool ContextFeatureMemory::HasModel(DeviceCategory category) const {
  return models_.find(category) != models_.end();
}

const TrainedDeviceModel* ContextFeatureMemory::Model(DeviceCategory category) const {
  const auto it = models_.find(category);
  return it == models_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const TrainedDeviceModel> ContextFeatureMemory::ModelShared(
    DeviceCategory category) const {
  const auto it = models_.find(category);
  return it == models_.end() ? nullptr : it->second;
}

std::vector<DeviceCategory> ContextFeatureMemory::Trained() const {
  std::vector<DeviceCategory> out;
  for (const auto& [category, model] : models_) out.push_back(category);
  return out;
}

Result<bool> ContextFeatureMemory::Consistent(DeviceCategory category, std::string_view action,
                                              const SensorSnapshot& snapshot,
                                              SimTime time) const {
  Result<double> probability = ConsistencyProbability(category, action, snapshot, time);
  if (!probability.ok()) return probability.error();
  return probability.value() >= 0.5;
}

Result<double> ContextFeatureMemory::ConsistencyProbability(DeviceCategory category,
                                                            std::string_view action,
                                                            const SensorSnapshot& snapshot,
                                                            SimTime time) const {
  const TrainedDeviceModel* model = Model(category);
  if (model == nullptr) {
    return Error("no trained model for category " + std::string(ToString(category)));
  }
  Result<std::vector<double>> row = model->schema.Featurize(snapshot, time, action);
  if (!row.ok()) return row.error().context("judging " + std::string(ToString(category)));
  // Compact-loaded models carry only the compiled arrays; for them the
  // compiled walk is the only engine regardless of the toggle.
  if ((use_compiled_ || !model->tree.trained()) && !model->compiled.empty()) {
    return model->compiled.PredictProbability(row.value());
  }
  return model->tree.PredictProbability(row.value());
}

Json ContextFeatureMemory::ToJson() const {
  Json out = Json::Object();
  Json models = Json::Object();
  for (const auto& [category, model] : models_) {
    Json m = Json::Object();
    m["schema"] = SchemaToJson(model->schema);
    m["tree"] = model->tree.ToJson();
    m["training_rows"] = static_cast<std::int64_t>(model->training_rows);
    m["holdout_accuracy"] = model->holdout_metrics.accuracy;
    // The confusion matrix is the canonical holdout record: every derived
    // metric (accuracy, recall, ...) recomputes from it bit-identically, and
    // BaselineFromMemory needs it after a store round trip.
    Json confusion = Json::Object();
    confusion["tp"] = static_cast<std::int64_t>(model->holdout_metrics.confusion.tp);
    confusion["tn"] = static_cast<std::int64_t>(model->holdout_metrics.confusion.tn);
    confusion["fp"] = static_cast<std::int64_t>(model->holdout_metrics.confusion.fp);
    confusion["fn"] = static_cast<std::int64_t>(model->holdout_metrics.confusion.fn);
    m["holdout_confusion"] = std::move(confusion);
    models[std::string(ToString(category))] = std::move(m);
  }
  out["models"] = std::move(models);
  return out;
}

bool ContextFeatureMemory::json_serializable() const {
  for (const auto& [category, model] : models_) {
    if (!model->tree.trained()) return false;
  }
  return true;
}

std::string ContextFeatureMemory::Fingerprint() const {
  if (!stored_fingerprint_.empty()) return stored_fingerprint_;
  return Md5Hex(ToJson().Dump());
}

void ContextFeatureMemory::SetStoredFingerprint(std::string fingerprint) {
  stored_fingerprint_ = std::move(fingerprint);
}

Result<ContextFeatureMemory> ContextFeatureMemory::FromJson(const Json& json) {
  const Json* models = json.find("models");
  if (models == nullptr || !models->is_object()) return Error("memory json lacks models");
  ContextFeatureMemory memory;
  for (const auto& [name, m] : models->as_object()) {
    Result<DeviceCategory> category = DeviceCategoryFromString(name);
    if (!category.ok()) return category.error();

    TrainedDeviceModel model;
    const Json* schema = m.find("schema");
    if (schema == nullptr) return Error("model " + name + " lacks schema");
    Result<ContextSchema> parsed_schema = SchemaFromJson(category.value(), *schema);
    if (!parsed_schema.ok()) return parsed_schema.error();
    model.schema = std::move(parsed_schema).value();

    const Json* tree = m.find("tree");
    if (tree == nullptr) return Error("model " + name + " lacks tree");
    Result<DecisionTree> parsed_tree = DecisionTree::FromJson(*tree);
    if (!parsed_tree.ok()) return parsed_tree.error();
    model.tree = std::move(parsed_tree).value();

    model.training_rows = static_cast<std::size_t>(m.number_or("training_rows", 0));
    if (const Json* confusion = m.find("holdout_confusion"); confusion != nullptr) {
      ConfusionMatrix counts;
      counts.tp = static_cast<long>(confusion->number_or("tp", 0));
      counts.tn = static_cast<long>(confusion->number_or("tn", 0));
      counts.fp = static_cast<long>(confusion->number_or("fp", 0));
      counts.fn = static_cast<long>(confusion->number_or("fn", 0));
      model.holdout_metrics = ComputeMetrics(counts);
    }
    memory.Install(category.value(), std::move(model));
  }
  return memory;
}

}  // namespace sidet
