#include "core/camera_warning.h"

namespace sidet {

std::string_view ToString(WarningTrigger trigger) {
  switch (trigger) {
    case WarningTrigger::kDoorOpened: return "door opened";
    case WarningTrigger::kWindowOpened: return "window opened";
    case WarningTrigger::kSmokeOrFire: return "smoke or fire";
    case WarningTrigger::kWaterLeak: return "water leak";
    case WarningTrigger::kCombustibleGas: return "combustible gas";
    case WarningTrigger::kMotionWhileAway: return "motion while away";
  }
  return "?";
}

CameraWarningService::CameraWarningService(CameraWarningOptions options) : options_(options) {}

bool CameraWarningService::TriggerActive(WarningTrigger trigger,
                                         const SensorSnapshot& snapshot) const {
  const auto reads_true = [&snapshot](SensorType type) {
    const SensorValue* value = snapshot.FindByType(type);
    return value != nullptr && value->as_bool();
  };
  switch (trigger) {
    case WarningTrigger::kDoorOpened: return reads_true(SensorType::kDoorContact);
    case WarningTrigger::kWindowOpened: return reads_true(SensorType::kWindowContact);
    case WarningTrigger::kSmokeOrFire: return reads_true(SensorType::kSmoke);
    case WarningTrigger::kWaterLeak: return reads_true(SensorType::kWaterLeak);
    case WarningTrigger::kCombustibleGas: return reads_true(SensorType::kGasLeak);
    case WarningTrigger::kMotionWhileAway: {
      const SensorValue* occupancy = snapshot.FindByType(SensorType::kOccupancy);
      return reads_true(SensorType::kMotion) && occupancy != nullptr &&
             !occupancy->as_bool();
    }
  }
  return false;
}

std::vector<CameraWarning> CameraWarningService::Observe(const SensorSnapshot& snapshot,
                                                         SimTime now) {
  std::vector<CameraWarning> raised;
  for (std::size_t i = 0; i < kWarningTriggerCount; ++i) {
    const auto trigger = static_cast<WarningTrigger>(i);
    const bool active = TriggerActive(trigger, snapshot);
    bool& previous = previous_state_[trigger];
    const bool rising_edge = active && !previous;
    previous = active;
    if (!rising_edge) continue;

    const auto last = last_warned_.find(trigger);
    if (last != last_warned_.end() &&
        now - last->second < options_.cooldown_seconds) {
      continue;  // still cooling down
    }
    last_warned_[trigger] = now;

    CameraWarning warning;
    warning.trigger = trigger;
    warning.at = now;
    warning.detail = "camera warning: " + std::string(ToString(trigger)) + " at " +
                     now.ToString();
    raised.push_back(warning);
    history_.push_back(warning);
  }
  return raised;
}

std::map<WarningTrigger, int> CameraWarningService::CountsByTrigger() const {
  std::map<WarningTrigger, int> counts;
  for (const CameraWarning& warning : history_) ++counts[warning.trigger];
  return counts;
}

}  // namespace sidet
