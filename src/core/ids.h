// ContextIds — the assembled intrusion-detection framework of Fig 3.
//
// Pipeline per incoming instruction (§IV):
//   1. sensitive-instruction detector: non-sensitive instructions pass
//      through without any sensor work;
//   2. sensor data collector: poll both vendor stacks for the live context
//      (or accept a caller-provided snapshot);
//   3. context feature memory: run the device family's decision tree on the
//      featurized snapshot;
//   4. instruction judger: consistent context => allow, otherwise reject.
#pragma once

#include <memory>

#include "automation/engine.h"
#include "core/audit.h"
#include "core/collector.h"
#include "core/detector.h"
#include "core/feature_memory.h"

namespace sidet {

struct Judgement {
  bool sensitive = false;
  bool allowed = true;
  double consistency = 1.0;  // model P(context legitimate); 1 when not judged
  std::string reason;
};

struct IdsStats {
  std::size_t judged = 0;
  std::size_t passed_non_sensitive = 0;
  std::size_t passed_unmodelled = 0;  // sensitive but out-of-scope category
  std::size_t allowed = 0;
  std::size_t blocked = 0;
  std::size_t errors = 0;  // judgement failures (missing model/sensor)
};

class ContextIds {
 public:
  // `collector` may be null when judgements always come with snapshots.
  ContextIds(SensitiveInstructionDetector detector, ContextFeatureMemory memory,
             std::unique_ptr<SensorDataCollector> collector = nullptr);

  // Judges against a caller-provided context snapshot.
  Result<Judgement> Judge(const Instruction& instruction, const SensorSnapshot& snapshot,
                          SimTime time);

  // Judges against a freshly collected context (requires a collector).
  Result<Judgement> JudgeLive(const Instruction& instruction, SimTime now);

  // Adapts the IDS into a RuleEngine guard. On judgement errors the guard
  // fails closed for sensitive instructions (blocks) and open otherwise.
  InstructionGuard AsGuard();

  // Attaches an audit log; every subsequent judgement appends one record.
  void SetAuditLog(AuditLog* audit) { audit_ = audit; }

  const SensitiveInstructionDetector& detector() const { return detector_; }
  const ContextFeatureMemory& memory() const { return memory_; }
  const IdsStats& stats() const { return stats_; }

 private:
  SensitiveInstructionDetector detector_;
  ContextFeatureMemory memory_;
  std::unique_ptr<SensorDataCollector> collector_;
  AuditLog* audit_ = nullptr;  // not owned
  IdsStats stats_;
};

// Convenience: run the full offline pipeline — simulate the survey, build
// the corpus, train the memory — and assemble an IDS (no collector).
Result<ContextIds> BuildIdsFromScratch(const InstructionRegistry& registry,
                                       std::uint64_t seed = 2021);

}  // namespace sidet
