// ContextIds — the assembled intrusion-detection framework of Fig 3.
//
// Pipeline per incoming instruction (§IV):
//   1. sensitive-instruction detector: non-sensitive instructions pass
//      through without any sensor work;
//   2. sensor data collector: poll both vendor stacks for the live context
//      (or accept a caller-provided snapshot);
//   3. context feature memory: run the device family's decision tree on the
//      featurized snapshot;
//   4. instruction judger: consistent context => allow, otherwise reject.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "automation/engine.h"
#include "core/audit.h"
#include "core/collector.h"
#include "core/consistency.h"
#include "core/detector.h"
#include "core/feature_memory.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sidet {

struct Judgement {
  bool sensitive = false;
  bool allowed = true;
  double consistency = 1.0;  // model P(context legitimate); 1 when not judged
  std::string reason;
  // Guard tier behind a fail-open/fail-closed verdict ("availability",
  // "staleness", "coverage", "consistency"); empty when the model judged.
  std::string tier;
  // Worst staleness of the judged snapshot (JudgeLive stamps it on policy
  // verdicts and degraded judgements; 0 elsewhere).
  std::int64_t staleness_seconds = 0;
};

// How a verdict was reached — the discriminator the flight recorder persists
// so a replay can reconstruct the exact reason string and audit record.
enum class VerdictKind : std::uint8_t {
  kNonSensitive = 0,  // passed without sensor work
  kUnmodelled,        // sensitive but the family is outside the modelled scope
  kError,             // judgement failure (missing model sensor etc.), fail closed
  kScored,            // model ran; allowed = consistency >= 0.5
  kFailOpen,          // degraded-policy pass without judging
  kFailClosed,        // degraded-policy block without judging
};

// Stable discriminator labels ("scored", "fail_open", ...) used by the
// flight-recorder NDJSON format and the explain wire surface.
std::string_view ToString(VerdictKind kind);

// One explained feature of a scored verdict: which schema field the walk
// compared, the value it saw, and the signed Saabas contribution that field's
// splits moved the consistency probability by (positive pushes toward allow).
struct FeatureContribution {
  std::uint32_t field = 0;    // schema field index (schema.fields()[field])
  std::string feature;        // schema field name ("smoke", "hour", "action", ...)
  double value = 0.0;         // featurized value the walk compared
  double contribution = 0.0;  // signed probability delta toward consistency
  std::string reason;         // human-readable sentence for the ops surface
};

// Result of ContextIds::Explain/ExplainBatch. For scored rows the served
// probability decomposes exactly (ForestExplanation's identity): summing
// bias + every path contribution + residual left-to-right reproduces
// judgement.consistency bit-for-bit — `contributions` keeps only the top-k
// by |contribution|, so the full-path sum is only recoverable with
// top_k >= schema size; the wire surface defaults to a skimmable 5.
// Explanation is a pure read: no stats, audit records or observer events.
struct ExplainResult {
  VerdictKind kind = VerdictKind::kNonSensitive;
  Judgement judgement;  // exactly what Judge()/JudgeBatch would serve
  double bias = 0.5;
  double residual = 0.0;
  std::vector<FeatureContribution> contributions;  // |contribution| descending
  Json ToJson() const;
};

// Compact per-row attribution note handed to verdict observers when
// attribution capture is on: the scored row's top-k (schema field index,
// contribution) pairs. Indices resolve through the category schema, which
// the flight-recorder session header's model fingerprint pins.
struct AttributionNote {
  std::uint32_t row = 0;
  std::vector<std::pair<std::uint32_t, double>> top;
};

// One row of a batch judgement (replay / bulk audit workloads). The
// referenced instruction and snapshot must outlive the JudgeBatch call.
struct JudgeRequest {
  const Instruction* instruction = nullptr;
  const SensorSnapshot* snapshot = nullptr;
  SimTime time;
  // Propagated request-trace identity (0 = untraced). The IDS never reads
  // it; it flows through so verdict observers (flight recorder) can join
  // each decision to its server-side trace.
  std::uint64_t trace_id = 0;
};

// Wall-clock stage breakdown of one JudgeBatch call, measured only while a
// verdict observer is attached (four extra clock reads per batch).
struct BatchStageMicros {
  std::size_t rows = 0;
  std::int64_t classify_us = 0;  // row classification + context grouping
  std::int64_t score_us = 0;     // featurize + model scoring across lanes
  std::int64_t verdict_us = 0;   // sequential verdict/audit pass
  std::int64_t wall_us = 0;      // whole call
};

// Decision-capture hook (the flight recorder implements this). The IDS calls
// it synchronously — once per single judgement and once per batch, never per
// row — so implementations must only stage data and return; any serialization
// belongs on a background thread. The requests span passed to OnBatch is
// valid only for the duration of the call.
class VerdictObserver {
 public:
  virtual ~VerdictObserver() = default;

  // One judgement. `snapshot` is null for policy verdicts reached without
  // sensor context; `latency_us` is the end-to-end judgement wall time.
  virtual void OnVerdict(const Instruction& instruction, const SensorSnapshot* snapshot,
                         SimTime at, VerdictKind kind, const Judgement& judgement,
                         bool degraded, std::int64_t latency_us) = 0;

  // One JudgeBatch call. `kinds[i]`/`probabilities[i]` describe row i of
  // `requests`; `errors[i]` is non-empty only for kError rows. The three
  // vectors are the batch's own scratch arrays, handed over by value (the
  // IDS moves them — they are dead after its verdict pass), so capturing
  // them costs the observer no per-row copy. Verdicts are reconstructible:
  // allowed = probability >= 0.5 for scored rows, and the reason strings are
  // deterministic functions of (kind, probability, error).
  virtual void OnBatch(std::span<const JudgeRequest> requests, std::vector<VerdictKind> kinds,
                       std::vector<double> probabilities, std::vector<std::string> errors,
                       const BatchStageMicros& stages) = 0;

  // Optional attribution channel: with ContextIds::EnableAttributionCapture
  // on, every OnBatch is immediately followed by the batch's scored-row
  // top-k attribution notes (row indices refer to the OnBatch requests
  // span). The span is valid only for the duration of the call. Default
  // ignores, so observers that predate attribution are unaffected.
  virtual void OnBatchAttributions(std::span<const AttributionNote> notes) {
    (void)notes;
  }
};

struct IdsStats {
  std::size_t judged = 0;
  std::size_t passed_non_sensitive = 0;
  std::size_t passed_unmodelled = 0;  // sensitive but out-of-scope category
  std::size_t allowed = 0;
  std::size_t blocked = 0;
  std::size_t errors = 0;  // judgement failures (missing model/sensor)
  std::size_t judged_degraded = 0;    // judged on a stale/partial snapshot
  std::size_t blocked_on_outage = 0;  // fail-closed verdicts without judging
  std::size_t allowed_degraded = 0;   // fail-open passes with audit warning
  // Consistency-tier outcomes: snapshots the cross-sensor couplings condemned.
  std::size_t blocked_inconsistent = 0;  // fail-closed on condemned context
  std::size_t allowed_inconsistent = 0;  // fail-open pass despite condemnation

  Json ToJson() const;
};

// What JudgeLive does when the sensor context is degraded (stale/partial
// snapshot) or unavailable (collection failed, or context staler than
// max_staleness_seconds).
enum class DegradedAction {
  kJudge,             // run the model on whatever context we have
  kBlock,             // fail closed without judging
  kAllowWithWarning,  // fail open, flagged in audit log and stats
};

// Fail-open/fail-closed policy, chosen per sensitivity level: an instruction
// is *critical* when its category's surveyed high-threat fraction reaches
// critical_threshold (window/lock and camera sit above 0.9; borderline
// families like curtains near 0.55). With context merely degraded we judge by
// default; with no usable context, critical instructions fail closed while
// standard sensitive ones fail open with an audit warning. kJudge is not
// meaningful without a snapshot and degenerates to kBlock there.
struct DegradedContextPolicy {
  double critical_threshold = 0.75;
  DegradedAction standard_degraded = DegradedAction::kJudge;
  DegradedAction critical_degraded = DegradedAction::kJudge;
  DegradedAction standard_unavailable = DegradedAction::kAllowWithWarning;
  DegradedAction critical_unavailable = DegradedAction::kBlock;
  // Snapshots the cross-sensor consistency tier condemns fail closed by
  // default at every sensitivity level: an *inconsistent* context is evidence
  // of forgery, not of sensor trouble, so the tier never unblocks anything
  // the model would have blocked.
  DegradedAction standard_inconsistent = DegradedAction::kBlock;
  DegradedAction critical_inconsistent = DegradedAction::kBlock;
  // Context staler than this counts as unavailable, not merely degraded.
  std::int64_t max_staleness_seconds = 1800;
};

class ContextIds {
 public:
  // `collector` may be null when judgements always come with snapshots.
  ContextIds(SensitiveInstructionDetector detector, ContextFeatureMemory memory,
             std::unique_ptr<SensorDataCollector> collector = nullptr);
  ~ContextIds();
  ContextIds(ContextIds&&) noexcept;
  ContextIds& operator=(ContextIds&&) noexcept;

  // Judges against a caller-provided context snapshot.
  Result<Judgement> Judge(const Instruction& instruction, const SensorSnapshot& snapshot,
                          SimTime time);

  // Historical nested name; the struct now lives at namespace scope so the
  // flight recorder can reference rows without depending on ContextIds.
  using JudgeRequest = sidet::JudgeRequest;

  // Judges a whole instruction stream at once. Verdicts, stats counters and
  // audit records are identical to calling Judge() per row, but the work is
  // batched: context featurization is computed once per distinct
  // (category, snapshot, time) group and patched per action, rows score
  // through the compiled flat-array trees, and both phases shard across
  // `threads` lanes (1 = sequential, 0 = hardware concurrency). Rows whose
  // judgement errors (missing model sensor etc.) fail closed in place —
  // allowed=false with the error reason — instead of aborting the batch.
  std::vector<Judgement> JudgeBatch(std::span<const JudgeRequest> requests, int threads = 1);

  // Probability-only core of JudgeBatch: scores every row into
  // `probabilities` (same size as `requests`) without materializing
  // judgements, stats, audit records or observer events. Sentinels for rows
  // the model does not score: non-sensitive and unmodelled rows report 1.0
  // (they would pass), error rows 0.0 (they would fail closed). After the
  // first call has warmed the reusable batch scratch, a steady-state call
  // performs zero per-row heap allocations (AllocationFreeScoreBatch test);
  // this is the serving layer's unit of work.
  Status ScoreBatch(std::span<const JudgeRequest> requests, std::span<double> probabilities,
                    int threads = 1);

  // Judges against a freshly collected context (requires a collector).
  // Non-sensitive instructions skip collection entirely; degraded or missing
  // context is resolved through the degraded-context policy.
  Result<Judgement> JudgeLive(const Instruction& instruction, SimTime now);

  // Explains the verdict Judge() would serve for the same arguments: the
  // identical judgement plus the top-k signed feature contributions of the
  // Saabas attribution walk (DESIGN.md §17). A pure read — no stats, audit
  // records or observer events — so the ops surface can explain freely
  // without perturbing the serving counters. Errors exactly where Judge()
  // would (missing schema sensor etc.).
  Result<ExplainResult> Explain(const Instruction& instruction,
                                const SensorSnapshot& snapshot, SimTime time,
                                std::size_t top_k = 5);

  // Batch form: one ExplainResult per request, in request order. Rows that
  // would fail Judge() come back kind == kError with the fail-closed
  // judgement instead of aborting the batch (JudgeBatch semantics). Scored
  // rows are bit-identical to per-row Explain() on the same arguments.
  std::vector<ExplainResult> ExplainBatch(std::span<const JudgeRequest> requests,
                                          std::size_t top_k = 5);

  // Opt-in decision-attribution capture: when on and a verdict observer is
  // attached, every JudgeBatch re-walks its scored rows through the
  // attribution arrays and hands the observer per-row top-k notes
  // (OnBatchAttributions) right after OnBatch — the flight recorder stamps
  // them into the session NDJSON. Off (the default) costs the batch path
  // nothing but the flag test.
  void EnableAttributionCapture(bool on, std::size_t top_k = 5) {
    attribution_capture_ = on;
    attribution_top_k_ = top_k;
  }
  bool attribution_capture_enabled() const { return attribution_capture_; }

  void SetDegradedPolicy(DegradedContextPolicy policy) { policy_ = policy; }
  const DegradedContextPolicy& degraded_policy() const { return policy_; }
  // May be null (no collector attached).
  SensorDataCollector* collector() { return collector_.get(); }

  // Attaches the cross-sensor consistency tier to the live path: collected
  // snapshots whose physics couplings fail are resolved through the
  // *_inconsistent policy actions instead of being trusted by the model.
  // Pass nullptr to detach. Caller-provided snapshots (Judge / JudgeBatch)
  // are not tiered — they are the replay surface and must stay bit-faithful.
  void SetConsistencyTier(std::unique_ptr<CrossSensorConsistency> tier) {
    consistency_ = std::move(tier);
  }
  CrossSensorConsistency* consistency_tier() { return consistency_.get(); }

  // Adapts the IDS into a RuleEngine guard. On judgement errors the guard
  // fails closed for sensitive instructions (blocks) and open otherwise.
  InstructionGuard AsGuard();

  // Attaches an audit log; every subsequent judgement appends one record.
  void SetAuditLog(AuditLog* audit) { audit_ = audit; }

  // Attaches telemetry: IdsStats mirror into `sidet_ids_*` counters, each
  // Fig 3 pipeline stage records a latency histogram, and — when `tracer`
  // is non-null — a span (ids.judge / ids.detect / ids.collect / ids.score /
  // ids.verdict, plus ids.batch.* at batch granularity). Verdicts, stats and
  // audit records are bit-identical with telemetry attached or not
  // (TelemetryDeterminismTest). Pass nullptrs to detach. Neither pointer is
  // owned; both must outlive the IDS.
  void AttachTelemetry(MetricsRegistry* registry, SpanTracer* tracer = nullptr);
  SpanTracer* tracer() { return tracer_; }

  // Attaches a decision-capture observer (e.g. replay::FlightRecorder):
  // every judgement and every batch is reported after its verdicts, stats
  // and audit records are final. Like telemetry, the observer is a pure
  // spectator — verdicts are bit-identical attached or not. Pass nullptr to
  // detach. Not owned; must outlive the IDS or be detached first.
  void SetVerdictObserver(VerdictObserver* observer) { observer_ = observer; }
  VerdictObserver* verdict_observer() { return observer_; }

  // Benchmark/test hook: routes judgements through the pointer trees instead
  // of the compiled flat arrays (verdicts are identical either way).
  void EnableCompiledInference(bool on) { memory_.EnableCompiledInference(on); }

  // Benchmark/test hook: toggles the vectorized batch engine (on by
  // default). On = per-group feature matrices stream through the compiled
  // trees' branch-free block kernel on a persistent chunked pool; off = the
  // legacy per-row walk over a transient pool. Verdicts, reasons, stats and
  // audit records are bit-identical either way (vectorized_equiv_test); the
  // switch exists so bench_throughput_scaling can report old-vs-new
  // side by side. Ignored (always legacy) while compiled inference is off.
  void EnableVectorizedBatch(bool on) { vectorized_batch_ = on; }
  bool vectorized_batch_enabled() const { return vectorized_batch_; }

  // Serving-path tracing hook: when on, every JudgeBatch measures its stage
  // wall clocks (even with telemetry and observer detached) and keeps the
  // last batch's BatchStageMicros readable via last_batch_stages(). Safe
  // under the same serving contract as the batch arenas: one thread drives
  // a given ContextIds, and the reader (MicroBatcher::RunBatch) is that
  // same thread.
  void EnableBatchStageCapture(bool on) { stage_capture_ = on; }
  const BatchStageMicros& last_batch_stages() const { return last_batch_stages_; }

  const SensitiveInstructionDetector& detector() const { return detector_; }
  const ContextFeatureMemory& memory() const { return memory_; }
  const IdsStats& stats() const { return stats_; }

 private:
  // Reusable batch arenas (group index, per-lane feature matrices, verdict
  // scratch, the partitioning pool). Owned by the IDS and reused across
  // JudgeBatch/ScoreBatch calls, which is safe under the serving contract
  // that one thread drives a given ContextIds (GatewayRouter lanes).
  struct BatchScratch;

  // Pre-resolved metric handles, allocated by AttachTelemetry; null when
  // telemetry is detached so the hot paths pay only a pointer test.
  struct Instruments {
    Counter* judged;
    Counter* passed_non_sensitive;
    Counter* passed_unmodelled;
    Counter* allowed;
    Counter* blocked;
    Counter* errors;
    Counter* judged_degraded;
    Counter* blocked_on_outage;
    Counter* allowed_degraded;
    Counter* blocked_inconsistent;
    Counter* allowed_inconsistent;
    Histogram* judge_seconds;
    Histogram* stage_detect_seconds;
    Histogram* stage_collect_seconds;
    Histogram* stage_score_seconds;
    Histogram* stage_verdict_seconds;
    Counter* batches;
    Histogram* batch_rows;
    Histogram* batch_classify_seconds;
    Histogram* batch_score_seconds;
    Histogram* batch_verdict_seconds;
    IdsStats mirrored;  // last stats snapshot pushed to the counters
  };

  Result<Judgement> JudgeInternal(const Instruction& instruction,
                                  const SensorSnapshot& snapshot, SimTime time,
                                  bool degraded, std::int64_t staleness_seconds = 0);
  // Shared single-row explanation core (Explain / ExplainBatch / capture):
  // classifies, featurizes into `row_scratch`, runs the attribution walk
  // into `contribution_scratch`, and assembles the top-k result. Returns
  // false when featurization failed (out.kind == kError carries the reason).
  bool ExplainInternal(const Instruction& instruction, const SensorSnapshot& snapshot,
                       SimTime time, std::size_t top_k, std::vector<double>& row_scratch,
                       std::vector<double>& contribution_scratch, ExplainResult& out);
  // JudgeBatch tail under attribution capture: re-walks scored rows and
  // reports AttributionNotes to the observer.
  void CaptureBatchAttributions(std::span<const JudgeRequest> requests);
  // Classification + scoring shared by JudgeBatch and ScoreBatch: fills the
  // scratch's kinds/probabilities/errors rows. `stages` non-null ⇒ stage
  // wall clocks are measured into it.
  void ClassifyAndScoreBatch(std::span<const JudgeRequest> requests, int threads,
                             BatchStageMicros* stages);
  BatchScratch& Scratch();
  // Observer notification for a single judgement; `start_us` is the
  // MonotonicMicros() read taken at entry when an observer is attached.
  void NotifyVerdict(const Instruction& instruction, const SensorSnapshot* snapshot,
                     SimTime time, VerdictKind kind, const Judgement& judgement,
                     bool degraded, std::int64_t start_us);
  // Pushes the IdsStats delta since the last flush into the counters.
  void FlushStatsTelemetry();
  Histogram* StageHistogram(Histogram* Instruments::* member) const {
    return telemetry_ == nullptr ? nullptr : (*telemetry_).*member;
  }
  // Direct policy verdict (no model run) for degraded/unavailable/condemned
  // context. `tier` names the guard that decided ("availability", "staleness",
  // "coverage", "consistency") and lands in the judgement and audit record.
  Judgement PolicyVerdict(const Instruction& instruction, SimTime time,
                          DegradedAction action, const std::string& why,
                          const char* tier, std::int64_t staleness_seconds);
  void AppendAudit(const Instruction& instruction, SimTime time,
                   const Judgement& judgement, bool degraded);

  SensitiveInstructionDetector detector_;
  ContextFeatureMemory memory_;
  std::unique_ptr<SensorDataCollector> collector_;
  std::unique_ptr<CrossSensorConsistency> consistency_;  // null = tier off
  AuditLog* audit_ = nullptr;  // not owned
  DegradedContextPolicy policy_;
  IdsStats stats_;
  std::unique_ptr<Instruments> telemetry_;  // null when detached
  SpanTracer* tracer_ = nullptr;            // not owned
  VerdictObserver* observer_ = nullptr;     // not owned
  std::unique_ptr<BatchScratch> scratch_;   // lazily built, reused per batch
  bool vectorized_batch_ = true;
  bool stage_capture_ = false;
  bool attribution_capture_ = false;
  std::size_t attribution_top_k_ = 5;
  BatchStageMicros last_batch_stages_;
};

// Convenience: run the full offline pipeline — simulate the survey, build
// the corpus, train the memory — and assemble an IDS (no collector).
// `threads` shards corpus generation and per-family model training
// (1 = sequential, 0 = hardware concurrency); the assembled IDS is
// byte-identical at any thread count.
Result<ContextIds> BuildIdsFromScratch(const InstructionRegistry& registry,
                                       std::uint64_t seed = 2021, int threads = 1);

}  // namespace sidet
