#include "core/online_update.h"

#include "ml/sampling.h"
#include "ml/validation.h"

namespace sidet {

Status FeedbackBuffer::Record(DeviceCategory category, const std::string& action,
                              const SensorSnapshot& snapshot, SimTime time, bool legitimate) {
  auto it = buffers_.find(category);
  if (it == buffers_.end()) {
    PerCategory fresh;
    fresh.schema = ContextSchema::ForCategory(category);
    fresh.data = Dataset(fresh.schema.ToFeatureSpecs());
    it = buffers_.emplace(category, std::move(fresh)).first;
  }
  Result<std::vector<double>> row = it->second.schema.Featurize(snapshot, time, action);
  if (!row.ok()) return row.error().context("feedback record");
  it->second.data.Add(std::move(row).value(), legitimate ? 1 : 0);
  return Status::Ok();
}

std::size_t FeedbackBuffer::total() const {
  std::size_t total = 0;
  for (const auto& [category, buffer] : buffers_) total += buffer.data.size();
  return total;
}

std::size_t FeedbackBuffer::CountFor(DeviceCategory category) const {
  const auto it = buffers_.find(category);
  return it == buffers_.end() ? 0 : it->second.data.size();
}

const Dataset* FeedbackBuffer::ForCategory(DeviceCategory category) const {
  const auto it = buffers_.find(category);
  return it == buffers_.end() ? nullptr : &it->second.data;
}

std::vector<DeviceCategory> FeedbackBuffer::Categories() const {
  std::vector<DeviceCategory> out;
  for (const auto& [category, buffer] : buffers_) out.push_back(category);
  return out;
}

void FeedbackBuffer::Clear() { buffers_.clear(); }

Status RetrainWithFeedback(ContextFeatureMemory& memory, const RuleCorpus& corpus,
                           const FeedbackBuffer& feedback, const RetrainOptions& options) {
  Rng rng(options.training.seed ^ 0xfeedbac0ULL);
  for (const DeviceCategory category : feedback.Categories()) {
    const Dataset* rows = feedback.ForCategory(category);
    if (rows == nullptr || rows->empty()) continue;

    DeviceDatasetConfig config = DefaultConfigFor(category, options.training.seed);
    config.samples = options.training.samples_per_device;
    Result<DeviceDataset> built = BuildDeviceDataset(corpus, config);
    if (!built.ok()) {
      return built.error().context("retrain " + std::string(ToString(category)));
    }

    const TrainTestSplit split =
        StratifiedSplit(built.value().data, options.training.test_fraction, rng);
    Dataset train = split.train;
    for (int replica = 0; replica < options.feedback_weight; ++replica) {
      const Status appended = train.Append(*rows);
      if (!appended.ok()) return appended.error().context("feedback append");
    }
    if (options.training.oversample) train = RandomOversample(train, rng);
    train.Shuffle(rng);

    TrainedDeviceModel model;
    model.schema = std::move(built.value().schema);
    model.tree = DecisionTree(options.training.tree_params);
    const Status fitted = model.tree.Fit(train);
    if (!fitted.ok()) return fitted.error().context(std::string(ToString(category)));
    model.training_rows = train.size();
    model.holdout_metrics =
        ComputeMetrics(split.test.labels(), model.tree.PredictAll(split.test));
    memory.Install(category, std::move(model));
  }
  return Status::Ok();
}

}  // namespace sidet
