#include "core/ids.h"

#include "datagen/corpus_generator.h"
#include "survey/survey.h"
#include "util/log.h"
#include "util/strings.h"

namespace sidet {

ContextIds::ContextIds(SensitiveInstructionDetector detector, ContextFeatureMemory memory,
                       std::unique_ptr<SensorDataCollector> collector)
    : detector_(std::move(detector)),
      memory_(std::move(memory)),
      collector_(std::move(collector)) {}

void ContextIds::AppendAudit(const Instruction& instruction, SimTime time,
                             const Judgement& judgement, bool degraded) {
  if (audit_ == nullptr) return;
  AuditRecord record;
  record.at = time;
  record.instruction = instruction.name;
  record.category = instruction.category;
  record.sensitive = judgement.sensitive;
  record.allowed = judgement.allowed;
  record.consistency = judgement.consistency;
  record.reason = judgement.reason;
  record.degraded = degraded;
  audit_->Append(std::move(record));
}

Result<Judgement> ContextIds::Judge(const Instruction& instruction,
                                    const SensorSnapshot& snapshot, SimTime time) {
  return JudgeInternal(instruction, snapshot, time, /*degraded=*/false);
}

Result<Judgement> ContextIds::JudgeInternal(const Instruction& instruction,
                                            const SensorSnapshot& snapshot, SimTime time,
                                            bool degraded) {
  ++stats_.judged;
  // Deferred audit append: records whatever judgement the branches settle on.
  Judgement judgement;
  struct AuditOnExit {
    ContextIds* ids;
    const Instruction& instruction;
    SimTime time;
    const Judgement& judgement;
    bool degraded;
    ~AuditOnExit() { ids->AppendAudit(instruction, time, judgement, degraded); }
  } audit_on_exit{this, instruction, time, judgement, degraded};
  judgement.sensitive = detector_.IsSensitive(instruction);
  if (!judgement.sensitive) {
    ++stats_.passed_non_sensitive;
    judgement.allowed = true;
    judgement.reason = "not a sensitive instruction";
    return judgement;
  }

  // Families the framework leaves unmodelled (§V: door locks carry their own
  // authentication, cameras get proactive warnings, alarms are pure triggers)
  // pass through the judger.
  if (!memory_.HasModel(instruction.category)) {
    ++stats_.passed_unmodelled;
    judgement.allowed = true;
    judgement.reason = "category outside the modelled scope";
    return judgement;
  }

  Result<double> probability =
      memory_.ConsistencyProbability(instruction.category, instruction.name, snapshot, time);
  if (!probability.ok()) {
    ++stats_.errors;
    // Audit the failure conservatively: a sensitive instruction we could not
    // judge is recorded as not allowed.
    judgement.allowed = false;
    judgement.consistency = 0.0;
    judgement.reason = "judgement error: " + probability.error().message();
    return probability.error().context("judge " + instruction.name);
  }
  judgement.consistency = probability.value();
  judgement.allowed = judgement.consistency >= 0.5;
  judgement.reason = Format("context consistency %.3f %s threshold", judgement.consistency,
                            judgement.allowed ? "meets" : "below");
  ++(judgement.allowed ? stats_.allowed : stats_.blocked);
  return judgement;
}

Judgement ContextIds::PolicyVerdict(const Instruction& instruction, SimTime time,
                                    DegradedAction action, const std::string& why) {
  ++stats_.judged;
  Judgement judgement;
  judgement.sensitive = true;
  if (action == DegradedAction::kAllowWithWarning) {
    ++stats_.allowed_degraded;
    judgement.allowed = true;
    judgement.consistency = 1.0;
    judgement.reason = "fail-open (" + why + "); passed with audit warning";
  } else {
    // kBlock; kJudge degenerates here when there is nothing to judge on.
    ++stats_.blocked_on_outage;
    judgement.allowed = false;
    judgement.consistency = 0.0;
    judgement.reason = "fail-closed (" + why + ")";
  }
  LogWarn(Format("ids: %s for '%s': %s", judgement.allowed ? "fail-open" : "fail-closed",
                 instruction.name.c_str(), why.c_str()));
  AppendAudit(instruction, time, judgement, /*degraded=*/true);
  return judgement;
}

Result<Judgement> ContextIds::JudgeLive(const Instruction& instruction, SimTime now) {
  if (collector_ == nullptr) return Error("ids has no sensor data collector attached");
  // Fast path: non-sensitive instructions pass through without sensor work.
  if (!detector_.IsSensitive(instruction)) {
    return Judge(instruction, SensorSnapshot(now), now);
  }
  const bool critical =
      detector_.profile().Of(instruction.category).high >= policy_.critical_threshold;

  Result<SensorSnapshot> snapshot = collector_->Collect(now);
  if (!snapshot.ok()) {
    const DegradedAction action =
        critical ? policy_.critical_unavailable : policy_.standard_unavailable;
    return PolicyVerdict(instruction, now, action,
                         "sensor context unavailable: " + snapshot.error().message());
  }

  const SnapshotQuality& quality = snapshot.value().quality();
  if (quality.max_staleness_seconds() > policy_.max_staleness_seconds) {
    const DegradedAction action =
        critical ? policy_.critical_unavailable : policy_.standard_unavailable;
    return PolicyVerdict(instruction, now, action,
                         Format("sensor context %llds stale (limit %llds)",
                                static_cast<long long>(quality.max_staleness_seconds()),
                                static_cast<long long>(policy_.max_staleness_seconds)));
  }
  if (quality.degraded()) {
    const DegradedAction action =
        critical ? policy_.critical_degraded : policy_.standard_degraded;
    if (action != DegradedAction::kJudge) {
      return PolicyVerdict(instruction, now, action,
                           Format("degraded context: %zu stale readings, %zu vendors missing",
                                  quality.stale_readings, quality.missing_vendors));
    }
    ++stats_.judged_degraded;
    return JudgeInternal(instruction, snapshot.value(), now, /*degraded=*/true);
  }
  return Judge(instruction, snapshot.value(), now);
}

InstructionGuard ContextIds::AsGuard() {
  return [this](const Instruction& instruction, const SensorSnapshot& snapshot) {
    Result<Judgement> judgement = Judge(instruction, snapshot, snapshot.time());
    if (!judgement.ok()) {
      // Fail closed on sensitive instructions, open otherwise.
      return !detector_.IsSensitive(instruction);
    }
    return judgement.value().allowed;
  };
}

Result<ContextIds> BuildIdsFromScratch(const InstructionRegistry& registry, std::uint64_t seed) {
  // The detector ships configured from the published Table III profile: a
  // 340-respondent re-survey has ~2.7% sampling noise per fraction, enough to
  // flip the borderline categories (air conditioning 52.94%, curtains 55.88%)
  // across the 50% sensitivity line run to run. bench_table3_survey explores
  // that re-survey variance separately.
  SensitiveInstructionDetector detector(PaperTableThree());

  CorpusConfig corpus_config;
  corpus_config.seed = seed;
  Result<GeneratedCorpus> corpus = GenerateCorpus(corpus_config, registry);
  if (!corpus.ok()) return corpus.error().context("build ids");

  ContextFeatureMemory memory;
  MemoryTrainingOptions options;
  options.seed = seed ^ 0x76a12ULL;
  const Status trained = memory.TrainFromCorpus(corpus.value().corpus, options);
  if (!trained.ok()) return trained.error().context("build ids");

  return ContextIds(std::move(detector), std::move(memory));
}

}  // namespace sidet
