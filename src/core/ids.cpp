#include "core/ids.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "datagen/corpus_generator.h"
#include "survey/survey.h"
#include "util/log.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sidet {

std::string_view ToString(VerdictKind kind) {
  switch (kind) {
    case VerdictKind::kNonSensitive: return "non_sensitive";
    case VerdictKind::kUnmodelled: return "unmodelled";
    case VerdictKind::kError: return "error";
    case VerdictKind::kScored: return "scored";
    case VerdictKind::kFailOpen: return "fail_open";
    case VerdictKind::kFailClosed: return "fail_closed";
  }
  return "unknown";
}

Json ExplainResult::ToJson() const {
  Json out = Json::Object();
  out["kind"] = ToString(kind);
  out["sensitive"] = judgement.sensitive;
  out["allowed"] = judgement.allowed;
  out["consistency"] = judgement.consistency;
  out["reason"] = judgement.reason;
  out["bias"] = bias;
  out["residual"] = residual;
  Json entries = Json::Array();
  for (const FeatureContribution& c : contributions) {
    Json entry = Json::Object();
    entry["field"] = static_cast<std::int64_t>(c.field);
    entry["feature"] = c.feature;
    entry["value"] = c.value;
    entry["contribution"] = c.contribution;
    entry["reason"] = c.reason;
    entries.as_array().push_back(std::move(entry));
  }
  out["contributions"] = std::move(entries);
  return out;
}

Json IdsStats::ToJson() const {
  Json out = Json::Object();
  out["judged"] = judged;
  out["passed_non_sensitive"] = passed_non_sensitive;
  out["passed_unmodelled"] = passed_unmodelled;
  out["allowed"] = allowed;
  out["blocked"] = blocked;
  out["errors"] = errors;
  out["judged_degraded"] = judged_degraded;
  out["blocked_on_outage"] = blocked_on_outage;
  out["allowed_degraded"] = allowed_degraded;
  out["blocked_inconsistent"] = blocked_inconsistent;
  out["allowed_inconsistent"] = allowed_inconsistent;
  return out;
}

namespace {

// Scoring work is split into chunks of at least this many rows: 512 doubles
// of output is 4KiB, so two lanes never interleave writes inside the same
// few cache lines and the per-chunk bookkeeping amortizes to nothing.
constexpr std::size_t kBatchChunkRows = 512;

// Deterministic top-k over a dense contribution row: nonzero entries ranked
// by |contribution| descending, ties broken toward the lower field index
// (stable sort over field order).
void SelectTopContributions(std::span<const double> contributions, std::size_t top_k,
                            std::vector<std::pair<std::uint32_t, double>>& out) {
  out.clear();
  for (std::size_t f = 0; f < contributions.size(); ++f) {
    if (contributions[f] != 0.0) {
      out.emplace_back(static_cast<std::uint32_t>(f), contributions[f]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const std::pair<std::uint32_t, double>& a,
                      const std::pair<std::uint32_t, double>& b) {
                     return std::fabs(a.second) > std::fabs(b.second);
                   });
  if (out.size() > top_k) out.resize(top_k);
}

}  // namespace

// Reusable arenas for ClassifyAndScoreBatch. Everything here is sized on
// first use and recycled afterwards: vectors are cleared (capacity kept),
// group slots are reused up to groups_used, and the partitioning pool
// persists between calls — so a steady-state ScoreBatch performs zero
// per-row heap allocations (AllocationFreeScoreBatch test). Reuse is safe
// under the serving contract that one thread drives a given ContextIds.
struct ContextIds::BatchScratch {
  // Row-parallel verdict arrays, exactly requests.size() entries per batch.
  // JudgeBatch moves them into an attached VerdictObserver (the documented
  // zero-copy handoff), which costs one reallocation on the next batch —
  // acceptable because attaching a flight recorder is opt-in.
  std::vector<VerdictKind> kinds;
  std::vector<double> probabilities;
  std::vector<std::string> errors;

  // One scoring group per distinct (category, snapshot, time): the sensor
  // and time features are shared by every row, only the action feature
  // varies per request.
  struct Group {
    const TrainedDeviceModel* model = nullptr;
    std::vector<std::size_t> rows;  // request indices, in request order
    std::vector<double> base;       // shared featurized context row
    std::vector<double> out;        // per-row probabilities, rows order
    bool failed = false;            // base featurization failed => all kError
  };
  std::vector<Group> groups;
  std::size_t groups_used = 0;

  // Index over distinct (snapshot, time) contexts. group_of[category] holds
  // the slot in `groups` (-1 unresolved, -2 category unmodelled); replay
  // streams repeat the same context run after run, so the last bucket is
  // cached and the fallback is a short linear scan instead of a map.
  struct ContextBucket {
    const SensorSnapshot* snapshot = nullptr;
    std::int64_t seconds = 0;
    std::int32_t group_of[kDeviceCategoryCount];
  };
  std::vector<ContextBucket> buckets;

  // Unit of parallel work: a contiguous run of one group's rows.
  struct Chunk {
    std::uint32_t group = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  std::vector<Chunk> chunks;

  // Per-lane scoring scratch. The feature matrix holds kBlockRows copies of
  // the group's base row; only the action columns are rewritten per block.
  struct Arena {
    std::vector<double> matrix;
    std::vector<const double*> ptrs;
    std::vector<std::pair<const Instruction*, double>> action_cache;
  };
  std::vector<Arena> arenas;

  // Persistent partitioning pool: standing one up per batch (the old
  // free-function ParallelFor) costs thread spawn/join per call and was a
  // big slice of the negative thread scaling.
  std::unique_ptr<ThreadPool> pool;
  std::size_t pool_lanes = 0;

  // Formatted verdict reasons per distinct probability bit pattern; leaf
  // values form a small finite set per model, so this saturates quickly and
  // persists across batches.
  std::unordered_map<std::uint64_t, std::string> reason_cache;

  // Attribution-capture scratch (EnableAttributionCapture): a reusable
  // featurized row, a dense contribution row, the ranked top-k pairs and
  // the per-batch notes handed to the observer.
  std::vector<double> explain_row;
  std::vector<double> explain_contributions;
  std::vector<std::pair<std::uint32_t, double>> explain_ranked;
  std::vector<AttributionNote> notes;
};

ContextIds::ContextIds(SensitiveInstructionDetector detector, ContextFeatureMemory memory,
                       std::unique_ptr<SensorDataCollector> collector)
    : detector_(std::move(detector)),
      memory_(std::move(memory)),
      collector_(std::move(collector)) {}

ContextIds::~ContextIds() = default;
ContextIds::ContextIds(ContextIds&&) noexcept = default;
ContextIds& ContextIds::operator=(ContextIds&&) noexcept = default;

ContextIds::BatchScratch& ContextIds::Scratch() {
  if (scratch_ == nullptr) scratch_ = std::make_unique<BatchScratch>();
  return *scratch_;
}

void ContextIds::AttachTelemetry(MetricsRegistry* registry, SpanTracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) {
    telemetry_.reset();
    return;
  }
  auto inst = std::make_unique<Instruments>();
  inst->judged = registry->GetCounter("sidet_ids_judged_total", "", "Judgements issued");
  inst->passed_non_sensitive = registry->GetCounter(
      "sidet_ids_passed_non_sensitive_total", "", "Non-sensitive pass-throughs");
  inst->passed_unmodelled = registry->GetCounter("sidet_ids_passed_unmodelled_total", "",
                                                 "Sensitive but out-of-scope categories");
  inst->allowed = registry->GetCounter("sidet_ids_allowed_total", "",
                                       "Context-consistent verdicts");
  inst->blocked = registry->GetCounter("sidet_ids_blocked_total", "",
                                       "Context-inconsistent verdicts");
  inst->errors = registry->GetCounter("sidet_ids_errors_total", "", "Judgement failures");
  inst->judged_degraded = registry->GetCounter("sidet_ids_judged_degraded_total", "",
                                               "Judgements on stale/partial context");
  inst->blocked_on_outage = registry->GetCounter("sidet_ids_blocked_on_outage_total", "",
                                                 "Fail-closed verdicts without judging");
  inst->allowed_degraded = registry->GetCounter("sidet_ids_allowed_degraded_total", "",
                                                "Fail-open passes with audit warning");
  inst->blocked_inconsistent = registry->GetCounter(
      "sidet_ids_blocked_inconsistent_total", "",
      "Fail-closed verdicts on consistency-condemned context");
  inst->allowed_inconsistent = registry->GetCounter(
      "sidet_ids_allowed_inconsistent_total", "",
      "Fail-open passes despite consistency condemnation");
  inst->judge_seconds =
      registry->GetHistogram("sidet_ids_judge_seconds", "", {}, "End-to-end judgement latency");
  inst->stage_detect_seconds = registry->GetHistogram(
      "sidet_ids_stage_detect_seconds", "", {}, "Sensitive-instruction detector stage");
  inst->stage_collect_seconds = registry->GetHistogram(
      "sidet_ids_stage_collect_seconds", "", {}, "Sensor data collection stage (JudgeLive)");
  inst->stage_score_seconds = registry->GetHistogram(
      "sidet_ids_stage_score_seconds", "", {}, "Featurize + model scoring stage");
  inst->stage_verdict_seconds = registry->GetHistogram(
      "sidet_ids_stage_verdict_seconds", "", {}, "Verdict assembly + audit stage");
  inst->batches = registry->GetCounter("sidet_ids_batches_total", "", "JudgeBatch calls");
  inst->batch_rows = registry->GetHistogram(
      "sidet_ids_batch_rows", "",
      {1, 8, 64, 256, 1024, 4096, 16384, 65536}, "Rows per JudgeBatch call");
  inst->batch_classify_seconds = registry->GetHistogram(
      "sidet_ids_batch_classify_seconds", "", {}, "Batch row classification + grouping");
  inst->batch_score_seconds = registry->GetHistogram(
      "sidet_ids_batch_score_seconds", "", {}, "Batch featurize + score across lanes");
  inst->batch_verdict_seconds = registry->GetHistogram(
      "sidet_ids_batch_verdict_seconds", "", {}, "Batch sequential verdict/audit pass");
  inst->mirrored = stats_;
  telemetry_ = std::move(inst);
}

void ContextIds::FlushStatsTelemetry() {
  if (telemetry_ == nullptr) return;
  Instruments& inst = *telemetry_;
  const auto bump = [](Counter* counter, std::size_t now_value, std::size_t& mirrored) {
    if (now_value > mirrored) counter->Increment(now_value - mirrored);
    mirrored = now_value;
  };
  bump(inst.judged, stats_.judged, inst.mirrored.judged);
  bump(inst.passed_non_sensitive, stats_.passed_non_sensitive,
       inst.mirrored.passed_non_sensitive);
  bump(inst.passed_unmodelled, stats_.passed_unmodelled, inst.mirrored.passed_unmodelled);
  bump(inst.allowed, stats_.allowed, inst.mirrored.allowed);
  bump(inst.blocked, stats_.blocked, inst.mirrored.blocked);
  bump(inst.errors, stats_.errors, inst.mirrored.errors);
  bump(inst.judged_degraded, stats_.judged_degraded, inst.mirrored.judged_degraded);
  bump(inst.blocked_on_outage, stats_.blocked_on_outage, inst.mirrored.blocked_on_outage);
  bump(inst.allowed_degraded, stats_.allowed_degraded, inst.mirrored.allowed_degraded);
  bump(inst.blocked_inconsistent, stats_.blocked_inconsistent,
       inst.mirrored.blocked_inconsistent);
  bump(inst.allowed_inconsistent, stats_.allowed_inconsistent,
       inst.mirrored.allowed_inconsistent);
}

void ContextIds::AppendAudit(const Instruction& instruction, SimTime time,
                             const Judgement& judgement, bool degraded) {
  if (audit_ == nullptr) return;
  AuditRecord record;
  record.at = time;
  record.instruction = instruction.name;
  record.category = instruction.category;
  record.sensitive = judgement.sensitive;
  record.allowed = judgement.allowed;
  record.consistency = judgement.consistency;
  record.reason = judgement.reason;
  record.degraded = degraded;
  record.tier = judgement.tier;
  record.staleness_seconds = judgement.staleness_seconds;
  audit_->Append(std::move(record));
}

Result<Judgement> ContextIds::Judge(const Instruction& instruction,
                                    const SensorSnapshot& snapshot, SimTime time) {
  return JudgeInternal(instruction, snapshot, time, /*degraded=*/false);
}

void ContextIds::NotifyVerdict(const Instruction& instruction, const SensorSnapshot* snapshot,
                               SimTime time, VerdictKind kind, const Judgement& judgement,
                               bool degraded, std::int64_t start_us) {
  if (observer_ == nullptr) return;
  observer_->OnVerdict(instruction, snapshot, time, kind, judgement, degraded,
                       MonotonicMicros() - start_us);
}

Result<Judgement> ContextIds::JudgeInternal(const Instruction& instruction,
                                            const SensorSnapshot& snapshot, SimTime time,
                                            bool degraded, std::int64_t staleness_seconds) {
  // Telemetry wraps every exit path: the whole-call span/histogram and the
  // stats mirror both run from destructors. With telemetry detached each
  // scope is a pointer test.
  const ScopedStage whole_span(tracer_, StageHistogram(&Instruments::judge_seconds),
                               "ids.judge");
  struct FlushGuard {
    ContextIds* ids;
    ~FlushGuard() { ids->FlushStatsTelemetry(); }
  } flush{this};
  const std::int64_t start_us = observer_ != nullptr ? MonotonicMicros() : 0;

  ++stats_.judged;
  // The audit record is appended before each return: a deferred (destructor
  // based) append would observe the judgement after `return judgement` had
  // already moved its strings out.
  Judgement judgement;
  judgement.staleness_seconds = staleness_seconds;
  {
    const ScopedStage detect_span(
        tracer_, StageHistogram(&Instruments::stage_detect_seconds), "ids.detect");
    judgement.sensitive = detector_.IsSensitive(instruction);
  }
  if (!judgement.sensitive) {
    ++stats_.passed_non_sensitive;
    judgement.allowed = true;
    judgement.reason = "not a sensitive instruction";
    AppendAudit(instruction, time, judgement, degraded);
    NotifyVerdict(instruction, &snapshot, time, VerdictKind::kNonSensitive, judgement,
                  degraded, start_us);
    return judgement;
  }

  // Families the framework leaves unmodelled (§V: door locks carry their own
  // authentication, cameras get proactive warnings, alarms are pure triggers)
  // pass through the judger.
  if (!memory_.HasModel(instruction.category)) {
    ++stats_.passed_unmodelled;
    judgement.allowed = true;
    judgement.reason = "category outside the modelled scope";
    AppendAudit(instruction, time, judgement, degraded);
    NotifyVerdict(instruction, &snapshot, time, VerdictKind::kUnmodelled, judgement,
                  degraded, start_us);
    return judgement;
  }

  Result<double> probability = [&] {
    const ScopedStage score_span(
        tracer_, StageHistogram(&Instruments::stage_score_seconds), "ids.score");
    return memory_.ConsistencyProbability(instruction.category, instruction.name, snapshot,
                                          time);
  }();
  if (!probability.ok()) {
    ++stats_.errors;
    // Audit the failure conservatively: a sensitive instruction we could not
    // judge is recorded as not allowed.
    judgement.allowed = false;
    judgement.consistency = 0.0;
    judgement.reason = "judgement error: " + probability.error().message();
    AppendAudit(instruction, time, judgement, degraded);
    NotifyVerdict(instruction, &snapshot, time, VerdictKind::kError, judgement, degraded,
                  start_us);
    return probability.error().context("judge " + instruction.name);
  }
  const ScopedStage verdict_span(
      tracer_, StageHistogram(&Instruments::stage_verdict_seconds), "ids.verdict");
  judgement.consistency = probability.value();
  judgement.allowed = judgement.consistency >= 0.5;
  judgement.reason = Format("context consistency %.3f %s threshold", judgement.consistency,
                            judgement.allowed ? "meets" : "below");
  ++(judgement.allowed ? stats_.allowed : stats_.blocked);
  AppendAudit(instruction, time, judgement, degraded);
  NotifyVerdict(instruction, &snapshot, time, VerdictKind::kScored, judgement, degraded,
                start_us);
  return judgement;
}

void ContextIds::ClassifyAndScoreBatch(std::span<const JudgeRequest> requests, int threads,
                                       BatchStageMicros* stages) {
  BatchScratch& s = Scratch();
  const std::size_t n = requests.size();
  s.kinds.assign(n, VerdictKind::kNonSensitive);
  s.probabilities.assign(n, 0.0);
  s.errors.resize(n);
  for (std::size_t i = 0; i < n; ++i) s.errors[i].clear();
  s.buckets.clear();
  s.groups_used = 0;

  std::int64_t mark_us = stages != nullptr ? MonotonicMicros() : 0;

  // Classify rows and bucket the scored ones by (category, snapshot, time):
  // the sensor/time part of featurization is shared by every row of a group,
  // so it is computed once and only the action feature varies per request.
  {
    const ScopedStage classify_span(
        tracer_, StageHistogram(&Instruments::batch_classify_seconds), "ids.batch.classify");
    BatchScratch::ContextBucket* bucket = nullptr;
    for (std::size_t i = 0; i < n; ++i) {
      const JudgeRequest& request = requests[i];
      if (!detector_.IsSensitive(*request.instruction)) continue;
      const std::int64_t seconds = request.time.seconds();
      if (bucket == nullptr || bucket->snapshot != request.snapshot ||
          bucket->seconds != seconds) {
        bucket = nullptr;
        for (BatchScratch::ContextBucket& known : s.buckets) {
          if (known.snapshot == request.snapshot && known.seconds == seconds) {
            bucket = &known;
            break;
          }
        }
        if (bucket == nullptr) {
          s.buckets.emplace_back();
          bucket = &s.buckets.back();
          bucket->snapshot = request.snapshot;
          bucket->seconds = seconds;
          std::fill(std::begin(bucket->group_of), std::end(bucket->group_of), -1);
        }
      }
      const std::size_t category = static_cast<std::size_t>(request.instruction->category);
      std::int32_t slot = bucket->group_of[category];
      if (slot == -1) {
        const TrainedDeviceModel* model = memory_.Model(request.instruction->category);
        if (model == nullptr) {
          slot = -2;
          bucket->group_of[category] = slot;
        } else {
          slot = static_cast<std::int32_t>(s.groups_used);
          bucket->group_of[category] = slot;
          if (s.groups_used == s.groups.size()) s.groups.emplace_back();
          BatchScratch::Group& group = s.groups[s.groups_used++];
          group.model = model;
          group.rows.clear();
          group.failed = false;
        }
      }
      if (slot == -2) {
        s.kinds[i] = VerdictKind::kUnmodelled;
        continue;
      }
      s.kinds[i] = VerdictKind::kScored;
      s.groups[static_cast<std::size_t>(slot)].rows.push_back(i);
    }
  }
  if (stages != nullptr) {
    const std::int64_t now_us = MonotonicMicros();
    stages->classify_us = now_us - mark_us;
    mark_us = now_us;
  }

  {
    const ScopedStage score_span(
        tracer_, StageHistogram(&Instruments::batch_score_seconds), "ids.batch.score");
    const bool compiled_on = memory_.compiled_inference_enabled();

    // Sequential per-group prologue: featurize the shared context row once
    // and carve the group's rows into chunks. A featurization failure (the
    // same message Judge() reports) applies to the sensors/time shared by
    // the whole group, so every row of it fails closed.
    s.chunks.clear();
    for (std::size_t g = 0; g < s.groups_used; ++g) {
      BatchScratch::Group& group = s.groups[g];
      const ContextSchema& schema = group.model->schema;
      const JudgeRequest& first = requests[group.rows.front()];
      group.base.resize(schema.size());
      const Status featurized = schema.FeaturizeInto(*first.snapshot, first.time,
                                                     first.instruction->name, group.base);
      if (!featurized.ok()) {
        group.failed = true;
        const std::string message =
            featurized.error()
                .context("judging " + std::string(ToString(schema.category())))
                .message();
        for (const std::size_t i : group.rows) {
          s.kinds[i] = VerdictKind::kError;
          s.errors[i] = message;
        }
        continue;
      }
      group.out.resize(group.rows.size());
      for (std::size_t begin = 0; begin < group.rows.size(); begin += kBatchChunkRows) {
        BatchScratch::Chunk chunk;
        chunk.group = static_cast<std::uint32_t>(g);
        chunk.begin = static_cast<std::uint32_t>(begin);
        chunk.end = static_cast<std::uint32_t>(
            std::min(group.rows.size(), begin + kBatchChunkRows));
        s.chunks.push_back(chunk);
      }
    }

    // One chunk of one group: patch the action feature into base-row copies
    // and score. All writes land in the lane's arena and the group's `out`
    // slice — lane-local, so the parallel phase never false-shares.
    const auto run_chunk = [&](std::size_t lane, const BatchScratch::Chunk& chunk) {
      const TraceSpan chunk_span(tracer_, "ids.batch.group");
      BatchScratch::Group& group = s.groups[chunk.group];
      const TrainedDeviceModel& model = *group.model;
      const ContextSchema& schema = model.schema;
      const std::size_t width = group.base.size();
      const std::vector<std::size_t>& action_fields = schema.action_field_indices();
      BatchScratch::Arena& arena = s.arenas[lane];
      // Replays repeat the handful of family instructions, so resolve each
      // action label once per chunk instead of per row.
      arena.action_cache.clear();
      const auto action_of = [&](const Instruction* instruction) {
        for (const auto& [known, value] : arena.action_cache) {
          if (known == instruction) return value;
        }
        const double value = schema.ActionIndex(instruction->name);
        arena.action_cache.emplace_back(instruction, value);
        return value;
      };
      if (vectorized_batch_ && compiled_on && !model.compiled.empty()) {
        // Block engine: kBlockRows copies of the base row, action columns
        // rewritten per block, then the compiled tree's branch-free kernel.
        arena.matrix.resize(CompiledTree::kBlockRows * width);
        arena.ptrs.resize(CompiledTree::kBlockRows);
        for (std::size_t k = 0; k < CompiledTree::kBlockRows; ++k) {
          double* row = arena.matrix.data() + k * width;
          std::copy(group.base.begin(), group.base.end(), row);
          arena.ptrs[k] = row;
        }
        for (std::size_t r = chunk.begin; r < chunk.end; r += CompiledTree::kBlockRows) {
          const std::size_t block =
              std::min<std::size_t>(CompiledTree::kBlockRows, chunk.end - r);
          for (std::size_t k = 0; k < block; ++k) {
            const double action = action_of(requests[group.rows[r + k]].instruction);
            double* row = arena.matrix.data() + k * width;
            for (const std::size_t f : action_fields) row[f] = action;
          }
          model.compiled.PredictRows(arena.ptrs.data(), block, group.out.data() + r);
        }
      } else {
        // Legacy per-row walk (EnableVectorizedBatch(false) or compiled
        // inference off) — the old-vs-new benchmark lane and the pointer
        // tree equivalence baseline.
        arena.matrix.resize(width);
        std::copy(group.base.begin(), group.base.end(), arena.matrix.begin());
        for (std::size_t r = chunk.begin; r < chunk.end; ++r) {
          const double action = action_of(requests[group.rows[r]].instruction);
          for (const std::size_t f : action_fields) arena.matrix[f] = action;
          // Compact-loaded models have no pointer tree; their compiled
          // arrays are the only engine regardless of the toggle.
          group.out[r] = (compiled_on || !model.tree.trained()) && !model.compiled.empty()
                             ? model.compiled.PredictProbability(arena.matrix)
                             : model.tree.PredictProbability(arena.matrix);
        }
      }
    };

    const std::size_t lanes =
        std::min(ResolveLaneCount(threads), std::max<std::size_t>(1, s.chunks.size()));
    if (s.arenas.size() < lanes) s.arenas.resize(lanes);
    if (lanes <= 1) {
      if (s.arenas.empty()) s.arenas.resize(1);
      for (const BatchScratch::Chunk& chunk : s.chunks) run_chunk(0, chunk);
    } else {
      if (s.pool == nullptr || s.pool_lanes != lanes) {
        s.pool = std::make_unique<ThreadPool>(lanes);
        s.pool_lanes = lanes;
      }
      s.pool->ParallelForChunks(
          s.chunks.size(), /*min_chunk=*/1, /*align=*/1,
          [&](std::size_t lane, std::size_t begin, std::size_t end) {
            for (std::size_t c = begin; c < end; ++c) run_chunk(lane, s.chunks[c]);
          });
    }

    // Sequential scatter into per-row slots (scattered writes stay off the
    // parallel phase); verdicts are independent of lane scheduling.
    for (std::size_t g = 0; g < s.groups_used; ++g) {
      const BatchScratch::Group& group = s.groups[g];
      if (group.failed) continue;
      for (std::size_t r = 0; r < group.rows.size(); ++r) {
        s.probabilities[group.rows[r]] = group.out[r];
      }
    }
  }
  if (stages != nullptr) stages->score_us = MonotonicMicros() - mark_us;
}

std::vector<Judgement> ContextIds::JudgeBatch(std::span<const JudgeRequest> requests,
                                              int threads) {
  std::vector<Judgement> out(requests.size());
  if (requests.empty()) return out;

  // Instrumentation is batch-granular (one span/observation per phase, stats
  // mirrored once at the end), so the per-row cost of attached telemetry
  // stays inside bench_observability's <2% budget.
  const TraceSpan batch_span(tracer_, "ids.judge_batch");
  if (telemetry_ != nullptr) {
    telemetry_->batches->Increment();
    telemetry_->batch_rows->Observe(static_cast<double>(requests.size()));
  }
  struct FlushGuard {
    ContextIds* ids;
    ~FlushGuard() { ids->FlushStatsTelemetry(); }
  } flush{this};

  // Stage wall clocks feed the observer's batch event, the per-stage
  // histograms and the serving-path stage capture; reads are gated so an
  // uninstrumented batch pays nothing.
  const bool timed =
      observer_ != nullptr || telemetry_ != nullptr || stage_capture_;
  BatchStageMicros stages;
  stages.rows = requests.size();
  const std::int64_t batch_start_us = timed ? MonotonicMicros() : 0;

  ClassifyAndScoreBatch(requests, threads, timed ? &stages : nullptr);
  BatchScratch& s = *scratch_;

  // Sequential pass in request order: verdicts, stats and audit records come
  // out exactly as a per-row Judge() loop would produce them. Probabilities
  // are leaf values of a handful of trees — a small finite set — so the
  // formatted reason is cached per distinct value rather than re-rendered.
  const std::int64_t verdict_start_us = timed ? MonotonicMicros() : 0;
  {
    const ScopedStage verdict_span(
        tracer_, StageHistogram(&Instruments::batch_verdict_seconds), "ids.batch.verdict");
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const JudgeRequest& request = requests[i];
      Judgement& judgement = out[i];
      ++stats_.judged;
      switch (s.kinds[i]) {
        case VerdictKind::kNonSensitive:
          ++stats_.passed_non_sensitive;
          judgement.sensitive = false;
          judgement.allowed = true;
          judgement.reason = "not a sensitive instruction";
          break;
        case VerdictKind::kUnmodelled:
          ++stats_.passed_unmodelled;
          judgement.sensitive = true;
          judgement.allowed = true;
          judgement.reason = "category outside the modelled scope";
          break;
        case VerdictKind::kError:
          ++stats_.errors;
          judgement.sensitive = true;
          judgement.allowed = false;
          judgement.consistency = 0.0;
          judgement.reason = "judgement error: " + s.errors[i];
          break;
        case VerdictKind::kScored: {
          judgement.sensitive = true;
          judgement.consistency = s.probabilities[i];
          judgement.allowed = judgement.consistency >= 0.5;
          std::uint64_t bits = 0;
          std::memcpy(&bits, &s.probabilities[i], sizeof(bits));
          auto [cached, inserted] = s.reason_cache.try_emplace(bits);
          if (inserted) {
            cached->second =
                Format("context consistency %.3f %s threshold", judgement.consistency,
                       judgement.allowed ? "meets" : "below");
          }
          judgement.reason = cached->second;
          ++(judgement.allowed ? stats_.allowed : stats_.blocked);
          break;
        }
        case VerdictKind::kFailOpen:
        case VerdictKind::kFailClosed:
          break;  // policy verdicts never occur in a batch
      }
      AppendAudit(*request.instruction, request.time, judgement, /*degraded=*/false);
    }
  }
  if (timed) {
    const std::int64_t end_us = MonotonicMicros();
    stages.verdict_us = end_us - verdict_start_us;
    stages.wall_us = end_us - batch_start_us;
  }
  if (stage_capture_) last_batch_stages_ = stages;
  // Mirror the batch phases into the per-judgement stage histograms so
  // throughput runs populate them too (they used to report count=0 when all
  // traffic was batched): classify is the batch's detect stage, and the
  // score/verdict phases map one to one.
  if (telemetry_ != nullptr) {
    telemetry_->stage_detect_seconds->Observe(static_cast<double>(stages.classify_us) * 1e-6);
    telemetry_->stage_score_seconds->Observe(static_cast<double>(stages.score_us) * 1e-6);
    telemetry_->stage_verdict_seconds->Observe(static_cast<double>(stages.verdict_us) * 1e-6);
  }
  if (observer_ != nullptr) {
    // Notes are computed before OnBatch (it consumes the scratch arrays the
    // capture walks) and delivered right after, so the observer can attach
    // them to the batch it just staged.
    if (attribution_capture_) CaptureBatchAttributions(requests);
    observer_->OnBatch(requests, std::move(s.kinds), std::move(s.probabilities),
                       std::move(s.errors), stages);
    if (attribution_capture_) observer_->OnBatchAttributions(s.notes);
  }
  return out;
}

Status ContextIds::ScoreBatch(std::span<const JudgeRequest> requests,
                              std::span<double> probabilities, int threads) {
  if (probabilities.size() != requests.size()) {
    return Error("probabilities span must match the request count");
  }
  if (requests.empty()) return Status();
  ClassifyAndScoreBatch(requests, threads, nullptr);
  const BatchScratch& s = *scratch_;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    switch (s.kinds[i]) {
      case VerdictKind::kNonSensitive:
      case VerdictKind::kUnmodelled:
        probabilities[i] = 1.0;  // these rows would pass
        break;
      case VerdictKind::kError:
        probabilities[i] = 0.0;  // these rows would fail closed
        break;
      default:
        probabilities[i] = s.probabilities[i];
        break;
    }
  }
  return Status();
}

bool ContextIds::ExplainInternal(const Instruction& instruction,
                                 const SensorSnapshot& snapshot, SimTime time,
                                 std::size_t top_k, std::vector<double>& row_scratch,
                                 std::vector<double>& contribution_scratch,
                                 ExplainResult& out) {
  out.kind = VerdictKind::kNonSensitive;
  out.judgement = Judgement{};
  out.bias = 0.5;
  out.residual = 0.0;
  out.contributions.clear();
  Judgement& judgement = out.judgement;

  if (!detector_.IsSensitive(instruction)) {
    judgement.sensitive = false;
    judgement.allowed = true;
    judgement.reason = "not a sensitive instruction";
    return true;
  }
  judgement.sensitive = true;
  const TrainedDeviceModel* model = memory_.Model(instruction.category);
  if (model == nullptr) {
    out.kind = VerdictKind::kUnmodelled;
    judgement.allowed = true;
    judgement.reason = "category outside the modelled scope";
    return true;
  }
  const ContextSchema& schema = model->schema;
  row_scratch.resize(schema.size());
  const Status featurized =
      schema.FeaturizeInto(snapshot, time, instruction.name, row_scratch);
  if (!featurized.ok()) {
    // Same fail-closed message JudgeBatch's error rows carry.
    out.kind = VerdictKind::kError;
    judgement.allowed = false;
    judgement.consistency = 0.0;
    judgement.reason =
        "judgement error: " +
        featurized.error()
            .context("judging " + std::string(ToString(schema.category())))
            .message();
    return false;
  }

  // Attribution walk over the same compiled arrays the serving path scores
  // with: the margin carries the served probability's exact bit pattern.
  ForestExplanation explanation = model->compiled.Explain(row_scratch);
  out.kind = VerdictKind::kScored;
  out.bias = explanation.bias;
  out.residual = explanation.residual;
  judgement.consistency = explanation.margin;
  judgement.allowed = judgement.consistency >= 0.5;
  judgement.reason = Format("context consistency %.3f %s threshold", judgement.consistency,
                            judgement.allowed ? "meets" : "below");

  std::vector<std::pair<std::uint32_t, double>> ranked;
  SelectTopContributions(explanation.contributions, top_k, ranked);
  contribution_scratch = std::move(explanation.contributions);
  out.contributions.reserve(ranked.size());
  for (const auto& [field, contribution] : ranked) {
    FeatureContribution entry;
    entry.field = field;
    entry.feature = schema.fields()[field].name;
    entry.value = row_scratch[field];
    entry.contribution = contribution;
    entry.reason = Format("%s=%.4g pushed consistency %+.4f (toward %s)",
                          entry.feature.c_str(), entry.value, contribution,
                          contribution >= 0.0 ? "allow" : "block");
    out.contributions.push_back(std::move(entry));
  }
  return true;
}

Result<ExplainResult> ContextIds::Explain(const Instruction& instruction,
                                          const SensorSnapshot& snapshot, SimTime time,
                                          std::size_t top_k) {
  ExplainResult out;
  std::vector<double> row;
  std::vector<double> contributions;
  if (!ExplainInternal(instruction, snapshot, time, top_k, row, contributions, out)) {
    return Error(out.judgement.reason).context("explain " + instruction.name);
  }
  return out;
}

std::vector<ExplainResult> ContextIds::ExplainBatch(std::span<const JudgeRequest> requests,
                                                    std::size_t top_k) {
  std::vector<ExplainResult> out(requests.size());
  std::vector<double> row;
  std::vector<double> contributions;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const JudgeRequest& request = requests[i];
    (void)ExplainInternal(*request.instruction, *request.snapshot, request.time, top_k, row,
                          contributions, out[i]);
  }
  return out;
}

void ContextIds::CaptureBatchAttributions(std::span<const JudgeRequest> requests) {
  BatchScratch& s = *scratch_;
  s.notes.clear();
  for (std::size_t g = 0; g < s.groups_used; ++g) {
    const BatchScratch::Group& group = s.groups[g];
    if (group.failed) continue;
    const ContextSchema& schema = group.model->schema;
    const std::vector<std::size_t>& action_fields = schema.action_field_indices();
    s.explain_row.assign(group.base.begin(), group.base.end());
    for (const std::size_t i : group.rows) {
      const double action = schema.ActionIndex(requests[i].instruction->name);
      for (const std::size_t f : action_fields) s.explain_row[f] = action;
      s.explain_contributions.assign(schema.size(), 0.0);
      (void)group.model->compiled.ExplainRow(s.explain_row, s.explain_contributions);
      SelectTopContributions(s.explain_contributions, attribution_top_k_, s.explain_ranked);
      AttributionNote note;
      note.row = static_cast<std::uint32_t>(i);
      note.top.assign(s.explain_ranked.begin(), s.explain_ranked.end());
      s.notes.push_back(std::move(note));
    }
  }
  // Group order interleaves request order; the recorder pairs notes to rows
  // with a merge cursor, so restore ascending row indices.
  std::sort(s.notes.begin(), s.notes.end(),
            [](const AttributionNote& a, const AttributionNote& b) { return a.row < b.row; });
}

Judgement ContextIds::PolicyVerdict(const Instruction& instruction, SimTime time,
                                    DegradedAction action, const std::string& why,
                                    const char* tier, std::int64_t staleness_seconds) {
  const ScopedStage verdict_span(
      tracer_, StageHistogram(&Instruments::stage_verdict_seconds), "ids.verdict");
  struct FlushGuard {
    ContextIds* ids;
    ~FlushGuard() { ids->FlushStatsTelemetry(); }
  } flush{this};
  const std::int64_t start_us = observer_ != nullptr ? MonotonicMicros() : 0;
  ++stats_.judged;
  const bool inconsistent = std::strcmp(tier, "consistency") == 0;
  Judgement judgement;
  judgement.sensitive = true;
  judgement.tier = tier;
  judgement.staleness_seconds = staleness_seconds;
  if (action == DegradedAction::kAllowWithWarning) {
    ++(inconsistent ? stats_.allowed_inconsistent : stats_.allowed_degraded);
    judgement.allowed = true;
    judgement.consistency = 1.0;
    judgement.reason = "fail-open (" + why + "); passed with audit warning";
  } else {
    // kBlock; kJudge degenerates here when there is nothing to judge on.
    ++(inconsistent ? stats_.blocked_inconsistent : stats_.blocked_on_outage);
    judgement.allowed = false;
    judgement.consistency = 0.0;
    judgement.reason = "fail-closed (" + why + ")";
  }
  LogWarn(Format("ids: %s for '%s': %s", judgement.allowed ? "fail-open" : "fail-closed",
                 instruction.name.c_str(), why.c_str()));
  AppendAudit(instruction, time, judgement, /*degraded=*/true);
  NotifyVerdict(instruction, /*snapshot=*/nullptr, time,
                judgement.allowed ? VerdictKind::kFailOpen : VerdictKind::kFailClosed,
                judgement, /*degraded=*/true, start_us);
  return judgement;
}

Result<Judgement> ContextIds::JudgeLive(const Instruction& instruction, SimTime now) {
  if (collector_ == nullptr) return Error("ids has no sensor data collector attached");
  const TraceSpan live_span(tracer_, "ids.judge_live");
  // Fast path: non-sensitive instructions pass through without sensor work.
  if (!detector_.IsSensitive(instruction)) {
    return Judge(instruction, SensorSnapshot(now), now);
  }
  const bool critical =
      detector_.profile().Of(instruction.category).high >= policy_.critical_threshold;

  Result<SensorSnapshot> snapshot = [&] {
    const ScopedStage collect_span(
        tracer_, StageHistogram(&Instruments::stage_collect_seconds), "ids.collect");
    return collector_->Collect(now);
  }();
  if (!snapshot.ok()) {
    const DegradedAction action =
        critical ? policy_.critical_unavailable : policy_.standard_unavailable;
    return PolicyVerdict(instruction, now, action,
                         "sensor context unavailable: " + snapshot.error().message(),
                         /*tier=*/"availability", /*staleness_seconds=*/0);
  }

  const SnapshotQuality& quality = snapshot.value().quality();
  const std::int64_t staleness = quality.max_staleness_seconds();
  if (staleness > policy_.max_staleness_seconds) {
    const DegradedAction action =
        critical ? policy_.critical_unavailable : policy_.standard_unavailable;
    return PolicyVerdict(instruction, now, action,
                         Format("sensor context %llds stale (limit %llds)",
                                static_cast<long long>(staleness),
                                static_cast<long long>(policy_.max_staleness_seconds)),
                         /*tier=*/"staleness", staleness);
  }
  bool degraded = false;
  if (quality.degraded()) {
    const DegradedAction action =
        critical ? policy_.critical_degraded : policy_.standard_degraded;
    if (action != DegradedAction::kJudge) {
      return PolicyVerdict(instruction, now, action,
                           Format("degraded context: %zu stale readings, %zu vendors missing",
                                  quality.stale_readings, quality.missing_vendors),
                           /*tier=*/"coverage", staleness);
    }
    degraded = true;
  }
  // Cross-sensor consistency tier: corroborate the claimed readings before
  // trusting them. Condemned snapshots resolve through policy (fail-closed by
  // default — forged context is an attack signal, not a sensor fault); only
  // accepted snapshots feed the tier's history, so a condemned forgery cannot
  // poison the baseline later snapshots are compared against.
  if (consistency_ != nullptr) {
    const ConsistencyReport report = consistency_->Check(snapshot.value(), now);
    if (report.condemned) {
      const DegradedAction action =
          critical ? policy_.critical_inconsistent : policy_.standard_inconsistent;
      if (action != DegradedAction::kJudge) {
        return PolicyVerdict(instruction, now, action, report.Summary(),
                             /*tier=*/"consistency", staleness);
      }
      degraded = true;
    } else {
      consistency_->Observe(snapshot.value(), now);
    }
  }
  if (degraded) {
    ++stats_.judged_degraded;
    return JudgeInternal(instruction, snapshot.value(), now, /*degraded=*/true, staleness);
  }
  return Judge(instruction, snapshot.value(), now);
}

InstructionGuard ContextIds::AsGuard() {
  return [this](const Instruction& instruction, const SensorSnapshot& snapshot) {
    Result<Judgement> judgement = Judge(instruction, snapshot, snapshot.time());
    if (!judgement.ok()) {
      // Fail closed on sensitive instructions, open otherwise.
      return !detector_.IsSensitive(instruction);
    }
    return judgement.value().allowed;
  };
}

Result<ContextIds> BuildIdsFromScratch(const InstructionRegistry& registry, std::uint64_t seed,
                                       int threads) {
  // The detector ships configured from the published Table III profile: a
  // 340-respondent re-survey has ~2.7% sampling noise per fraction, enough to
  // flip the borderline categories (air conditioning 52.94%, curtains 55.88%)
  // across the 50% sensitivity line run to run. bench_table3_survey explores
  // that re-survey variance separately.
  SensitiveInstructionDetector detector(PaperTableThree());

  CorpusConfig corpus_config;
  corpus_config.seed = seed;
  corpus_config.threads = threads;
  Result<GeneratedCorpus> corpus = GenerateCorpus(corpus_config, registry);
  if (!corpus.ok()) return corpus.error().context("build ids");

  ContextFeatureMemory memory;
  MemoryTrainingOptions options;
  options.seed = seed ^ 0x76a12ULL;
  options.threads = threads;
  const Status trained = memory.TrainFromCorpus(corpus.value().corpus, options);
  if (!trained.ok()) return trained.error().context("build ids");

  return ContextIds(std::move(detector), std::move(memory));
}

}  // namespace sidet
