#include "core/ids.h"

#include <cstring>
#include <map>
#include <tuple>
#include <unordered_map>

#include "datagen/corpus_generator.h"
#include "survey/survey.h"
#include "util/log.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sidet {

Json IdsStats::ToJson() const {
  Json out = Json::Object();
  out["judged"] = judged;
  out["passed_non_sensitive"] = passed_non_sensitive;
  out["passed_unmodelled"] = passed_unmodelled;
  out["allowed"] = allowed;
  out["blocked"] = blocked;
  out["errors"] = errors;
  out["judged_degraded"] = judged_degraded;
  out["blocked_on_outage"] = blocked_on_outage;
  out["allowed_degraded"] = allowed_degraded;
  out["blocked_inconsistent"] = blocked_inconsistent;
  out["allowed_inconsistent"] = allowed_inconsistent;
  return out;
}

ContextIds::ContextIds(SensitiveInstructionDetector detector, ContextFeatureMemory memory,
                       std::unique_ptr<SensorDataCollector> collector)
    : detector_(std::move(detector)),
      memory_(std::move(memory)),
      collector_(std::move(collector)) {}

void ContextIds::AttachTelemetry(MetricsRegistry* registry, SpanTracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) {
    telemetry_.reset();
    return;
  }
  auto inst = std::make_unique<Instruments>();
  inst->judged = registry->GetCounter("sidet_ids_judged_total", "", "Judgements issued");
  inst->passed_non_sensitive = registry->GetCounter(
      "sidet_ids_passed_non_sensitive_total", "", "Non-sensitive pass-throughs");
  inst->passed_unmodelled = registry->GetCounter("sidet_ids_passed_unmodelled_total", "",
                                                 "Sensitive but out-of-scope categories");
  inst->allowed = registry->GetCounter("sidet_ids_allowed_total", "",
                                       "Context-consistent verdicts");
  inst->blocked = registry->GetCounter("sidet_ids_blocked_total", "",
                                       "Context-inconsistent verdicts");
  inst->errors = registry->GetCounter("sidet_ids_errors_total", "", "Judgement failures");
  inst->judged_degraded = registry->GetCounter("sidet_ids_judged_degraded_total", "",
                                               "Judgements on stale/partial context");
  inst->blocked_on_outage = registry->GetCounter("sidet_ids_blocked_on_outage_total", "",
                                                 "Fail-closed verdicts without judging");
  inst->allowed_degraded = registry->GetCounter("sidet_ids_allowed_degraded_total", "",
                                                "Fail-open passes with audit warning");
  inst->blocked_inconsistent = registry->GetCounter(
      "sidet_ids_blocked_inconsistent_total", "",
      "Fail-closed verdicts on consistency-condemned context");
  inst->allowed_inconsistent = registry->GetCounter(
      "sidet_ids_allowed_inconsistent_total", "",
      "Fail-open passes despite consistency condemnation");
  inst->judge_seconds =
      registry->GetHistogram("sidet_ids_judge_seconds", "", {}, "End-to-end judgement latency");
  inst->stage_detect_seconds = registry->GetHistogram(
      "sidet_ids_stage_detect_seconds", "", {}, "Sensitive-instruction detector stage");
  inst->stage_collect_seconds = registry->GetHistogram(
      "sidet_ids_stage_collect_seconds", "", {}, "Sensor data collection stage (JudgeLive)");
  inst->stage_score_seconds = registry->GetHistogram(
      "sidet_ids_stage_score_seconds", "", {}, "Featurize + model scoring stage");
  inst->stage_verdict_seconds = registry->GetHistogram(
      "sidet_ids_stage_verdict_seconds", "", {}, "Verdict assembly + audit stage");
  inst->batches = registry->GetCounter("sidet_ids_batches_total", "", "JudgeBatch calls");
  inst->batch_rows = registry->GetHistogram(
      "sidet_ids_batch_rows", "",
      {1, 8, 64, 256, 1024, 4096, 16384, 65536}, "Rows per JudgeBatch call");
  inst->batch_classify_seconds = registry->GetHistogram(
      "sidet_ids_batch_classify_seconds", "", {}, "Batch row classification + grouping");
  inst->batch_score_seconds = registry->GetHistogram(
      "sidet_ids_batch_score_seconds", "", {}, "Batch featurize + score across lanes");
  inst->batch_verdict_seconds = registry->GetHistogram(
      "sidet_ids_batch_verdict_seconds", "", {}, "Batch sequential verdict/audit pass");
  inst->mirrored = stats_;
  telemetry_ = std::move(inst);
}

void ContextIds::FlushStatsTelemetry() {
  if (telemetry_ == nullptr) return;
  Instruments& inst = *telemetry_;
  const auto bump = [](Counter* counter, std::size_t now_value, std::size_t& mirrored) {
    if (now_value > mirrored) counter->Increment(now_value - mirrored);
    mirrored = now_value;
  };
  bump(inst.judged, stats_.judged, inst.mirrored.judged);
  bump(inst.passed_non_sensitive, stats_.passed_non_sensitive,
       inst.mirrored.passed_non_sensitive);
  bump(inst.passed_unmodelled, stats_.passed_unmodelled, inst.mirrored.passed_unmodelled);
  bump(inst.allowed, stats_.allowed, inst.mirrored.allowed);
  bump(inst.blocked, stats_.blocked, inst.mirrored.blocked);
  bump(inst.errors, stats_.errors, inst.mirrored.errors);
  bump(inst.judged_degraded, stats_.judged_degraded, inst.mirrored.judged_degraded);
  bump(inst.blocked_on_outage, stats_.blocked_on_outage, inst.mirrored.blocked_on_outage);
  bump(inst.allowed_degraded, stats_.allowed_degraded, inst.mirrored.allowed_degraded);
  bump(inst.blocked_inconsistent, stats_.blocked_inconsistent,
       inst.mirrored.blocked_inconsistent);
  bump(inst.allowed_inconsistent, stats_.allowed_inconsistent,
       inst.mirrored.allowed_inconsistent);
}

void ContextIds::AppendAudit(const Instruction& instruction, SimTime time,
                             const Judgement& judgement, bool degraded) {
  if (audit_ == nullptr) return;
  AuditRecord record;
  record.at = time;
  record.instruction = instruction.name;
  record.category = instruction.category;
  record.sensitive = judgement.sensitive;
  record.allowed = judgement.allowed;
  record.consistency = judgement.consistency;
  record.reason = judgement.reason;
  record.degraded = degraded;
  record.tier = judgement.tier;
  record.staleness_seconds = judgement.staleness_seconds;
  audit_->Append(std::move(record));
}

Result<Judgement> ContextIds::Judge(const Instruction& instruction,
                                    const SensorSnapshot& snapshot, SimTime time) {
  return JudgeInternal(instruction, snapshot, time, /*degraded=*/false);
}

void ContextIds::NotifyVerdict(const Instruction& instruction, const SensorSnapshot* snapshot,
                               SimTime time, VerdictKind kind, const Judgement& judgement,
                               bool degraded, std::int64_t start_us) {
  if (observer_ == nullptr) return;
  observer_->OnVerdict(instruction, snapshot, time, kind, judgement, degraded,
                       MonotonicMicros() - start_us);
}

Result<Judgement> ContextIds::JudgeInternal(const Instruction& instruction,
                                            const SensorSnapshot& snapshot, SimTime time,
                                            bool degraded, std::int64_t staleness_seconds) {
  // Telemetry wraps every exit path: the whole-call span/histogram and the
  // stats mirror both run from destructors. With telemetry detached each
  // scope is a pointer test.
  const ScopedStage whole_span(tracer_, StageHistogram(&Instruments::judge_seconds),
                               "ids.judge");
  struct FlushGuard {
    ContextIds* ids;
    ~FlushGuard() { ids->FlushStatsTelemetry(); }
  } flush{this};
  const std::int64_t start_us = observer_ != nullptr ? MonotonicMicros() : 0;

  ++stats_.judged;
  // The audit record is appended before each return: a deferred (destructor
  // based) append would observe the judgement after `return judgement` had
  // already moved its strings out.
  Judgement judgement;
  judgement.staleness_seconds = staleness_seconds;
  {
    const ScopedStage detect_span(
        tracer_, StageHistogram(&Instruments::stage_detect_seconds), "ids.detect");
    judgement.sensitive = detector_.IsSensitive(instruction);
  }
  if (!judgement.sensitive) {
    ++stats_.passed_non_sensitive;
    judgement.allowed = true;
    judgement.reason = "not a sensitive instruction";
    AppendAudit(instruction, time, judgement, degraded);
    NotifyVerdict(instruction, &snapshot, time, VerdictKind::kNonSensitive, judgement,
                  degraded, start_us);
    return judgement;
  }

  // Families the framework leaves unmodelled (§V: door locks carry their own
  // authentication, cameras get proactive warnings, alarms are pure triggers)
  // pass through the judger.
  if (!memory_.HasModel(instruction.category)) {
    ++stats_.passed_unmodelled;
    judgement.allowed = true;
    judgement.reason = "category outside the modelled scope";
    AppendAudit(instruction, time, judgement, degraded);
    NotifyVerdict(instruction, &snapshot, time, VerdictKind::kUnmodelled, judgement,
                  degraded, start_us);
    return judgement;
  }

  Result<double> probability = [&] {
    const ScopedStage score_span(
        tracer_, StageHistogram(&Instruments::stage_score_seconds), "ids.score");
    return memory_.ConsistencyProbability(instruction.category, instruction.name, snapshot,
                                          time);
  }();
  if (!probability.ok()) {
    ++stats_.errors;
    // Audit the failure conservatively: a sensitive instruction we could not
    // judge is recorded as not allowed.
    judgement.allowed = false;
    judgement.consistency = 0.0;
    judgement.reason = "judgement error: " + probability.error().message();
    AppendAudit(instruction, time, judgement, degraded);
    NotifyVerdict(instruction, &snapshot, time, VerdictKind::kError, judgement, degraded,
                  start_us);
    return probability.error().context("judge " + instruction.name);
  }
  const ScopedStage verdict_span(
      tracer_, StageHistogram(&Instruments::stage_verdict_seconds), "ids.verdict");
  judgement.consistency = probability.value();
  judgement.allowed = judgement.consistency >= 0.5;
  judgement.reason = Format("context consistency %.3f %s threshold", judgement.consistency,
                            judgement.allowed ? "meets" : "below");
  ++(judgement.allowed ? stats_.allowed : stats_.blocked);
  AppendAudit(instruction, time, judgement, degraded);
  NotifyVerdict(instruction, &snapshot, time, VerdictKind::kScored, judgement, degraded,
                start_us);
  return judgement;
}

std::vector<Judgement> ContextIds::JudgeBatch(std::span<const JudgeRequest> requests,
                                              int threads) {
  std::vector<Judgement> out(requests.size());
  if (requests.empty()) return out;

  // Instrumentation is batch-granular (one span/observation per phase, stats
  // mirrored once at the end), so the per-row cost of attached telemetry
  // stays inside bench_observability's <2% budget.
  const TraceSpan batch_span(tracer_, "ids.judge_batch");
  if (telemetry_ != nullptr) {
    telemetry_->batches->Increment();
    telemetry_->batch_rows->Observe(static_cast<double>(requests.size()));
  }
  struct FlushGuard {
    ContextIds* ids;
    ~FlushGuard() { ids->FlushStatsTelemetry(); }
  } flush{this};

  // Row kinds double as the flight-recorder discriminator handed to the
  // verdict observer, so batch rows replay with the exact per-row reasons.
  std::vector<VerdictKind> kinds(requests.size(), VerdictKind::kNonSensitive);
  std::vector<std::string> errors(requests.size());
  std::vector<double> probabilities(requests.size(), 0.0);
  // Stage wall clock for the observer's batch event; reads are gated on the
  // observer so a recorder-less batch pays nothing.
  BatchStageMicros stages;
  stages.rows = requests.size();
  const std::int64_t batch_start_us = observer_ != nullptr ? MonotonicMicros() : 0;
  std::int64_t stage_mark_us = batch_start_us;
  const auto stage_elapsed = [&]() {
    const std::int64_t now_us = MonotonicMicros();
    const std::int64_t elapsed = now_us - stage_mark_us;
    stage_mark_us = now_us;
    return elapsed;
  };

  // Classify rows and bucket the scored ones by (category, snapshot, time):
  // the sensor/time part of featurization is shared by every row of a bucket,
  // so it is computed once and only the action feature varies per request.
  struct Group {
    const TrainedDeviceModel* model = nullptr;
    std::vector<std::size_t> rows;
  };
  using GroupKey = std::tuple<DeviceCategory, const SensorSnapshot*, std::int64_t>;
  std::map<GroupKey, Group> keyed;
  // Replay streams repeat the same context run after run, so remember the
  // last bucket instead of paying a map lookup per row.
  Group* last_group = nullptr;
  GroupKey last_key{};
  {
    const ScopedStage classify_span(
        tracer_, StageHistogram(&Instruments::batch_classify_seconds), "ids.batch.classify");
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const JudgeRequest& request = requests[i];
      if (!detector_.IsSensitive(*request.instruction)) continue;
      const DeviceCategory category = request.instruction->category;
      const GroupKey key{category, request.snapshot, request.time.seconds()};
      if (last_group == nullptr || key != last_key) {
        const TrainedDeviceModel* model = memory_.Model(category);
        if (model == nullptr) {
          kinds[i] = VerdictKind::kUnmodelled;
          continue;
        }
        last_group = &keyed[key];
        last_group->model = model;
        last_key = key;
      }
      kinds[i] = VerdictKind::kScored;
      last_group->rows.push_back(i);
    }
  }
  if (observer_ != nullptr) stages.classify_us = stage_elapsed();

  std::vector<const Group*> groups;
  groups.reserve(keyed.size());
  for (const auto& [key, group] : keyed) groups.push_back(&group);

  const bool compiled = memory_.compiled_inference_enabled();

  // Score context groups across the worker lanes. Probabilities land in
  // per-row slots, so verdicts are independent of lane scheduling.
  {
    const ScopedStage score_span(
        tracer_, StageHistogram(&Instruments::batch_score_seconds), "ids.batch.score");
    ParallelFor(threads, groups.size(), [&](std::size_t g) {
      // Per-group spans give the trace one slice per (category, snapshot,
      // time) bucket on whichever lane scored it; only taken when tracing.
      const TraceSpan group_span(tracer_, "ids.batch.group");
      const Group& group = *groups[g];
      const ContextSchema& schema = group.model->schema;
      const JudgeRequest& first = requests[group.rows.front()];
      Result<std::vector<double>> base =
          schema.Featurize(*first.snapshot, first.time, first.instruction->name);
      if (!base.ok()) {
        // Featurization only fails on the sensors/time shared by the whole
        // group, so the error (same message Judge() would report) applies to
        // every row in it.
        const std::string message =
            base.error().context("judging " + std::string(ToString(schema.category()))).message();
        for (const std::size_t i : group.rows) {
          kinds[i] = VerdictKind::kError;
          errors[i] = message;
        }
        return;
      }
      std::vector<std::size_t> action_fields;
      for (std::size_t f = 0; f < schema.fields().size(); ++f) {
        if (schema.fields()[f].source == ContextField::Source::kAction) action_fields.push_back(f);
      }
      std::vector<double> row = std::move(base).value();
      // Replays repeat the handful of family instructions, so resolve each
      // action label once per group instead of per row.
      std::vector<std::pair<const Instruction*, double>> action_cache;
      const auto action_of = [&](const Instruction* instruction) {
        for (const auto& [known, value] : action_cache) {
          if (known == instruction) return value;
        }
        const double value = schema.ActionIndex(instruction->name);
        action_cache.emplace_back(instruction, value);
        return value;
      };
      for (const std::size_t i : group.rows) {
        const double action = action_of(requests[i].instruction);
        for (const std::size_t f : action_fields) row[f] = action;
        probabilities[i] = compiled && !group.model->compiled.empty()
                               ? group.model->compiled.PredictProbability(row)
                               : group.model->tree.PredictProbability(row);
      }
    });
  }
  if (observer_ != nullptr) stages.score_us = stage_elapsed();

  // Sequential pass in request order: verdicts, stats and audit records come
  // out exactly as a per-row Judge() loop would produce them. Probabilities
  // are leaf values of a handful of trees — a small finite set — so the
  // formatted reason is cached per distinct value rather than re-rendered.
  const ScopedStage verdict_span(
      tracer_, StageHistogram(&Instruments::batch_verdict_seconds), "ids.batch.verdict");
  std::unordered_map<std::uint64_t, std::string> reason_cache;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const JudgeRequest& request = requests[i];
    Judgement& judgement = out[i];
    ++stats_.judged;
    switch (kinds[i]) {
      case VerdictKind::kNonSensitive:
        ++stats_.passed_non_sensitive;
        judgement.sensitive = false;
        judgement.allowed = true;
        judgement.reason = "not a sensitive instruction";
        break;
      case VerdictKind::kUnmodelled:
        ++stats_.passed_unmodelled;
        judgement.sensitive = true;
        judgement.allowed = true;
        judgement.reason = "category outside the modelled scope";
        break;
      case VerdictKind::kError:
        ++stats_.errors;
        judgement.sensitive = true;
        judgement.allowed = false;
        judgement.consistency = 0.0;
        judgement.reason = "judgement error: " + errors[i];
        break;
      case VerdictKind::kScored: {
        judgement.sensitive = true;
        judgement.consistency = probabilities[i];
        judgement.allowed = judgement.consistency >= 0.5;
        std::uint64_t bits = 0;
        std::memcpy(&bits, &probabilities[i], sizeof(bits));
        auto [cached, inserted] = reason_cache.try_emplace(bits);
        if (inserted) {
          cached->second =
              Format("context consistency %.3f %s threshold", judgement.consistency,
                     judgement.allowed ? "meets" : "below");
        }
        judgement.reason = cached->second;
        ++(judgement.allowed ? stats_.allowed : stats_.blocked);
        break;
      }
      case VerdictKind::kFailOpen:
      case VerdictKind::kFailClosed:
        break;  // policy verdicts never occur in a batch
    }
    AppendAudit(*request.instruction, request.time, judgement, /*degraded=*/false);
  }
  if (observer_ != nullptr) {
    stages.verdict_us = stage_elapsed();
    stages.wall_us = stage_mark_us - batch_start_us;
    observer_->OnBatch(requests, std::move(kinds), std::move(probabilities), std::move(errors),
                       stages);
  }
  return out;
}

Judgement ContextIds::PolicyVerdict(const Instruction& instruction, SimTime time,
                                    DegradedAction action, const std::string& why,
                                    const char* tier, std::int64_t staleness_seconds) {
  const ScopedStage verdict_span(
      tracer_, StageHistogram(&Instruments::stage_verdict_seconds), "ids.verdict");
  struct FlushGuard {
    ContextIds* ids;
    ~FlushGuard() { ids->FlushStatsTelemetry(); }
  } flush{this};
  const std::int64_t start_us = observer_ != nullptr ? MonotonicMicros() : 0;
  ++stats_.judged;
  const bool inconsistent = std::strcmp(tier, "consistency") == 0;
  Judgement judgement;
  judgement.sensitive = true;
  judgement.tier = tier;
  judgement.staleness_seconds = staleness_seconds;
  if (action == DegradedAction::kAllowWithWarning) {
    ++(inconsistent ? stats_.allowed_inconsistent : stats_.allowed_degraded);
    judgement.allowed = true;
    judgement.consistency = 1.0;
    judgement.reason = "fail-open (" + why + "); passed with audit warning";
  } else {
    // kBlock; kJudge degenerates here when there is nothing to judge on.
    ++(inconsistent ? stats_.blocked_inconsistent : stats_.blocked_on_outage);
    judgement.allowed = false;
    judgement.consistency = 0.0;
    judgement.reason = "fail-closed (" + why + ")";
  }
  LogWarn(Format("ids: %s for '%s': %s", judgement.allowed ? "fail-open" : "fail-closed",
                 instruction.name.c_str(), why.c_str()));
  AppendAudit(instruction, time, judgement, /*degraded=*/true);
  NotifyVerdict(instruction, /*snapshot=*/nullptr, time,
                judgement.allowed ? VerdictKind::kFailOpen : VerdictKind::kFailClosed,
                judgement, /*degraded=*/true, start_us);
  return judgement;
}

Result<Judgement> ContextIds::JudgeLive(const Instruction& instruction, SimTime now) {
  if (collector_ == nullptr) return Error("ids has no sensor data collector attached");
  const TraceSpan live_span(tracer_, "ids.judge_live");
  // Fast path: non-sensitive instructions pass through without sensor work.
  if (!detector_.IsSensitive(instruction)) {
    return Judge(instruction, SensorSnapshot(now), now);
  }
  const bool critical =
      detector_.profile().Of(instruction.category).high >= policy_.critical_threshold;

  Result<SensorSnapshot> snapshot = [&] {
    const ScopedStage collect_span(
        tracer_, StageHistogram(&Instruments::stage_collect_seconds), "ids.collect");
    return collector_->Collect(now);
  }();
  if (!snapshot.ok()) {
    const DegradedAction action =
        critical ? policy_.critical_unavailable : policy_.standard_unavailable;
    return PolicyVerdict(instruction, now, action,
                         "sensor context unavailable: " + snapshot.error().message(),
                         /*tier=*/"availability", /*staleness_seconds=*/0);
  }

  const SnapshotQuality& quality = snapshot.value().quality();
  const std::int64_t staleness = quality.max_staleness_seconds();
  if (staleness > policy_.max_staleness_seconds) {
    const DegradedAction action =
        critical ? policy_.critical_unavailable : policy_.standard_unavailable;
    return PolicyVerdict(instruction, now, action,
                         Format("sensor context %llds stale (limit %llds)",
                                static_cast<long long>(staleness),
                                static_cast<long long>(policy_.max_staleness_seconds)),
                         /*tier=*/"staleness", staleness);
  }
  bool degraded = false;
  if (quality.degraded()) {
    const DegradedAction action =
        critical ? policy_.critical_degraded : policy_.standard_degraded;
    if (action != DegradedAction::kJudge) {
      return PolicyVerdict(instruction, now, action,
                           Format("degraded context: %zu stale readings, %zu vendors missing",
                                  quality.stale_readings, quality.missing_vendors),
                           /*tier=*/"coverage", staleness);
    }
    degraded = true;
  }
  // Cross-sensor consistency tier: corroborate the claimed readings before
  // trusting them. Condemned snapshots resolve through policy (fail-closed by
  // default — forged context is an attack signal, not a sensor fault); only
  // accepted snapshots feed the tier's history, so a condemned forgery cannot
  // poison the baseline later snapshots are compared against.
  if (consistency_ != nullptr) {
    const ConsistencyReport report = consistency_->Check(snapshot.value(), now);
    if (report.condemned) {
      const DegradedAction action =
          critical ? policy_.critical_inconsistent : policy_.standard_inconsistent;
      if (action != DegradedAction::kJudge) {
        return PolicyVerdict(instruction, now, action, report.Summary(),
                             /*tier=*/"consistency", staleness);
      }
      degraded = true;
    } else {
      consistency_->Observe(snapshot.value(), now);
    }
  }
  if (degraded) {
    ++stats_.judged_degraded;
    return JudgeInternal(instruction, snapshot.value(), now, /*degraded=*/true, staleness);
  }
  return Judge(instruction, snapshot.value(), now);
}

InstructionGuard ContextIds::AsGuard() {
  return [this](const Instruction& instruction, const SensorSnapshot& snapshot) {
    Result<Judgement> judgement = Judge(instruction, snapshot, snapshot.time());
    if (!judgement.ok()) {
      // Fail closed on sensitive instructions, open otherwise.
      return !detector_.IsSensitive(instruction);
    }
    return judgement.value().allowed;
  };
}

Result<ContextIds> BuildIdsFromScratch(const InstructionRegistry& registry, std::uint64_t seed,
                                       int threads) {
  // The detector ships configured from the published Table III profile: a
  // 340-respondent re-survey has ~2.7% sampling noise per fraction, enough to
  // flip the borderline categories (air conditioning 52.94%, curtains 55.88%)
  // across the 50% sensitivity line run to run. bench_table3_survey explores
  // that re-survey variance separately.
  SensitiveInstructionDetector detector(PaperTableThree());

  CorpusConfig corpus_config;
  corpus_config.seed = seed;
  corpus_config.threads = threads;
  Result<GeneratedCorpus> corpus = GenerateCorpus(corpus_config, registry);
  if (!corpus.ok()) return corpus.error().context("build ids");

  ContextFeatureMemory memory;
  MemoryTrainingOptions options;
  options.seed = seed ^ 0x76a12ULL;
  options.threads = threads;
  const Status trained = memory.TrainFromCorpus(corpus.value().corpus, options);
  if (!trained.ok()) return trained.error().context("build ids");

  return ContextIds(std::move(detector), std::move(memory));
}

}  // namespace sidet
