#include "core/model_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "ml/metrics.h"
#include "util/bytes.h"

namespace sidet {

namespace {

// Compact blob layout (all integers little-endian):
//
//   "SIDM" | u32 version | str fingerprint | u32 model_count
//   per model:
//     str category | u32 field_count
//       per field: u8 source | str sensor_type ("" unless source==sensor)
//                | str name
//     u64 training_rows | u64 tp | u64 tn | u64 fp | u64 fn
//     u32 node_count | u32 num_features
//     column slabs, each node_count elements, raw LE:
//       feature i32[] | left i32[] | right i32[] | categorical u8[]
//     | threshold f64[] | prob f64[]
//
// `str` is u32 length + bytes. The column slabs are contiguous so a load is
// six bounds checks + six memcpys per model; a reader that does not end
// exactly at EOF rejects the blob (oversized/garbage tail — fail-closed).
constexpr char kCompactMagic[4] = {'S', 'I', 'D', 'M'};
constexpr std::uint32_t kCompactVersion = 1;

void WriteString(ByteWriter& writer, std::string_view text) {
  writer.U32Le(static_cast<std::uint32_t>(text.size()));
  writer.Raw(text);
}

Result<std::string> ReadString(ByteReader& reader) {
  Result<std::uint32_t> length = reader.U32Le();
  if (!length.ok()) return length.error();
  if (length.value() > reader.remaining()) return Error("string length past end of blob");
  Result<Bytes> raw = reader.Raw(length.value());
  if (!raw.ok()) return raw.error();
  return std::string(raw.value().begin(), raw.value().end());
}

template <typename T>
void WriteSlab(ByteWriter& writer, std::span<const T> values) {
  static_assert(std::endian::native == std::endian::little,
                "compact slabs are little-endian images");
  writer.Raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(values.data()), values.size() * sizeof(T)));
}

template <typename T>
Status ReadSlab(ByteReader& reader, std::size_t count, std::vector<T>* out) {
  static_assert(std::endian::native == std::endian::little,
                "compact slabs are little-endian images");
  const std::size_t bytes = count * sizeof(T);
  if (bytes > reader.remaining()) return Error("column slab truncated");
  Result<Bytes> raw = reader.Raw(bytes);
  if (!raw.ok()) return raw.error();
  out->resize(count);
  if (bytes > 0) std::memcpy(out->data(), raw.value().data(), bytes);
  return Status::Ok();
}

std::uint8_t SourceTag(ContextField::Source source) {
  switch (source) {
    case ContextField::Source::kSensor: return 0;
    case ContextField::Source::kHour: return 1;
    case ContextField::Source::kSegment: return 2;
    case ContextField::Source::kWeekend: return 3;
    case ContextField::Source::kAction: return 4;
  }
  return 0;
}

Result<ContextField::Source> SourceFromTag(std::uint8_t tag) {
  switch (tag) {
    case 0: return ContextField::Source::kSensor;
    case 1: return ContextField::Source::kHour;
    case 2: return ContextField::Source::kSegment;
    case 3: return ContextField::Source::kWeekend;
    case 4: return ContextField::Source::kAction;
    default: return Error("unknown schema source tag");
  }
}

Status WriteWholeFile(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "wb"),
                                                       &std::fclose);
  if (file == nullptr) return Error("cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file.get());
  if (written != bytes.size()) return Error("short write to '" + path + "'");
  return Status::Ok();
}

// Read-only view of a whole file: mmap when possible (the compact load
// path's zero-copy case), plain read fallback otherwise.
class FileView {
 public:
  ~FileView() {
    if (mapped_ != nullptr && mapped_ != MAP_FAILED) munmap(mapped_, size_);
  }

  Status Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Error("cannot open '" + path + "' for reading");
    struct stat info{};
    if (fstat(fd, &info) != 0 || info.st_size < 0) {
      ::close(fd);
      return Error("cannot stat '" + path + "'");
    }
    size_ = static_cast<std::size_t>(info.st_size);
    if (size_ > 0) {
      mapped_ = mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (mapped_ == MAP_FAILED) {
        mapped_ = nullptr;
        fallback_.resize(size_);
        std::size_t off = 0;
        while (off < size_) {
          const ssize_t got = ::read(fd, fallback_.data() + off, size_ - off);
          if (got <= 0) {
            ::close(fd);
            return Error("short read from '" + path + "'");
          }
          off += static_cast<std::size_t>(got);
        }
      }
    }
    ::close(fd);
    return Status::Ok();
  }

  std::span<const std::uint8_t> bytes() const {
    if (mapped_ != nullptr) {
      return {static_cast<const std::uint8_t*>(mapped_), size_};
    }
    return {fallback_.data(), size_};
  }

 private:
  void* mapped_ = nullptr;
  std::size_t size_ = 0;
  Bytes fallback_;
};

// Parses the header (magic, version, fingerprint); leaves `reader` at the
// model count.
Result<std::string> ParseCompactHeader(ByteReader& reader) {
  Result<Bytes> magic = reader.Raw(sizeof kCompactMagic);
  if (!magic.ok()) return Error("compact blob truncated before magic");
  if (std::memcmp(magic.value().data(), kCompactMagic, sizeof kCompactMagic) != 0) {
    return Error("not a compact model blob (bad magic)");
  }
  Result<std::uint32_t> version = reader.U32Le();
  if (!version.ok()) return Error("compact blob truncated before version");
  if (version.value() != kCompactVersion) {
    return Error("unsupported compact model version " + std::to_string(version.value()));
  }
  Result<std::string> fingerprint = ReadString(reader);
  if (!fingerprint.ok()) return fingerprint.error().context("compact header fingerprint");
  return fingerprint;
}

}  // namespace

Status SaveMemory(const ContextFeatureMemory& memory, const std::string& path) {
  if (!memory.json_serializable()) {
    return Error("memory was loaded from a compact blob and carries no pointer trees; "
                 "re-save it with SaveCompact");
  }
  const std::string document = memory.ToJson().Pretty();
  return WriteWholeFile(path,
                        {reinterpret_cast<const std::uint8_t*>(document.data()),
                         document.size()});
}

Result<ContextFeatureMemory> LoadMemory(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "rb"),
                                                       &std::fclose);
  if (file == nullptr) return Error("cannot open '" + path + "' for reading");
  std::string document;
  char buffer[4096];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, file.get())) > 0) {
    document.append(buffer, read);
  }
  Result<Json> parsed = Json::Parse(document);
  if (!parsed.ok()) return parsed.error().context("memory file '" + path + "'");
  return ContextFeatureMemory::FromJson(parsed.value());
}

Status SaveCompact(const ContextFeatureMemory& memory, const std::string& path) {
  ByteWriter writer;
  writer.Raw(std::string_view(kCompactMagic, sizeof kCompactMagic));
  writer.U32Le(kCompactVersion);
  WriteString(writer, memory.Fingerprint());
  const std::vector<DeviceCategory> categories = memory.Trained();
  writer.U32Le(static_cast<std::uint32_t>(categories.size()));
  for (const DeviceCategory category : categories) {
    const TrainedDeviceModel* model = memory.Model(category);
    if (model == nullptr) return Error("trained category vanished mid-save");
    if (model->compiled.empty()) {
      return Error("model for " + std::string(ToString(category)) +
                   " has no compiled tree; compact format stores compiled columns");
    }
    WriteString(writer, ToString(category));
    const std::vector<ContextField>& fields = model->schema.fields();
    writer.U32Le(static_cast<std::uint32_t>(fields.size()));
    for (const ContextField& field : fields) {
      writer.U8(SourceTag(field.source));
      WriteString(writer, field.source == ContextField::Source::kSensor
                              ? ToString(field.sensor_type)
                              : std::string_view());
      WriteString(writer, field.name);
    }
    writer.U64Le(static_cast<std::uint64_t>(model->training_rows));
    const ConfusionMatrix& confusion = model->holdout_metrics.confusion;
    writer.U64Le(static_cast<std::uint64_t>(confusion.tp));
    writer.U64Le(static_cast<std::uint64_t>(confusion.tn));
    writer.U64Le(static_cast<std::uint64_t>(confusion.fp));
    writer.U64Le(static_cast<std::uint64_t>(confusion.fn));
    const CompiledTree::ColumnsView columns = model->compiled.columns();
    writer.U32Le(static_cast<std::uint32_t>(columns.feature.size()));
    writer.U32Le(static_cast<std::uint32_t>(columns.num_features));
    WriteSlab(writer, columns.feature);
    WriteSlab(writer, columns.left);
    WriteSlab(writer, columns.right);
    WriteSlab(writer, columns.categorical);
    WriteSlab(writer, columns.threshold);
    WriteSlab(writer, columns.prob);
  }
  return WriteWholeFile(path, writer.data());
}

Result<ContextFeatureMemory> LoadCompact(const std::string& path) {
  FileView view;
  const Status opened = view.Open(path);
  if (!opened.ok()) return opened.error();
  ByteReader reader(view.bytes());

  Result<std::string> fingerprint = ParseCompactHeader(reader);
  if (!fingerprint.ok()) return fingerprint.error().context("compact blob '" + path + "'");
  Result<std::uint32_t> model_count = reader.U32Le();
  if (!model_count.ok()) return Error("compact blob truncated before model count");

  ContextFeatureMemory memory;
  for (std::uint32_t m = 0; m < model_count.value(); ++m) {
    Result<std::string> category_name = ReadString(reader);
    if (!category_name.ok()) return category_name.error().context("model category");
    Result<DeviceCategory> category = DeviceCategoryFromString(category_name.value());
    if (!category.ok()) return category.error();
    if (memory.HasModel(category.value())) {
      return Error("duplicate model for category " + category_name.value());
    }

    Result<std::uint32_t> field_count = reader.U32Le();
    if (!field_count.ok()) return Error("schema truncated");
    std::vector<ContextField> fields;
    fields.reserve(field_count.value());
    for (std::uint32_t f = 0; f < field_count.value(); ++f) {
      Result<std::uint8_t> tag = reader.U8();
      if (!tag.ok()) return Error("schema field truncated");
      Result<ContextField::Source> source = SourceFromTag(tag.value());
      if (!source.ok()) return source.error();
      Result<std::string> sensor_name = ReadString(reader);
      if (!sensor_name.ok()) return sensor_name.error().context("schema sensor type");
      Result<std::string> field_name = ReadString(reader);
      if (!field_name.ok()) return field_name.error().context("schema field name");
      ContextField field;
      field.source = source.value();
      field.name = std::move(field_name).value();
      if (field.source == ContextField::Source::kSensor) {
        Result<SensorType> sensor = SensorTypeFromString(sensor_name.value());
        if (!sensor.ok()) return sensor.error().context("schema field " + field.name);
        field.sensor_type = sensor.value();
      }
      fields.push_back(std::move(field));
    }

    auto model = std::make_shared<TrainedDeviceModel>();
    model->schema = ContextSchema(category.value(), std::move(fields));

    Result<std::uint64_t> training_rows = reader.U64Le();
    if (!training_rows.ok()) return Error("training row count truncated");
    model->training_rows = static_cast<std::size_t>(training_rows.value());
    ConfusionMatrix confusion;
    for (long* cell : {&confusion.tp, &confusion.tn, &confusion.fp, &confusion.fn}) {
      Result<std::uint64_t> value = reader.U64Le();
      if (!value.ok()) return Error("holdout confusion truncated");
      *cell = static_cast<long>(value.value());
    }
    model->holdout_metrics = ComputeMetrics(confusion);

    Result<std::uint32_t> node_count = reader.U32Le();
    Result<std::uint32_t> num_features = reader.U32Le();
    if (!node_count.ok() || !num_features.ok()) return Error("tree header truncated");
    const std::size_t nodes = node_count.value();
    std::vector<std::int32_t> feature, left, right;
    std::vector<std::uint8_t> categorical;
    std::vector<double> threshold, prob;
    for (const Status& slab : {ReadSlab(reader, nodes, &feature), ReadSlab(reader, nodes, &left),
                               ReadSlab(reader, nodes, &right),
                               ReadSlab(reader, nodes, &categorical),
                               ReadSlab(reader, nodes, &threshold),
                               ReadSlab(reader, nodes, &prob)}) {
      if (!slab.ok()) return slab.error().context("model " + category_name.value());
    }
    Result<CompiledTree> compiled = CompiledTree::FromColumns(
        std::move(feature), std::move(categorical), std::move(threshold), std::move(left),
        std::move(right), std::move(prob), num_features.value());
    if (!compiled.ok()) return compiled.error().context("model " + category_name.value());
    model->compiled = std::move(compiled).value();
    // model->tree stays untrained: serving runs on the compiled arrays.
    memory.InstallShared(category.value(), std::move(model));
  }
  if (!reader.AtEnd()) return Error("compact blob has trailing bytes (oversized)");
  memory.SetStoredFingerprint(std::move(fingerprint).value());
  return memory;
}

Result<std::string> PeekCompactFingerprint(const std::string& path) {
  // The header is tiny; a short buffered read beats mapping the whole blob.
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "rb"),
                                                       &std::fclose);
  if (file == nullptr) return Error("cannot open '" + path + "' for reading");
  std::uint8_t header[256];
  const std::size_t got = std::fread(header, 1, sizeof header, file.get());
  ByteReader reader(std::span<const std::uint8_t>(header, got));
  return ParseCompactHeader(reader);
}

Result<ContextFeatureMemory> LoadMemoryAuto(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "rb"),
                                                       &std::fclose);
  if (file == nullptr) return Error("cannot open '" + path + "' for reading");
  char magic[sizeof kCompactMagic] = {};
  const std::size_t got = std::fread(magic, 1, sizeof magic, file.get());
  file.reset();
  if (got == sizeof magic && std::memcmp(magic, kCompactMagic, sizeof magic) == 0) {
    return LoadCompact(path);
  }
  return LoadMemory(path);
}

}  // namespace sidet
