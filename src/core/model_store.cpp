#include "core/model_store.h"

#include <cstdio>
#include <memory>

namespace sidet {

Status SaveMemory(const ContextFeatureMemory& memory, const std::string& path) {
  const std::string document = memory.ToJson().Pretty();
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "wb"),
                                                       &std::fclose);
  if (file == nullptr) return Error("cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(document.data(), 1, document.size(), file.get());
  if (written != document.size()) return Error("short write to '" + path + "'");
  return Status::Ok();
}

Result<ContextFeatureMemory> LoadMemory(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "rb"),
                                                       &std::fclose);
  if (file == nullptr) return Error("cannot open '" + path + "' for reading");
  std::string document;
  char buffer[4096];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, file.get())) > 0) {
    document.append(buffer, read);
  }
  Result<Json> parsed = Json::Parse(document);
  if (!parsed.ok()) return parsed.error().context("memory file '" + path + "'");
  return ContextFeatureMemory::FromJson(parsed.value());
}

}  // namespace sidet
