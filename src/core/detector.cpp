#include "core/detector.h"

namespace sidet {

SensitiveInstructionDetector::SensitiveInstructionDetector(ThreatProfile profile,
                                                           double threshold)
    : profile_(std::move(profile)), threshold_(threshold) {}

bool SensitiveInstructionDetector::IsSensitive(const Instruction& instruction) const {
  return IsSensitiveInstruction(instruction, profile_, threshold_);
}

bool SensitiveInstructionDetector::IsSensitiveCategory(DeviceCategory category) const {
  return profile_.IsSensitive(category, threshold_);
}

std::vector<DeviceCategory> SensitiveInstructionDetector::SensitiveCategories() const {
  return profile_.SensitiveCategories(threshold_);
}

}  // namespace sidet
