// Online model updating from deployment feedback — the optimization loop §VI
// asks for ("we need to obtain more automated strategy instruction data to
// test and optimize our contextual attack detection model framework").
//
// A deployed judger produces decisions users occasionally correct: a blocked
// command the resident re-issues and confirms ("that was me"), or an allowed
// command later flagged as abuse. FeedbackBuffer accumulates those corrected
// executions as labelled rows in each family's feature space;
// RetrainWithFeedback rebuilds the per-family datasets from the strategy
// corpus, folds the (up-weighted) feedback in, and retrains the memory.
#pragma once

#include <map>

#include "core/feature_memory.h"

namespace sidet {

class FeedbackBuffer {
 public:
  // Records one judged execution with its confirmed ground truth
  // (`legitimate` == the label a human assigned after the fact). Fails when
  // the snapshot lacks the family's schema sensors.
  Status Record(DeviceCategory category, const std::string& action,
                const SensorSnapshot& snapshot, SimTime time, bool legitimate);

  std::size_t total() const;
  std::size_t CountFor(DeviceCategory category) const;
  const Dataset* ForCategory(DeviceCategory category) const;
  std::vector<DeviceCategory> Categories() const;
  void Clear();

 private:
  struct PerCategory {
    ContextSchema schema;
    Dataset data;
  };
  std::map<DeviceCategory, PerCategory> buffers_;
};

struct RetrainOptions {
  MemoryTrainingOptions training;
  // Each feedback row is replicated this many times so recent human
  // corrections outweigh their tiny count against thousands of synthetic
  // rows.
  int feedback_weight = 25;
};

// Retrains every family that has feedback; untouched families keep their
// models. Corpus rules are still the bulk of the training data.
Status RetrainWithFeedback(ContextFeatureMemory& memory, const RuleCorpus& corpus,
                           const FeedbackBuffer& feedback, const RetrainOptions& options = {});

}  // namespace sidet
