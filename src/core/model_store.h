// Filesystem persistence for the context feature memory.
//
// The feature memory is "calculated and stored" (§IV.C.3) — this module puts
// it on disk so a deployment trains once and reloads on every start, and so
// models can be shipped between homes. Two formats:
//
//   * the JSON document (SaveMemory/LoadMemory) — human-readable, carries
//     the full pointer trees, the interchange and training format;
//   * the compact binary blob (SaveCompact/LoadCompact, DESIGN.md §18) —
//     magic/version header, the memory's JSON-form fingerprint, then per
//     model a flat length-prefixed SoA image of the compiled tree columns.
//     A load memcpy's the column slabs straight into CompiledTree::
//     FromColumns — no per-node parsing — which is what keeps a fleet
//     shard's lane cold-start inside its p99 budget. Loads are fail-closed:
//     truncated, oversized, bad-magic or wrong-version blobs are rejected
//     whole, never installed partially.
#pragma once

#include <string>

#include "core/feature_memory.h"
#include "util/result.h"

namespace sidet {

// Writes the memory as pretty-printed JSON. Fails on I/O errors and on
// compact-loaded (serving-only) memories, which no longer carry the pointer
// trees the document encodes.
Status SaveMemory(const ContextFeatureMemory& memory, const std::string& path);

// Loads and validates a memory document.
Result<ContextFeatureMemory> LoadMemory(const std::string& path);

// Writes the compact binary form. The header pins Fingerprint() — computed
// from the JSON form — so a compact blob and the JSON document of the same
// memory key the fleet ModelCache identically.
Status SaveCompact(const ContextFeatureMemory& memory, const std::string& path);

// Loads a compact blob into a serving-only memory: compiled trees without
// pointer trees, fingerprint pinned from the header. Rejects malformed blobs
// outright (fail-closed).
Result<ContextFeatureMemory> LoadCompact(const std::string& path);

// Reads only the compact header — the ModelCache's cheap cache-key probe
// that decides "already resident" without touching the column slabs.
Result<std::string> PeekCompactFingerprint(const std::string& path);

// Sniffs the leading magic and dispatches: compact blobs through
// LoadCompact, anything else through the JSON LoadMemory path.
Result<ContextFeatureMemory> LoadMemoryAuto(const std::string& path);

}  // namespace sidet
