// Filesystem persistence for the context feature memory.
//
// The feature memory is "calculated and stored" (§IV.C.3) — this module puts
// it on disk as a single JSON document so a deployment trains once and
// reloads on every start, and so models can be shipped between homes.
#pragma once

#include <string>

#include "core/feature_memory.h"
#include "util/result.h"

namespace sidet {

// Writes the memory as pretty-printed JSON. Fails on I/O errors.
Status SaveMemory(const ContextFeatureMemory& memory, const std::string& path);

// Loads and validates a memory document.
Result<ContextFeatureMemory> LoadMemory(const std::string& path);

}  // namespace sidet
