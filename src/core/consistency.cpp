#include "core/consistency.h"

#include <cmath>
#include <cstdlib>

#include "home/device.h"
#include "home/smart_home.h"
#include "util/strings.h"

namespace sidet {

namespace {

// OR over every reading of `type`; nullopt when the snapshot carries none.
std::optional<bool> AnyOfType(const SensorSnapshot& snapshot, SensorType type) {
  std::optional<bool> any;
  for (const SensorSnapshot::Entry& entry : snapshot.entries()) {
    if (entry.type != type) continue;
    any = any.value_or(false) || entry.value.as_bool();
  }
  return any;
}

}  // namespace

std::string ConsistencyReport::Summary() const {
  if (findings.empty()) return "context consistent";
  std::string out = Format("cross-sensor inconsistency (severity %.1f)", severity);
  const char* sep = ": ";
  for (const ConsistencyFinding& finding : findings) {
    out += sep;
    out += finding.check;
    out += ": ";
    out += finding.detail;
    sep = "; ";
  }
  return out;
}

CrossSensorConsistency::CrossSensorConsistency(ConsistencyConfig config)
    : config_(config) {}

void CrossSensorConsistency::SetActuatorProvider(ActuatorStateProvider provider) {
  actuators_ = std::move(provider);
}

ConsistencyReport CrossSensorConsistency::Check(const SensorSnapshot& snapshot,
                                                SimTime now) {
  ++snapshots_checked_;
  ConsistencyReport report;
  const ActuatorState actuators = actuators_ ? actuators_() : ActuatorState{};
  const auto add = [&](const char* check, double severity, std::string detail) {
    report.findings.push_back({check, severity, std::move(detail)});
    report.severity += severity;
    ++finding_counts_[check];
  };

  const SensorValue* smoke = snapshot.FindByType(SensorType::kSmoke);
  const bool smoke_claimed = smoke != nullptr && smoke->as_bool();

  // --- Within-snapshot couplings ---------------------------------------------
  if (const SensorValue* aqi = snapshot.FindByType(SensorType::kAirQuality);
      smoke != nullptr && aqi != nullptr) {
    ++report.checks_run;
    if (smoke_claimed && aqi->number < config_.smoke_aqi_floor) {
      add("smoke_air", 1.0,
          Format("smoke claimed with air quality %.1f below %.1f", aqi->number,
                 config_.smoke_aqi_floor));
    }
  }

  const std::optional<bool> voice = AnyOfType(snapshot, SensorType::kVoiceCommand);
  if (voice.has_value() && *voice) {
    if (const std::optional<bool> motion = AnyOfType(snapshot, SensorType::kMotion);
        motion.has_value()) {
      ++report.checks_run;
      if (!*motion) {
        add("voice_motion", 0.6, "voice command claimed with no motion anywhere");
      }
    }
    if (const SensorValue* noise = snapshot.FindByType(SensorType::kNoiseLevel)) {
      ++report.checks_run;
      if (noise->number < config_.quiet_db_ceiling) {
        add("voice_noise", 0.6,
            Format("voice command claimed at %.1f dB ambient (quiet floor %.1f)",
                   noise->number, config_.quiet_db_ceiling));
      }
    }
  }

  // --- Actuator-coupled checks ------------------------------------------------
  if (actuators.known) {
    const int hour = now.hour();
    const bool night = hour >= config_.night_start_hour || hour < config_.night_end_hour;
    if (const SensorValue* lux = snapshot.FindByType(SensorType::kIlluminance);
        lux != nullptr && night) {
      ++report.checks_run;
      if (lux->number > config_.bright_lux_floor && !actuators.any_lamp_on) {
        add("lux_night", 1.0,
            Format("%.0f lux claimed at %02d:00 with every lamp off", lux->number,
                   hour));
      }
    }

    const std::optional<bool> window = AnyOfType(snapshot, SensorType::kWindowContact);
    const std::optional<bool> door = AnyOfType(snapshot, SensorType::kDoorContact);
    if (window.has_value() || door.has_value()) {
      ++report.checks_run;
      const bool contact_open = window.value_or(false) || door.value_or(false);
      if (contact_open && !actuators.any_opening_open) {
        add("opening_contact", 1.0,
            "window/door contact claims open but every opening is actuated closed");
      }
    }

    if (const SensorValue* lock = snapshot.FindByType(SensorType::kLockState);
        lock != nullptr && actuators.lock_known) {
      ++report.checks_run;
      if (lock->as_bool() != actuators.lock_engaged) {
        add("lock_state", 1.0,
            Format("lock sensor claims %s while the lock device is %s",
                   lock->as_bool() ? "locked" : "unlocked",
                   actuators.lock_engaged ? "engaged" : "released"));
      }
    }
  }

  // --- Stateful checks against the last accepted snapshot ---------------------
  const std::int64_t elapsed = now - history_.at;
  const bool history_usable =
      history_.valid && elapsed > 0 && elapsed <= config_.slope_window_seconds;
  const double minutes = static_cast<double>(elapsed) / kSecondsPerMinute;

  if (const SensorValue* temp = snapshot.FindByType(SensorType::kTemperature);
      history_usable && temp != nullptr && history_.has_temperature) {
    ++report.checks_run;
    const double rate = smoke_claimed ? config_.hazard_temp_rate_per_minute
                                      : config_.hvac_temp_rate_per_minute;
    const double allowance = rate * minutes + config_.temp_slope_slack_c;
    const double delta = temp->number - history_.temperature;
    if (std::abs(delta) > allowance) {
      add("thermal_slope", 1.0,
          Format("indoor temperature moved %+.1f degC in %.0f min (plausible %.1f)",
                 delta, minutes, allowance));
    }
  }

  if (const SensorValue* aqi = snapshot.FindByType(SensorType::kAirQuality);
      history_usable && aqi != nullptr && history_.has_aqi) {
    ++report.checks_run;
    const double rate = smoke_claimed ? config_.hazard_aqi_rate_per_minute
                                      : config_.aqi_rate_per_minute;
    const double allowance = rate * minutes + config_.aqi_slope_slack;
    const double delta = aqi->number - history_.aqi;
    if (std::abs(delta) > allowance) {
      add("aqi_slope", 1.0,
          Format("air quality moved %+.1f in %.0f min (plausible %.1f)", delta,
                 minutes, allowance));
    }
  }

  // Frozen feed: live continuous readings carry Gaussian noise, so even one
  // exact repeat is wildly unlikely; stuck transports and attacker-pinned
  // responses repeat bit-identically. Skip snapshots the collector already
  // flagged degraded — its last-known-good cache legitimately repeats bytes.
  if (history_.valid && !history_.continuous.empty() && !snapshot.quality().degraded()) {
    ++report.checks_run;
    std::size_t identical = 0;
    for (const SensorSnapshot::Entry& entry : snapshot.entries()) {
      if (entry.value.kind != ValueKind::kContinuous) continue;
      const auto prior = history_.continuous.find(entry.key);
      if (prior != history_.continuous.end() && prior->second == entry.value.number) {
        ++identical;
      }
    }
    if (identical >= config_.frozen_min_continuous) {
      add("frozen_context", 1.0,
          Format("%zu continuous readings bit-identical to the last accepted snapshot",
                 identical));
    }
  }

  report.condemned = report.severity >= config_.condemn_threshold;
  if (report.condemned) ++snapshots_condemned_;
  return report;
}

void CrossSensorConsistency::Observe(const SensorSnapshot& snapshot, SimTime now) {
  ++snapshots_observed_;
  history_.valid = true;
  history_.at = now;
  history_.has_temperature = false;
  history_.has_aqi = false;
  history_.continuous.clear();
  if (const SensorValue* temp = snapshot.FindByType(SensorType::kTemperature)) {
    history_.has_temperature = true;
    history_.temperature = temp->number;
  }
  if (const SensorValue* aqi = snapshot.FindByType(SensorType::kAirQuality)) {
    history_.has_aqi = true;
    history_.aqi = aqi->number;
  }
  for (const SensorSnapshot::Entry& entry : snapshot.entries()) {
    if (entry.value.kind == ValueKind::kContinuous) {
      history_.continuous[entry.key] = entry.value.number;
    }
  }
}

void CrossSensorConsistency::ResetHistory() { history_ = History{}; }

Json CrossSensorConsistency::StatsToJson() const {
  Json out = Json::Object();
  out["snapshots_checked"] = static_cast<double>(snapshots_checked_);
  out["snapshots_condemned"] = static_cast<double>(snapshots_condemned_);
  out["snapshots_observed"] = static_cast<double>(snapshots_observed_);
  Json findings = Json::Object();
  for (const auto& [check, count] : finding_counts_) {
    findings[check] = static_cast<double>(count);
  }
  out["findings"] = std::move(findings);
  return out;
}

ActuatorState ReadActuatorState(SmartHome& home) {
  ActuatorState state;
  state.known = true;
  state.lock_engaged = true;
  for (const auto& device : home.devices()) {
    switch (device->category()) {
      case DeviceCategory::kLighting:
        state.any_lamp_on = state.any_lamp_on || device->IsOn("on");
        break;
      case DeviceCategory::kWindowAndLock:
        state.any_opening_open = state.any_opening_open || device->IsOn("open") ||
                                 device->IsOn("door_open") || device->IsOn("backdoor_open");
        if (device->state().count("locked") != 0) {
          state.lock_known = true;
          state.lock_engaged = state.lock_engaged && device->IsOn("locked");
        }
        break;
      case DeviceCategory::kAirConditioning:
        if (device->IsOn("on")) {
          state.hvac_on = true;
          state.hvac_mode = static_cast<int>(device->State("mode"));
        }
        break;
      case DeviceCategory::kCurtains:
        state.curtain_open_fraction = device->State("position", 1.0);
        break;
      default:
        break;
    }
  }
  return state;
}

ActuatorStateProvider HomeActuatorProvider(SmartHome& home) {
  return [&home]() { return ReadActuatorState(home); };
}

}  // namespace sidet
