#include "survey/survey.h"

#include <algorithm>

namespace sidet {

ThreatProfile SurveyResults::ToThreatProfile() const {
  ThreatProfile profile;
  for (const DeviceCategory category : AllDeviceCategories()) {
    profile.Set(category, control[static_cast<std::size_t>(category)].ToDistribution());
  }
  return profile;
}

SurveySimulator::SurveySimulator(SurveyCalibration calibration, std::uint64_t seed)
    : calibration_(calibration), rng_(seed) {}

ThreatDistribution SurveySimulator::StatusDistribution(DeviceCategory category) const {
  const ThreatDistribution& control = calibration_.control.Of(category);
  const double factor = category == DeviceCategory::kSecurityCamera
                            ? calibration_.camera_status_high_factor
                            : calibration_.status_high_factor;
  ThreatDistribution status;
  status.high = control.high * factor;
  // Mass removed from "high" splits between "low" and "none" 70/30 — reads
  // are mostly seen as a nuisance rather than harmless.
  const double displaced = control.high - status.high;
  status.low = control.low + displaced * 0.7;
  status.none = std::max(0.0, 1.0 - status.high - status.low);
  return status;
}

ThreatLevel SurveySimulator::SampleLevel(const ThreatDistribution& distribution) {
  const double weights[3] = {distribution.high, distribution.low, distribution.none};
  return static_cast<ThreatLevel>(rng_.Categorical(std::span<const double>(weights, 3)));
}

Respondent SurveySimulator::SampleRespondent() {
  Respondent respondent;
  for (const DeviceCategory category : AllDeviceCategories()) {
    const auto index = static_cast<std::size_t>(category);
    respondent.control_rating[index] = SampleLevel(calibration_.control.Of(category));
    respondent.status_rating[index] = SampleLevel(StatusDistribution(category));
  }
  respondent.control_more_threatening = rng_.Bernoulli(calibration_.control_more_threatening);
  respondent.devices_owned =
      1 + static_cast<int>(rng_.Poisson(std::max(0.0, calibration_.mean_devices_owned - 1)));
  respondent.devices_in_catalogue = 0;
  for (int i = 0; i < respondent.devices_owned; ++i) {
    if (rng_.Bernoulli(calibration_.device_coverage)) ++respondent.devices_in_catalogue;
  }
  return respondent;
}

SurveyResults SurveySimulator::Run(int respondents) {
  SurveyResults results;
  results.respondents = respondents;
  int more_threatening = 0;
  long owned = 0;
  long in_catalogue = 0;
  for (int i = 0; i < respondents; ++i) {
    const Respondent respondent = SampleRespondent();
    for (std::size_t c = 0; c < kDeviceCategoryCount; ++c) {
      ++results.control[c].counts[static_cast<std::size_t>(respondent.control_rating[c])];
      ++results.status[c].counts[static_cast<std::size_t>(respondent.status_rating[c])];
    }
    if (respondent.control_more_threatening) ++more_threatening;
    owned += respondent.devices_owned;
    in_catalogue += respondent.devices_in_catalogue;
  }
  results.control_more_threatening_fraction =
      respondents == 0 ? 0.0 : static_cast<double>(more_threatening) / respondents;
  results.coverage_fraction = owned == 0 ? 0.0 : static_cast<double>(in_catalogue) / owned;
  return results;
}

}  // namespace sidet
