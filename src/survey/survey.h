// Questionnaire-survey model (§IV.A, Table II/III, Fig 4).
//
// The paper polled 340 smart-home users: for each of the nine device
// categories, respondents rated control instructions and status-acquisition
// instructions as high / low / no threat (Table II). We cannot re-run the
// human study, so SurveySimulator draws synthetic respondents from a response
// model *calibrated on the paper's published marginals*:
//   - per-category control-instruction threat fractions: Table III;
//   - status ratings: derived from control ratings, shifted down two ways
//     (most users consider reads less dangerous than writes), with security
//     cameras keeping elevated status-threat (video reads are a privacy leak);
//   - "control is more threatening than status" overall: 85.29% (Fig 4);
//   - device coverage (owned device appears in Table I): 91.18%.
// Aggregating n=340 sampled respondents reproduces Table III within
// multinomial sampling noise; the detector consumes the aggregate.
#pragma once

#include <array>
#include <vector>

#include "instructions/threat.h"
#include "util/rng.h"

namespace sidet {

struct Respondent {
  // Ratings indexed by device category.
  std::array<ThreatLevel, kDeviceCategoryCount> control_rating{};
  std::array<ThreatLevel, kDeviceCategoryCount> status_rating{};
  // Direct questionnaire items.
  bool control_more_threatening = true;
  int devices_owned = 0;
  int devices_in_catalogue = 0;
};

struct CategoryTally {
  std::array<int, 3> counts{};  // indexed by ThreatLevel
  int total() const { return counts[0] + counts[1] + counts[2]; }
  double fraction(ThreatLevel level) const {
    return total() == 0 ? 0.0
                        : static_cast<double>(counts[static_cast<std::size_t>(level)]) / total();
  }
  ThreatDistribution ToDistribution() const {
    return ThreatDistribution{fraction(ThreatLevel::kHigh), fraction(ThreatLevel::kLow),
                              fraction(ThreatLevel::kNone)};
  }
};

struct SurveyResults {
  int respondents = 0;
  std::array<CategoryTally, kDeviceCategoryCount> control{};
  std::array<CategoryTally, kDeviceCategoryCount> status{};
  double control_more_threatening_fraction = 0.0;
  double coverage_fraction = 0.0;

  // The measured control-instruction profile — what the sensitive-instruction
  // detector is configured from.
  ThreatProfile ToThreatProfile() const;
};

struct SurveyCalibration {
  ThreatProfile control = PaperTableThree();
  // P(respondent answers "control instructions are the greater threat").
  double control_more_threatening = 0.8529;
  // P(an owned device belongs to the Table I catalogue).
  double device_coverage = 0.9118;
  // Scale from a category's control-high fraction to its status-high
  // fraction; cameras get the elevated factor.
  double status_high_factor = 0.30;
  double camera_status_high_factor = 0.75;
  // Mean devices owned per respondent (Poisson, min 1).
  double mean_devices_owned = 5.0;
};

class SurveySimulator {
 public:
  explicit SurveySimulator(SurveyCalibration calibration, std::uint64_t seed);

  Respondent SampleRespondent();
  // Runs the full survey; the paper's n is 340.
  SurveyResults Run(int respondents = 340);

  // The status-rating distribution the simulator uses for a category.
  ThreatDistribution StatusDistribution(DeviceCategory category) const;

 private:
  ThreatLevel SampleLevel(const ThreatDistribution& distribution);

  SurveyCalibration calibration_;
  Rng rng_;
};

}  // namespace sidet
