// RuleEngine: evaluates a rule set against the live home and executes fired
// actions — the Trigger-Action platform runtime of §II.C.
//
// Rules are edge-triggered: an action fires when its condition transitions
// from false to true (a thermostat rule must not re-fire every minute the
// room stays warm). An optional InstructionGuard — the IDS plugs in here —
// may veto each firing; vetoed firings are recorded.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "automation/rule.h"
#include "home/smart_home.h"
#include "instructions/instruction.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sidet {

// Return false to block the instruction.
using InstructionGuard =
    std::function<bool(const Instruction& instruction, const SensorSnapshot& context)>;

struct FiredAction {
  std::uint32_t rule_id = 0;
  std::string action;
  SimTime at;
  bool blocked = false;        // vetoed by the guard
  bool execute_failed = false; // home had no device / semantics
};

class RuleEngine {
 public:
  RuleEngine(const InstructionRegistry& registry, SmartHome& home);

  void AddRule(Rule rule);
  void SetGuard(InstructionGuard guard) { guard_ = std::move(guard); }
  std::size_t rule_count() const { return rules_.size(); }

  // Evaluates every rule against the home's current snapshot; executes the
  // ones whose condition just became true (unless vetoed). Returns this
  // poll's firings. Rules whose condition errors (e.g. reference a sensor
  // the home lacks) are skipped and counted.
  std::vector<FiredAction> Poll();

  // Convenience: Step the home then Poll, `ticks` times.
  std::vector<FiredAction> Run(std::int64_t seconds_per_tick, int ticks);

  std::size_t condition_errors() const { return condition_errors_; }
  const std::vector<FiredAction>& history() const { return history_; }

  // Attaches telemetry: `sidet_rules_*` counters (evaluations, firings,
  // guard blocks, execution/condition failures), a poll-latency histogram,
  // and — when `tracer` is non-null — one `rules.poll` span per Poll.
  // Pass nullptrs to detach. Neither pointer is owned.
  void AttachTelemetry(MetricsRegistry* registry, SpanTracer* tracer = nullptr);

 private:
  struct Instruments {
    Counter* polls;
    Counter* evaluations;
    Counter* condition_errors;
    Counter* fired;
    Counter* blocked;
    Counter* execute_failures;
    Histogram* poll_seconds;
  };

  const InstructionRegistry& registry_;
  SmartHome& home_;
  std::vector<Rule> rules_;
  std::map<std::uint32_t, bool> previous_state_;  // rule id -> last condition value
  InstructionGuard guard_;
  std::size_t condition_errors_ = 0;
  std::vector<FiredAction> history_;
  std::unique_ptr<Instruments> telemetry_;  // null when detached
  SpanTracer* tracer_ = nullptr;            // not owned
};

}  // namespace sidet
