#include "automation/dsl_parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "util/strings.h"

namespace sidet {

namespace {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,
  kLParen,
  kRParen,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      while (pos_ < source_.size() && std::isspace(static_cast<unsigned char>(source_[pos_]))) {
        ++pos_;
      }
      if (pos_ >= source_.size()) {
        tokens.push_back(Token{TokenKind::kEnd, "", 0.0, pos_});
        return tokens;
      }
      Result<Token> token = Next();
      if (!token.ok()) return token.error();
      tokens.push_back(std::move(token).value());
    }
  }

 private:
  Result<Token> Next() {
    const std::size_t start = pos_;
    const char c = source_[pos_];

    if (c == '(') { ++pos_; return Token{TokenKind::kLParen, "(", 0.0, start}; }
    if (c == ')') { ++pos_; return Token{TokenKind::kRParen, ")", 0.0, start}; }

    if (c == '=' || c == '!' || c == '<' || c == '>') {
      const bool has_eq = pos_ + 1 < source_.size() && source_[pos_ + 1] == '=';
      if (c == '=' ) {
        if (!has_eq) return Error("single '=' at offset " + std::to_string(start) + " (use '==')");
        pos_ += 2;
        return Token{TokenKind::kEq, "==", 0.0, start};
      }
      if (c == '!') {
        if (!has_eq) return Error("single '!' at offset " + std::to_string(start) + " (use 'not')");
        pos_ += 2;
        return Token{TokenKind::kNe, "!=", 0.0, start};
      }
      if (c == '<') {
        pos_ += has_eq ? 2 : 1;
        return Token{has_eq ? TokenKind::kLe : TokenKind::kLt, has_eq ? "<=" : "<", 0.0, start};
      }
      pos_ += has_eq ? 2 : 1;
      return Token{has_eq ? TokenKind::kGe : TokenKind::kGt, has_eq ? ">=" : ">", 0.0, start};
    }

    if (c == '"') {
      std::string text;
      ++pos_;
      while (pos_ < source_.size() && source_[pos_] != '"') text.push_back(source_[pos_++]);
      if (pos_ >= source_.size()) return Error("unterminated string literal");
      ++pos_;  // closing quote
      return Token{TokenKind::kString, std::move(text), 0.0, start};
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < source_.size() &&
         std::isdigit(static_cast<unsigned char>(source_[pos_ + 1])))) {
      std::size_t end = pos_ + 1;
      while (end < source_.size() &&
             (std::isdigit(static_cast<unsigned char>(source_[end])) || source_[end] == '.')) {
        ++end;
      }
      const std::string text(source_.substr(pos_, end - pos_));
      pos_ = end;
      char* parse_end = nullptr;
      const double value = std::strtod(text.c_str(), &parse_end);
      if (parse_end != text.c_str() + text.size()) {
        return Error("malformed number '" + text + "'");
      }
      return Token{TokenKind::kNumber, text, value, start};
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < source_.size() && (std::isalnum(static_cast<unsigned char>(source_[end])) ||
                                      source_[end] == '_')) {
        ++end;
      }
      std::string text(source_.substr(pos_, end - pos_));
      pos_ = end;
      const std::string lowered = ToLower(text);
      if (lowered == "and") return Token{TokenKind::kAnd, text, 0.0, start};
      if (lowered == "or") return Token{TokenKind::kOr, text, 0.0, start};
      if (lowered == "not") return Token{TokenKind::kNot, text, 0.0, start};
      if (lowered == "true") return Token{TokenKind::kTrue, text, 0.0, start};
      if (lowered == "false") return Token{TokenKind::kFalse, text, 0.0, start};
      return Token{TokenKind::kIdentifier, lowered, 0.0, start};
    }

    return Error(std::string("unexpected character '") + c + "' at offset " +
                 std::to_string(start));
  }

  std::string_view source_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ConditionPtr> Parse() {
    Result<ConditionPtr> expr = ParseOr();
    if (!expr.ok()) return expr;
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing tokens starting at '" + Peek().text + "'");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<ConditionPtr> ParseOr() {
    Result<ConditionPtr> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    ConditionPtr expr = std::move(lhs).value();
    while (Accept(TokenKind::kOr)) {
      Result<ConditionPtr> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      expr = ConditionExpr::Or(std::move(expr), std::move(rhs).value());
    }
    return expr;
  }

  Result<ConditionPtr> ParseAnd() {
    Result<ConditionPtr> lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    ConditionPtr expr = std::move(lhs).value();
    while (Accept(TokenKind::kAnd)) {
      Result<ConditionPtr> rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      expr = ConditionExpr::And(std::move(expr), std::move(rhs).value());
    }
    return expr;
  }

  Result<ConditionPtr> ParseUnary() {
    if (Accept(TokenKind::kNot)) {
      Result<ConditionPtr> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return ConditionExpr::Not(std::move(operand).value());
    }
    return ParseComparison();
  }

  Result<ConditionPtr> ParseComparison() {
    Result<ConditionPtr> lhs = ParseOperand();
    if (!lhs.ok()) return lhs;

    CompareOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = CompareOp::kEq; break;
      case TokenKind::kNe: op = CompareOp::kNe; break;
      case TokenKind::kLt: op = CompareOp::kLt; break;
      case TokenKind::kLe: op = CompareOp::kLe; break;
      case TokenKind::kGt: op = CompareOp::kGt; break;
      case TokenKind::kGe: op = CompareOp::kGe; break;
      default:
        return lhs;  // bare operand
    }
    Take();
    Result<ConditionPtr> rhs = ParseOperand();
    if (!rhs.ok()) return rhs;
    return ConditionExpr::Compare(op, std::move(lhs).value(), std::move(rhs).value());
  }

  Result<ConditionPtr> ParseOperand() {
    const Token token = Take();
    switch (token.kind) {
      case TokenKind::kLParen: {
        Result<ConditionPtr> inner = ParseOr();
        if (!inner.ok()) return inner;
        if (!Accept(TokenKind::kRParen)) return Error("missing ')'");
        return inner;
      }
      case TokenKind::kIdentifier:
        return ConditionExpr::Identifier(token.text);
      case TokenKind::kNumber:
        return ConditionExpr::Literal(CondValue::Number(token.number));
      case TokenKind::kString:
        return ConditionExpr::Literal(CondValue::String(token.text));
      case TokenKind::kTrue:
        return ConditionExpr::Literal(CondValue::Bool(true));
      case TokenKind::kFalse:
        return ConditionExpr::Literal(CondValue::Bool(false));
      case TokenKind::kEnd:
        return Error("unexpected end of condition");
      default:
        return Error("unexpected token '" + token.text + "'");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<ConditionPtr> ParseCondition(std::string_view source) {
  Lexer lexer(source);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.error().context("lex");
  Parser parser(std::move(tokens).value());
  Result<ConditionPtr> parsed = parser.Parse();
  if (!parsed.ok()) return parsed.error().context("parse '" + std::string(source) + "'");
  return parsed;
}

}  // namespace sidet
