// Parser for the rule-condition DSL.
//
// Grammar (lowest to highest precedence):
//   expr       := or_expr
//   or_expr    := and_expr ( "or" and_expr )*
//   and_expr   := unary ( "and" unary )*
//   unary      := "not" unary | comparison
//   comparison := operand ( ("==" | "!=" | "<" | "<=" | ">" | ">=") operand )?
//   operand    := "(" expr ")" | IDENT | NUMBER | STRING | "true" | "false"
// Keywords are case-insensitive; identifiers are snake_case sensor types or
// the time pseudo-sensors.
#pragma once

#include <string_view>

#include "automation/condition.h"

namespace sidet {

Result<ConditionPtr> ParseCondition(std::string_view source);

}  // namespace sidet
