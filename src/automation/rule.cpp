#include "automation/rule.h"

#include <algorithm>

namespace sidet {

Rule::Rule(const Rule& other)
    : id(other.id),
      description(other.description),
      condition_source(other.condition_source),
      condition(other.condition ? other.condition->Clone() : nullptr),
      action(other.action),
      action_argument(other.action_argument),
      category(other.category),
      user_count(other.user_count) {}

Rule& Rule::operator=(const Rule& other) {
  if (this == &other) return *this;
  Rule copy(other);
  *this = std::move(copy);
  return *this;
}

Result<Rule> MakeRule(std::uint32_t id, std::string description, std::string condition_source,
                      std::string action, const InstructionRegistry& registry,
                      std::uint32_t user_count, double action_argument) {
  Result<ConditionPtr> condition = ParseCondition(condition_source);
  if (!condition.ok()) return condition.error().context("rule " + std::to_string(id));

  const Instruction* instruction = registry.FindByName(action);
  if (instruction == nullptr) {
    return Error("rule " + std::to_string(id) + ": unknown action '" + action + "'");
  }
  if (instruction->kind != InstructionKind::kControl) {
    return Error("rule " + std::to_string(id) + ": action '" + action +
                 "' is not a control instruction");
  }

  Rule rule;
  rule.id = id;
  rule.description = std::move(description);
  rule.condition_source = std::move(condition_source);
  rule.condition = std::move(condition).value();
  rule.action = std::move(action);
  rule.action_argument = action_argument;
  rule.category = instruction->category;
  rule.user_count = user_count;
  return rule;
}

void RuleCorpus::Add(Rule rule) { rules_.push_back(std::move(rule)); }

std::vector<const Rule*> RuleCorpus::ForCategory(DeviceCategory category) const {
  std::vector<const Rule*> out;
  for (const Rule& rule : rules_) {
    if (rule.category == category) out.push_back(&rule);
  }
  return out;
}

std::vector<const Rule*> RuleCorpus::ForAction(std::string_view action) const {
  std::vector<const Rule*> out;
  for (const Rule& rule : rules_) {
    if (rule.action == action) out.push_back(&rule);
  }
  return out;
}

std::uint64_t RuleCorpus::TotalUsers() const {
  std::uint64_t total = 0;
  for (const Rule& rule : rules_) total += rule.user_count;
  return total;
}

std::vector<const Rule*> RuleCorpus::ByPopularity() const {
  std::vector<const Rule*> out;
  out.reserve(rules_.size());
  for (const Rule& rule : rules_) out.push_back(&rule);
  std::stable_sort(out.begin(), out.end(),
                   [](const Rule* a, const Rule* b) { return a->user_count > b->user_count; });
  return out;
}

}  // namespace sidet
