#include "automation/rule_io.h"

#include <cstdlib>

#include "util/strings.h"

namespace sidet {

std::string FormatRule(const Rule& rule) {
  std::string out = "WHEN " + rule.condition_source + " DO " + rule.action;
  if (rule.action_argument != 0.0) out += Format(" ARG %g", rule.action_argument);
  if (rule.user_count != 1) out += Format(" USERS %u", rule.user_count);
  if (!rule.description.empty()) out += " ; " + rule.description;
  return out;
}

std::string FormatCorpus(const RuleCorpus& corpus) {
  std::string out = "# sidet strategy corpus: " + std::to_string(corpus.size()) + " rules\n";
  for (const Rule& rule : corpus.rules()) {
    out += FormatRule(rule);
    out += '\n';
  }
  return out;
}

Result<Rule> ParseRuleLine(std::string_view line, std::uint32_t id,
                           const InstructionRegistry& registry) {
  std::string_view rest = Trim(line);

  // Optional trailing description.
  std::string description;
  if (const std::size_t semi = rest.find(';'); semi != std::string_view::npos) {
    description = std::string(Trim(rest.substr(semi + 1)));
    rest = Trim(rest.substr(0, semi));
  }

  if (!StartsWith(rest, "WHEN ")) return Error("rule must start with WHEN");
  rest.remove_prefix(5);

  const std::size_t do_pos = rest.rfind(" DO ");
  if (do_pos == std::string_view::npos) return Error("rule lacks DO clause");
  const std::string condition(Trim(rest.substr(0, do_pos)));
  std::string_view tail = Trim(rest.substr(do_pos + 4));

  // tail := <action> [ARG n] [USERS n]
  const std::vector<std::string> tokens = SplitWhitespace(tail);
  if (tokens.empty()) return Error("rule lacks an action");
  const std::string& action = tokens[0];
  double argument = 0.0;
  std::uint32_t users = 1;
  for (std::size_t i = 1; i < tokens.size(); i += 2) {
    if (i + 1 >= tokens.size()) return Error("dangling keyword '" + tokens[i] + "'");
    char* end = nullptr;
    const double value = std::strtod(tokens[i + 1].c_str(), &end);
    if (end != tokens[i + 1].c_str() + tokens[i + 1].size()) {
      return Error("bad number '" + tokens[i + 1] + "' after " + tokens[i]);
    }
    if (tokens[i] == "ARG") {
      argument = value;
    } else if (tokens[i] == "USERS") {
      if (value < 1) return Error("USERS must be >= 1");
      users = static_cast<std::uint32_t>(value);
    } else {
      return Error("unknown keyword '" + tokens[i] + "'");
    }
  }

  return MakeRule(id, std::move(description), condition, action, registry, users, argument);
}

Result<RuleCorpus> ParseCorpus(std::string_view text, const InstructionRegistry& registry) {
  RuleCorpus corpus;
  std::uint32_t next_id = 1;
  std::size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    const std::string_view line = Trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    Result<Rule> rule = ParseRuleLine(line, next_id, registry);
    if (!rule.ok()) {
      return rule.error().context("line " + std::to_string(line_number));
    }
    corpus.Add(std::move(rule).value());
    ++next_id;
  }
  return corpus;
}

}  // namespace sidet
