// Condition expressions for trigger-action rules.
//
// A condition is a boolean expression over the sensor context — e.g. the
// Table IV strategy "if someone goes home and it is afternoon or later, turn
// on the lights in the living room" is written
//     occupancy and (segment == "afternoon" or segment == "evening")
// Identifiers name sensor *types* (resolved against a SensorSnapshot), plus
// three time pseudo-sensors: `hour` (0–24 continuous), `segment`
// (night/morning/afternoon/evening) and `weekend` (boolean).
//
// Evaluation is typed: binary sensors yield booleans, continuous yield
// numbers, categorical yield strings; mismatched comparisons are runtime
// errors (a malformed rule must never silently evaluate to false).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sensors/snapshot.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace sidet {

// Evaluation-time value.
struct CondValue {
  enum class Kind { kBool, kNumber, kString } kind = Kind::kBool;
  bool boolean = false;
  double number = 0.0;
  std::string text;

  static CondValue Bool(bool b) { return {Kind::kBool, b, 0.0, {}}; }
  static CondValue Number(double n) { return {Kind::kNumber, false, n, {}}; }
  static CondValue String(std::string s) { return {Kind::kString, false, 0.0, std::move(s)}; }

  bool operator==(const CondValue&) const = default;
};

struct EvalContext {
  const SensorSnapshot* snapshot = nullptr;
  SimTime time;

  // Resolves an identifier; fails on unknown names or missing sensors.
  Result<CondValue> Resolve(const std::string& identifier) const;
};

class ConditionExpr;
using ConditionPtr = std::unique_ptr<ConditionExpr>;

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
std::string_view ToString(CompareOp op);

// AST node. One class with a node-kind tag keeps the tree trivially
// walkable; conditions are tiny so virtual dispatch buys nothing.
class ConditionExpr {
 public:
  enum class Node { kAnd, kOr, kNot, kCompare, kIdentifier, kLiteral };

  static ConditionPtr And(ConditionPtr lhs, ConditionPtr rhs);
  static ConditionPtr Or(ConditionPtr lhs, ConditionPtr rhs);
  static ConditionPtr Not(ConditionPtr operand);
  static ConditionPtr Compare(CompareOp op, ConditionPtr lhs, ConditionPtr rhs);
  static ConditionPtr Identifier(std::string name);
  static ConditionPtr Literal(CondValue value);

  Node node() const { return node_; }
  const std::string& identifier() const { return identifier_; }
  const CondValue& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  const ConditionExpr* lhs() const { return lhs_.get(); }
  const ConditionExpr* rhs() const { return rhs_.get(); }

  // Evaluates to a boolean; inner nodes may produce values.
  Result<bool> Evaluate(const EvalContext& context) const;

  // Every sensor-type identifier mentioned (deduplicated, excludes the time
  // pseudo-sensors) — the feature-selection hook for the ML layer.
  std::vector<std::string> ReferencedSensors() const;

  // Round-trippable source form.
  std::string ToString() const;

  ConditionPtr Clone() const;

 private:
  Result<CondValue> EvaluateValue(const EvalContext& context) const;
  void CollectSensors(std::vector<std::string>& out) const;

  Node node_ = Node::kLiteral;
  std::string identifier_;
  CondValue literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  ConditionPtr lhs_;
  ConditionPtr rhs_;
};

}  // namespace sidet
