#include "automation/condition.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace sidet {

std::string_view ToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

Result<CondValue> EvalContext::Resolve(const std::string& identifier) const {
  // Time pseudo-sensors first.
  if (identifier == "hour") return CondValue::Number(time.hour_of_day());
  if (identifier == "segment") return CondValue::String(std::string(ToString(time.day_segment())));
  if (identifier == "weekend") return CondValue::Bool(time.is_weekend());

  if (snapshot == nullptr) return Error("no snapshot bound while resolving '" + identifier + "'");

  Result<SensorType> type = SensorTypeFromString(identifier);
  if (!type.ok()) return Error("unknown identifier '" + identifier + "'");
  const SensorValue* value = snapshot->FindByType(type.value());
  if (value == nullptr) {
    return Error("no '" + identifier + "' sensor in the current snapshot");
  }
  switch (value->kind) {
    case ValueKind::kBinary: return CondValue::Bool(value->as_bool());
    case ValueKind::kContinuous: return CondValue::Number(value->number);
    case ValueKind::kCategorical: return CondValue::String(value->label);
  }
  return Error("unhandled value kind");
}

ConditionPtr ConditionExpr::And(ConditionPtr lhs, ConditionPtr rhs) {
  auto node = std::make_unique<ConditionExpr>();
  node->node_ = Node::kAnd;
  node->lhs_ = std::move(lhs);
  node->rhs_ = std::move(rhs);
  return node;
}

ConditionPtr ConditionExpr::Or(ConditionPtr lhs, ConditionPtr rhs) {
  auto node = std::make_unique<ConditionExpr>();
  node->node_ = Node::kOr;
  node->lhs_ = std::move(lhs);
  node->rhs_ = std::move(rhs);
  return node;
}

ConditionPtr ConditionExpr::Not(ConditionPtr operand) {
  auto node = std::make_unique<ConditionExpr>();
  node->node_ = Node::kNot;
  node->lhs_ = std::move(operand);
  return node;
}

ConditionPtr ConditionExpr::Compare(CompareOp op, ConditionPtr lhs, ConditionPtr rhs) {
  auto node = std::make_unique<ConditionExpr>();
  node->node_ = Node::kCompare;
  node->compare_op_ = op;
  node->lhs_ = std::move(lhs);
  node->rhs_ = std::move(rhs);
  return node;
}

ConditionPtr ConditionExpr::Identifier(std::string name) {
  auto node = std::make_unique<ConditionExpr>();
  node->node_ = Node::kIdentifier;
  node->identifier_ = std::move(name);
  return node;
}

ConditionPtr ConditionExpr::Literal(CondValue value) {
  auto node = std::make_unique<ConditionExpr>();
  node->node_ = Node::kLiteral;
  node->literal_ = std::move(value);
  return node;
}

Result<CondValue> ConditionExpr::EvaluateValue(const EvalContext& context) const {
  switch (node_) {
    case Node::kIdentifier:
      return context.Resolve(identifier_);
    case Node::kLiteral:
      return literal_;
    default: {
      Result<bool> value = Evaluate(context);
      if (!value.ok()) return value.error();
      return CondValue::Bool(value.value());
    }
  }
}

Result<bool> ConditionExpr::Evaluate(const EvalContext& context) const {
  switch (node_) {
    case Node::kAnd: {
      Result<bool> lhs = lhs_->Evaluate(context);
      if (!lhs.ok()) return lhs;
      if (!lhs.value()) return false;  // short circuit
      return rhs_->Evaluate(context);
    }
    case Node::kOr: {
      Result<bool> lhs = lhs_->Evaluate(context);
      if (!lhs.ok()) return lhs;
      if (lhs.value()) return true;
      return rhs_->Evaluate(context);
    }
    case Node::kNot: {
      Result<bool> operand = lhs_->Evaluate(context);
      if (!operand.ok()) return operand;
      return !operand.value();
    }
    case Node::kCompare: {
      Result<CondValue> lhs = lhs_->EvaluateValue(context);
      if (!lhs.ok()) return lhs.error();
      Result<CondValue> rhs = rhs_->EvaluateValue(context);
      if (!rhs.ok()) return rhs.error();
      const CondValue& a = lhs.value();
      const CondValue& b = rhs.value();
      if (a.kind != b.kind) {
        return Error("type mismatch in comparison: " + ToString());
      }
      if (compare_op_ == CompareOp::kEq) return a == b;
      if (compare_op_ == CompareOp::kNe) return !(a == b);
      if (a.kind != CondValue::Kind::kNumber) {
        return Error("ordering comparison on non-numeric values: " + ToString());
      }
      switch (compare_op_) {
        case CompareOp::kLt: return a.number < b.number;
        case CompareOp::kLe: return a.number <= b.number;
        case CompareOp::kGt: return a.number > b.number;
        case CompareOp::kGe: return a.number >= b.number;
        default: break;
      }
      return Error("unhandled comparison");
    }
    case Node::kIdentifier: {
      Result<CondValue> value = context.Resolve(identifier_);
      if (!value.ok()) return value.error();
      if (value.value().kind != CondValue::Kind::kBool) {
        return Error("identifier '" + identifier_ + "' used as boolean but is not binary");
      }
      return value.value().boolean;
    }
    case Node::kLiteral:
      if (literal_.kind != CondValue::Kind::kBool) {
        return Error("non-boolean literal used as condition");
      }
      return literal_.boolean;
  }
  return Error("unhandled node kind");
}

void ConditionExpr::CollectSensors(std::vector<std::string>& out) const {
  if (node_ == Node::kIdentifier) {
    if (identifier_ != "hour" && identifier_ != "segment" && identifier_ != "weekend" &&
        std::find(out.begin(), out.end(), identifier_) == out.end()) {
      out.push_back(identifier_);
    }
    return;
  }
  if (lhs_) lhs_->CollectSensors(out);
  if (rhs_) rhs_->CollectSensors(out);
}

std::vector<std::string> ConditionExpr::ReferencedSensors() const {
  std::vector<std::string> out;
  CollectSensors(out);
  return out;
}

std::string ConditionExpr::ToString() const {
  switch (node_) {
    case Node::kAnd:
      return "(" + lhs_->ToString() + " and " + rhs_->ToString() + ")";
    case Node::kOr:
      return "(" + lhs_->ToString() + " or " + rhs_->ToString() + ")";
    case Node::kNot:
      return "not " + lhs_->ToString();
    case Node::kCompare:
      return "(" + lhs_->ToString() + " " + std::string(sidet::ToString(compare_op_)) + " " +
             rhs_->ToString() + ")";
    case Node::kIdentifier:
      return identifier_;
    case Node::kLiteral:
      switch (literal_.kind) {
        case CondValue::Kind::kBool: return literal_.boolean ? "true" : "false";
        case CondValue::Kind::kNumber: return Format("%g", literal_.number);
        case CondValue::Kind::kString: return "\"" + literal_.text + "\"";
      }
  }
  return "?";
}

ConditionPtr ConditionExpr::Clone() const {
  auto node = std::make_unique<ConditionExpr>();
  node->node_ = node_;
  node->identifier_ = identifier_;
  node->literal_ = literal_;
  node->compare_op_ = compare_op_;
  if (lhs_) node->lhs_ = lhs_->Clone();
  if (rhs_) node->rhs_ = rhs_->Clone();
  return node;
}

}  // namespace sidet
