#include "automation/engine.h"

namespace sidet {

RuleEngine::RuleEngine(const InstructionRegistry& registry, SmartHome& home)
    : registry_(registry), home_(home) {}

void RuleEngine::AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

std::vector<FiredAction> RuleEngine::Poll() {
  const SensorSnapshot snapshot = home_.Snapshot();
  EvalContext context;
  context.snapshot = &snapshot;
  context.time = home_.now();

  std::vector<FiredAction> fired;
  for (const Rule& rule : rules_) {
    const Result<bool> holds = rule.condition->Evaluate(context);
    if (!holds.ok()) {
      ++condition_errors_;
      continue;
    }
    bool& previous = previous_state_[rule.id];
    const bool rising_edge = holds.value() && !previous;
    previous = holds.value();
    if (!rising_edge) continue;

    const Instruction* instruction = registry_.FindByName(rule.action);
    if (instruction == nullptr) continue;

    FiredAction action;
    action.rule_id = rule.id;
    action.action = rule.action;
    action.at = home_.now();

    if (guard_ && !guard_(*instruction, snapshot)) {
      action.blocked = true;
      home_.LogEvent("guard blocked " + rule.action + " (rule " + std::to_string(rule.id) + ")");
    } else {
      const Status executed = home_.Execute(*instruction, rule.action_argument);
      action.execute_failed = !executed.ok();
    }
    fired.push_back(action);
    history_.push_back(action);
  }
  return fired;
}

std::vector<FiredAction> RuleEngine::Run(std::int64_t seconds_per_tick, int ticks) {
  std::vector<FiredAction> all;
  for (int i = 0; i < ticks; ++i) {
    home_.Step(seconds_per_tick);
    std::vector<FiredAction> fired = Poll();
    all.insert(all.end(), fired.begin(), fired.end());
  }
  return all;
}

}  // namespace sidet
