#include "automation/engine.h"

namespace sidet {

RuleEngine::RuleEngine(const InstructionRegistry& registry, SmartHome& home)
    : registry_(registry), home_(home) {}

void RuleEngine::AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

void RuleEngine::AttachTelemetry(MetricsRegistry* registry, SpanTracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) {
    telemetry_.reset();
    return;
  }
  auto inst = std::make_unique<Instruments>();
  inst->polls = registry->GetCounter("sidet_rules_polls_total", "", "Poll() sweeps");
  inst->evaluations =
      registry->GetCounter("sidet_rules_evaluations_total", "", "Rule conditions evaluated");
  inst->condition_errors = registry->GetCounter("sidet_rules_condition_errors_total", "",
                                                "Rules skipped on condition errors");
  inst->fired = registry->GetCounter("sidet_rules_fired_total", "", "Actions fired");
  inst->blocked =
      registry->GetCounter("sidet_rules_blocked_total", "", "Firings vetoed by the guard");
  inst->execute_failures = registry->GetCounter("sidet_rules_execute_failures_total", "",
                                                "Fired actions the home could not execute");
  inst->poll_seconds =
      registry->GetHistogram("sidet_rules_poll_seconds", "", {}, "Poll() sweep latency");
  telemetry_ = std::move(inst);
}

std::vector<FiredAction> RuleEngine::Poll() {
  const ScopedStage poll_span(tracer_,
                              telemetry_ == nullptr ? nullptr : telemetry_->poll_seconds,
                              "rules.poll");
  const SensorSnapshot snapshot = home_.Snapshot();
  EvalContext context;
  context.snapshot = &snapshot;
  context.time = home_.now();

  std::vector<FiredAction> fired;
  for (const Rule& rule : rules_) {
    if (telemetry_ != nullptr) telemetry_->evaluations->Increment();
    const Result<bool> holds = rule.condition->Evaluate(context);
    if (!holds.ok()) {
      ++condition_errors_;
      if (telemetry_ != nullptr) telemetry_->condition_errors->Increment();
      continue;
    }
    bool& previous = previous_state_[rule.id];
    const bool rising_edge = holds.value() && !previous;
    previous = holds.value();
    if (!rising_edge) continue;

    const Instruction* instruction = registry_.FindByName(rule.action);
    if (instruction == nullptr) continue;

    FiredAction action;
    action.rule_id = rule.id;
    action.action = rule.action;
    action.at = home_.now();

    if (guard_ && !guard_(*instruction, snapshot)) {
      action.blocked = true;
      home_.LogEvent("guard blocked " + rule.action + " (rule " + std::to_string(rule.id) + ")");
    } else {
      const Status executed = home_.Execute(*instruction, rule.action_argument);
      action.execute_failed = !executed.ok();
    }
    if (telemetry_ != nullptr) {
      telemetry_->fired->Increment();
      if (action.blocked) telemetry_->blocked->Increment();
      if (action.execute_failed) telemetry_->execute_failures->Increment();
    }
    fired.push_back(action);
    history_.push_back(action);
  }
  if (telemetry_ != nullptr) telemetry_->polls->Increment();
  return fired;
}

std::vector<FiredAction> RuleEngine::Run(std::int64_t seconds_per_tick, int ticks) {
  std::vector<FiredAction> all;
  for (int i = 0; i < ticks; ++i) {
    home_.Step(seconds_per_tick);
    std::vector<FiredAction> fired = Poll();
    all.insert(all.end(), fired.begin(), fired.end());
  }
  return all;
}

}  // namespace sidet
