// Durable text format for strategy corpora.
//
// The paper's dataset is a crawl of vendor platforms — a file of rules. This
// module defines that file format so corpora can be exported, hand-edited,
// diffed and re-imported:
//
//   # comment lines and blank lines are ignored
//   WHEN <condition DSL> DO <instruction> [ARG <number>] [USERS <count>] ; <description>
//
// One rule per line. Example:
//   WHEN smoke DO window.open USERS 4100 ; If the smoke alarm fires, ventilate
#pragma once

#include <string>
#include <string_view>

#include "automation/rule.h"

namespace sidet {

// Serializes one rule / a whole corpus.
std::string FormatRule(const Rule& rule);
std::string FormatCorpus(const RuleCorpus& corpus);

// Parses one line (must not be a comment/blank). Ids are assigned by the
// caller.
Result<Rule> ParseRuleLine(std::string_view line, std::uint32_t id,
                           const InstructionRegistry& registry);

// Parses a whole document; comments and blank lines skipped; fails with the
// line number on the first malformed rule.
Result<RuleCorpus> ParseCorpus(std::string_view text, const InstructionRegistry& registry);

}  // namespace sidet
