// Trigger-action rules and the rule corpus.
//
// A Rule is one automation strategy: "WHEN <condition> DO <instruction>".
// The corpus models the ~800-strategy dataset the paper crawled from vendor
// platforms and IFTTT-style services, including the per-rule user counts
// (Fig 5) that the dataset expansion multiplies by.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "automation/condition.h"
#include "automation/dsl_parser.h"
#include "instructions/instruction.h"

namespace sidet {

struct Rule {
  std::uint32_t id = 0;
  std::string description;        // human-readable strategy text
  std::string condition_source;   // DSL text (authoritative)
  ConditionPtr condition;         // parsed form
  std::string action;             // instruction name, e.g. "light.on"
  double action_argument = 0.0;   // scalar parameter for set-style actions
  DeviceCategory category = DeviceCategory::kLighting;  // of the action
  std::uint32_t user_count = 1;   // platform-reported adopters (Fig 5)

  Rule() = default;
  Rule(const Rule& other);
  Rule& operator=(const Rule& other);
  Rule(Rule&&) = default;
  Rule& operator=(Rule&&) = default;
};

// Parses `condition_source` and fills the parsed form + category (resolved
// from the registry).
Result<Rule> MakeRule(std::uint32_t id, std::string description, std::string condition_source,
                      std::string action, const InstructionRegistry& registry,
                      std::uint32_t user_count = 1, double action_argument = 0.0);

class RuleCorpus {
 public:
  void Add(Rule rule);
  const std::vector<Rule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }

  std::vector<const Rule*> ForCategory(DeviceCategory category) const;
  std::vector<const Rule*> ForAction(std::string_view action) const;

  // Total adoption (sum of user counts) — the effective dataset size after
  // the paper's "multiply by users" expansion.
  std::uint64_t TotalUsers() const;

  // Rules sorted by user count, descending (the Fig 5 series).
  std::vector<const Rule*> ByPopularity() const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace sidet
