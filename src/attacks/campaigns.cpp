#include "attacks/campaigns.h"

#include "protocol/http.h"
#include "protocol/miio_codec.h"
#include "protocol/rest_bridge.h"
#include "util/strings.h"

namespace sidet {

namespace {

// Stamp on crafted miio packets: far above any simulated uptime the bench
// reaches, so the client's monotonic-stamp bookkeeping accepts the forgery
// (MiioClient only ratchets its stamp upward — it has no way to know the
// gateway never produced this value).
constexpr std::uint32_t kSpoofStamp = 0x00f00000;

// First recorded key of the given sensor type; empty when the home has none
// (the override is then skipped — campaigns adapt to the home's inventory).
std::string KeyOfType(const SensorSnapshot& snapshot, SensorType type) {
  for (const SensorSnapshot::Entry& entry : snapshot.entries()) {
    if (entry.type == type) return entry.key;
  }
  return {};
}

void Override(std::map<std::string, SensorValue>& overrides, const SensorSnapshot& benign,
              SensorType type, SensorValue value) {
  const std::string key = KeyOfType(benign, type);
  if (!key.empty()) overrides[key] = std::move(value);
}

}  // namespace

std::string_view ToString(AttackFamily family) {
  switch (family) {
    case AttackFamily::kMiioHazardSpoof: return "miio_hazard_spoof";
    case AttackFamily::kRestPresenceSpoof: return "rest_presence_spoof";
    case AttackFamily::kSnapshotReplay: return "snapshot_replay";
    case AttackFamily::kStuckSensorExploit: return "stuck_sensor_exploit";
    case AttackFamily::kCompromisedSensorPin: return "compromised_sensor_pin";
    case AttackFamily::kBoundaryMimicry: return "boundary_mimicry";
  }
  return "unknown";
}

std::string_view ToString(AttackClass cls) {
  switch (cls) {
    case AttackClass::kSpoofing: return "spoofing";
    case AttackClass::kCompromise: return "compromise";
    case AttackClass::kMimicry: return "mimicry";
  }
  return "unknown";
}

AttackClass ClassOf(AttackFamily family) {
  switch (family) {
    case AttackFamily::kMiioHazardSpoof:
    case AttackFamily::kRestPresenceSpoof:
    case AttackFamily::kSnapshotReplay:
      return AttackClass::kSpoofing;
    case AttackFamily::kStuckSensorExploit:
    case AttackFamily::kCompromisedSensorPin:
      return AttackClass::kCompromise;
    case AttackFamily::kBoundaryMimicry:
      return AttackClass::kMimicry;
  }
  return AttackClass::kMimicry;
}

const std::vector<AttackFamily>& AllAttackFamilies() {
  static const std::vector<AttackFamily> kAll = {
      AttackFamily::kMiioHazardSpoof,      AttackFamily::kRestPresenceSpoof,
      AttackFamily::kSnapshotReplay,       AttackFamily::kStuckSensorExploit,
      AttackFamily::kCompromisedSensorPin, AttackFamily::kBoundaryMimicry,
  };
  return kAll;
}

CampaignRunner::CampaignRunner(CampaignContext context)
    : context_(std::move(context)), active_(context_.base_schedule) {}

void CampaignRunner::RecordBenignContext() {
  benign_ = context_.home->Snapshot();
  has_benign_ = true;
}

Bytes CampaignRunner::CraftMiioResponse(
    const std::map<std::string, SensorValue>& overrides) const {
  Json result = Json::Object();
  for (Sensor* sensor : context_.home->SensorsOfVendor(Vendor::kXiaomi)) {
    const auto forged = overrides.find(sensor->name());
    const SensorValue* recorded = benign_.Find(sensor->name());
    if (forged == overrides.end() && recorded == nullptr) continue;
    const SensorValue& value = forged != overrides.end() ? forged->second : *recorded;
    Json record = value.ToJson();
    record["type"] = std::string(ToString(sensor->type()));
    result[sensor->name()] = std::move(record);
  }
  Json response = Json::Object();
  response["id"] = 0;
  response["result"] = std::move(result);

  MiioMessage message;
  message.device_id = context_.gateway->device_id();
  message.stamp = kSpoofStamp;
  message.payload_json = response.Dump();
  return EncodeMiioPacket(context_.gateway->token(), message);
}

Bytes CampaignRunner::CraftRestResponse(
    const std::map<std::string, SensorValue>& overrides) const {
  Json states = Json::Array();
  for (Sensor* sensor : context_.home->SensorsOfVendor(Vendor::kSmartThings)) {
    const auto forged = overrides.find(sensor->name());
    const SensorValue* recorded = benign_.Find(sensor->name());
    if (forged == overrides.end() && recorded == nullptr) continue;
    const SensorValue& value = forged != overrides.end() ? forged->second : *recorded;

    Json entity = Json::Object();
    entity["entity_id"] = EntityIdFor(*sensor);
    switch (value.kind) {
      case ValueKind::kBinary:
        entity["state"] = value.as_bool() ? "on" : "off";
        break;
      case ValueKind::kContinuous:
        entity["state"] = Format("%.3f", value.number);
        break;
      case ValueKind::kCategorical:
        entity["state"] = value.label;
        break;
    }
    Json attributes = Json::Object();
    attributes["friendly_name"] = Humanize(sensor->name());
    attributes["device_class"] = std::string(ToString(sensor->type()));
    attributes["room"] = sensor->room();
    attributes["unit_of_measurement"] = std::string(TraitsOf(sensor->type()).unit);
    attributes["reading"] = value.ToJson();
    entity["attributes"] = std::move(attributes);
    entity["last_updated_seconds"] = benign_.time().seconds();
    states.as_array().push_back(std::move(entity));
  }

  HttpResponse response;
  response.status = 200;
  response.headers["content-type"] = "application/json";
  response.body = states.Dump();
  return EncodeHttpResponse(response);
}

template <typename Fn>
void CampaignRunner::TamperAddress(const std::string& address, Fn&& mutate) {
  const FaultSpec* base = context_.base_schedule.Find(address);
  FaultSpec spec = base != nullptr ? *base : FaultSpec{};
  mutate(spec);
  active_.Set(address, std::move(spec));
}

Status CampaignRunner::Prepare(AttackFamily family, SimTime now) {
  if (family != AttackFamily::kBoundaryMimicry && family != AttackFamily::kStuckSensorExploit &&
      !has_benign_) {
    return Error("campaign needs RecordBenignContext() before forging responses");
  }
  active_ = context_.base_schedule;

  switch (family) {
    case AttackFamily::kMiioHazardSpoof: {
      // Lazy forgery: flip the hazard bits, leave every other reading at its
      // recorded benign value — smoke with pristine air is the tell the
      // consistency tier keys on.
      std::map<std::string, SensorValue> overrides;
      Override(overrides, benign_, SensorType::kSmoke, SensorValue::Binary(true));
      Override(overrides, benign_, SensorType::kGasLeak, SensorValue::Binary(true));
      Bytes packet = CraftMiioResponse(overrides);
      TamperAddress(context_.gateway_address, [&](FaultSpec& spec) {
        spec.compromised_after = now;
        spec.compromised_response = std::move(packet);
      });
      break;
    }
    case AttackFamily::kRestPresenceSpoof: {
      // "Somebody is home, awake, and just asked for this" — forged at night
      // against a dark, silent, motionless house.
      std::map<std::string, SensorValue> overrides;
      Override(overrides, benign_, SensorType::kVoiceCommand, SensorValue::Binary(true));
      Override(overrides, benign_, SensorType::kOccupancy, SensorValue::Binary(true));
      Override(overrides, benign_, SensorType::kIlluminance, SensorValue::Continuous(280.0));
      Bytes body = CraftRestResponse(overrides);
      TamperAddress(context_.bridge_address, [&](FaultSpec& spec) {
        spec.compromised_after = now;
        spec.compromised_response = std::move(body);
      });
      break;
    }
    case AttackFamily::kSnapshotReplay: {
      // Verbatim record-and-replay of the benign daytime capture on both
      // vendor stacks at once.
      Bytes packet = CraftMiioResponse({});
      Bytes body = CraftRestResponse({});
      TamperAddress(context_.gateway_address, [&](FaultSpec& spec) {
        spec.compromised_after = now;
        spec.compromised_response = std::move(packet);
      });
      TamperAddress(context_.bridge_address, [&](FaultSpec& spec) {
        spec.compromised_after = now;
        spec.compromised_response = std::move(body);
      });
      break;
    }
    case AttackFamily::kStuckSensorExploit: {
      // No crafting at all: wedge the bridge so whatever it last said (an
      // evening voice window, ideally) keeps serving all night.
      TamperAddress(context_.bridge_address,
                    [&](FaultSpec& spec) { spec.stuck_after = now; });
      break;
    }
    case AttackFamily::kCompromisedSensorPin: {
      // Coherent forgery: a fire whose temperature and air quality agree
      // with the smoke bit. Pointwise physics checks pass; what gives the
      // pin away is that the feed never moves again.
      std::map<std::string, SensorValue> overrides;
      Override(overrides, benign_, SensorType::kSmoke, SensorValue::Binary(true));
      Override(overrides, benign_, SensorType::kGasLeak, SensorValue::Binary(true));
      Override(overrides, benign_, SensorType::kTemperature, SensorValue::Continuous(47.5));
      Override(overrides, benign_, SensorType::kAirQuality, SensorValue::Continuous(430.0));
      Bytes packet = CraftMiioResponse(overrides);
      TamperAddress(context_.gateway_address, [&](FaultSpec& spec) {
        spec.compromised_after = now;
        spec.compromised_response = std::move(packet);
      });
      break;
    }
    case AttackFamily::kBoundaryMimicry:
      // Nothing to install: the attack is the timing of the probes.
      break;
  }

  context_.transport->SetFaultSchedule(active_);
  return Status::Ok();
}

std::vector<const Instruction*> CampaignRunner::Resolve(
    std::initializer_list<const char*> names) const {
  std::vector<const Instruction*> instructions;
  for (const char* name : names) {
    const Instruction* instruction = context_.registry->FindByName(name);
    if (instruction != nullptr) instructions.push_back(instruction);
  }
  return instructions;
}

std::vector<const Instruction*> CampaignRunner::Strike(AttackFamily family) const {
  switch (family) {
    case AttackFamily::kMiioHazardSpoof:
      // The §III.A goal: "if a fire occurs, open the back door".
      return Resolve({"backdoor.open", "window.open"});
    case AttackFamily::kRestPresenceSpoof:
      return Resolve({"window.open", "curtain.open"});
    case AttackFamily::kSnapshotReplay:
      return Resolve({"backdoor.open", "curtain.open", "window.open"});
    case AttackFamily::kStuckSensorExploit:
      return Resolve({"window.open", "lock.unlock"});
    case AttackFamily::kCompromisedSensorPin:
      return Resolve({"backdoor.open", "window.open"});
    case AttackFamily::kBoundaryMimicry:
      return Resolve({"curtain.open", "light.on", "window.open"});
  }
  return {};
}

void CampaignRunner::Cleanup() {
  active_ = context_.base_schedule;
  context_.transport->SetFaultSchedule(active_);
}

}  // namespace sidet
