// Per-family scoring for adversarial campaigns.
//
// The scoreboard accumulates strike outcomes per attack family plus a shared
// pool of benign probe outcomes, and derives the §V metrics from them with
// the same convention as Table V: positive class = legitimate context, so a
// blocked attack is a true negative and a blocked benign probe is a false
// negative (a false alarm in the paper's terms). Detection rate is the
// fraction of attack strikes blocked; the benign false-positive rate is the
// fraction of benign probes blocked — the two numbers the robustness
// acceptance gate compares between the baseline IDS and the IDS with the
// consistency tier.
#pragma once

#include <array>
#include <cstddef>

#include "attacks/campaigns.h"
#include "ml/metrics.h"
#include "util/json.h"

namespace sidet {

class CampaignScoreboard {
 public:
  void RecordAttack(AttackFamily family, bool blocked);
  void RecordBenign(bool blocked);

  std::size_t attack_attempts(AttackFamily family) const;
  std::size_t attack_blocked(AttackFamily family) const;
  // Blocked / attempts; 0 when the family was never struck.
  double DetectionRate(AttackFamily family) const;

  std::size_t benign_attempts() const { return benign_.attempts; }
  std::size_t benign_blocked() const { return benign_.blocked; }
  // Blocked benign probes / benign probes ("false alarm rate", eq 4).
  double BenignFalsePositiveRate() const;

  // Confusion over one family's strikes plus the shared benign pool
  // (attacks: truth 0; benign: truth 1; predicted 1 = allowed).
  ConfusionMatrix FamilyConfusion(AttackFamily family) const;
  // Confusion over every family's strikes plus the benign pool.
  ConfusionMatrix OverallConfusion() const;

  // {"families": [{name, class, attempts, blocked, detection_rate,
  //   confusion, metrics}...], "benign": {attempts, blocked, fpr}}
  Json ToJson() const;

 private:
  struct Tally {
    std::size_t attempts = 0;
    std::size_t blocked = 0;
  };

  std::array<Tally, kAttackFamilyCount> families_{};
  Tally benign_{};
};

}  // namespace sidet
