// Protocol-level attacks against the two vendor stacks — used in tests and
// the overhead/robustness benches to show what the *transport* already stops
// (so the IDS only has to handle what gets through: semantically valid but
// contextually wrong instructions).
#pragma once

#include "protocol/miio_gateway.h"
#include "protocol/rest_bridge.h"
#include "protocol/transport.h"

namespace sidet {

struct ProtocolAttackResult {
  bool rejected = false;     // the stack refused the request
  std::string detail;
};

// Replays a previously captured (valid) miio packet. The gateway's
// monotonic-stamp check must reject it.
ProtocolAttackResult ReplayMiioPacket(Transport& transport, const std::string& address,
                                      const Bytes& captured_packet);

// Sends a packet authenticated with a guessed token. Checksum must fail.
ProtocolAttackResult ForgeMiioPacket(Transport& transport, const std::string& address,
                                     std::uint32_t device_id, std::uint32_t stamp,
                                     const std::string& payload_json);

// Flips one byte of a valid packet in flight. Checksum must fail.
ProtocolAttackResult TamperMiioPacket(Transport& transport, const std::string& address,
                                      Bytes valid_packet, std::size_t flip_index);

// REST access without / with a wrong bearer token. Must yield 401.
ProtocolAttackResult RestWithoutToken(Transport& transport, const std::string& address);
ProtocolAttackResult RestWithWrongToken(Transport& transport, const std::string& address,
                                        const std::string& wrong_token);

}  // namespace sidet
