#include "attacks/protocol_attacks.h"

#include "crypto/miio_kdf.h"
#include "protocol/http.h"

namespace sidet {

ProtocolAttackResult ReplayMiioPacket(Transport& transport, const std::string& address,
                                      const Bytes& captured_packet) {
  ProtocolAttackResult result;
  Result<Bytes> reply =
      transport.Request(address, std::span<const std::uint8_t>(captured_packet));
  if (!reply.ok()) {
    result.rejected = true;
    result.detail = reply.error().message();
    return result;
  }
  result.rejected = false;
  result.detail = "gateway accepted a replayed packet";
  return result;
}

ProtocolAttackResult ForgeMiioPacket(Transport& transport, const std::string& address,
                                     std::uint32_t device_id, std::uint32_t stamp,
                                     const std::string& payload_json) {
  // Attacker does not know the real token; derive one from a wrong id.
  const MiioToken guessed = TokenForDevice(device_id ^ 0xdeadbeef);
  MiioMessage message;
  message.device_id = device_id;
  message.stamp = stamp;
  message.payload_json = payload_json;
  const Bytes packet = EncodeMiioPacket(guessed, message);

  ProtocolAttackResult result;
  Result<Bytes> reply = transport.Request(address, std::span<const std::uint8_t>(packet));
  if (!reply.ok()) {
    result.rejected = true;
    result.detail = reply.error().message();
    return result;
  }
  result.rejected = false;
  result.detail = "gateway accepted a forged packet";
  return result;
}

ProtocolAttackResult TamperMiioPacket(Transport& transport, const std::string& address,
                                      Bytes valid_packet, std::size_t flip_index) {
  ProtocolAttackResult result;
  if (valid_packet.empty()) {
    result.rejected = true;
    result.detail = "empty packet";
    return result;
  }
  valid_packet[flip_index % valid_packet.size()] ^= 0x01;
  Result<Bytes> reply =
      transport.Request(address, std::span<const std::uint8_t>(valid_packet));
  if (!reply.ok()) {
    result.rejected = true;
    result.detail = reply.error().message();
    return result;
  }
  result.rejected = false;
  result.detail = "gateway accepted a tampered packet";
  return result;
}

namespace {

ProtocolAttackResult RestProbe(Transport& transport, const std::string& address,
                               const std::string& auth_header) {
  HttpRequest request;
  request.method = "GET";
  request.path = "/api/states";
  if (!auth_header.empty()) request.headers["authorization"] = auth_header;

  ProtocolAttackResult result;
  Result<Bytes> reply =
      transport.Request(address, std::span<const std::uint8_t>(EncodeHttpRequest(request)));
  if (!reply.ok()) {
    result.rejected = true;
    result.detail = reply.error().message();
    return result;
  }
  Result<HttpResponse> response =
      DecodeHttpResponse(std::span<const std::uint8_t>(reply.value()));
  if (!response.ok()) {
    result.rejected = true;
    result.detail = response.error().message();
    return result;
  }
  result.rejected = response.value().status == 401;
  result.detail = "HTTP " + std::to_string(response.value().status);
  return result;
}

}  // namespace

ProtocolAttackResult RestWithoutToken(Transport& transport, const std::string& address) {
  return RestProbe(transport, address, "");
}

ProtocolAttackResult RestWithWrongToken(Transport& transport, const std::string& address,
                                        const std::string& wrong_token) {
  return RestProbe(transport, address, "Bearer " + wrong_token);
}

}  // namespace sidet
