#include "attacks/attack_generator.h"

namespace sidet {

std::string_view ToString(AttackKind kind) {
  switch (kind) {
    case AttackKind::kSmokeSpoofBackdoor: return "smoke_spoof_backdoor";
    case AttackKind::kGasSpoofWindow: return "gas_spoof_window";
    case AttackKind::kNightWindowInjection: return "night_window_injection";
    case AttackKind::kLockReleaseWhenAway: return "lock_release_when_away";
    case AttackKind::kCurtainReconnaissance: return "curtain_reconnaissance";
    case AttackKind::kOvenArson: return "oven_arson";
  }
  return "?";
}

const std::vector<AttackKind>& AllAttackKinds() {
  static const std::vector<AttackKind> kAll = {
      AttackKind::kSmokeSpoofBackdoor, AttackKind::kGasSpoofWindow,
      AttackKind::kNightWindowInjection, AttackKind::kLockReleaseWhenAway,
      AttackKind::kCurtainReconnaissance, AttackKind::kOvenArson,
  };
  return kAll;
}

AttackGenerator::AttackGenerator(SmartHome& home, const InstructionRegistry& registry,
                                 std::uint64_t seed)
    : home_(home), registry_(registry), rng_(seed) {}

Result<AttackAttempt> AttackGenerator::Launch(AttackKind kind) {
  AttackAttempt attempt;
  attempt.kind = kind;

  const auto spoof_first_of_type = [&](SensorType type, SensorValue forged) -> Status {
    for (Sensor* sensor : home_.AllSensors()) {
      if (sensor->type() == type) {
        sensor->Spoof(std::move(forged));
        attempt.spoofed.push_back(sensor);
        return Status::Ok();
      }
    }
    return Error("home has no sensor of type " + std::string(ToString(type)));
  };
  const auto want = [&](const char* name) -> Status {
    attempt.instruction = registry_.FindByName(name);
    if (attempt.instruction == nullptr) {
      return Error(std::string("registry lacks instruction '") + name + "'");
    }
    return Status::Ok();
  };

  switch (kind) {
    case AttackKind::kSmokeSpoofBackdoor: {
      // The §III.A scenario: "insert malicious code to forge the value of
      // the fire smoke sensor so that the gateway would automatically
      // execute 'if a fire occurs, open the back door'".
      const Status spoofed = spoof_first_of_type(SensorType::kSmoke, SensorValue::Binary(true));
      if (!spoofed.ok()) return spoofed.error();
      const Status named = want("backdoor.open");
      if (!named.ok()) return named.error();
      attempt.description = "forged smoke detector; attacker requests backdoor.open";
      break;
    }
    case AttackKind::kGasSpoofWindow: {
      const Status spoofed = spoof_first_of_type(SensorType::kGasLeak, SensorValue::Binary(true));
      if (!spoofed.ok()) return spoofed.error();
      const Status named = want("window.open");
      if (!named.ok()) return named.error();
      attempt.description = "forged gas detector; attacker requests window.open";
      break;
    }
    case AttackKind::kNightWindowInjection: {
      const Status named = want("window.open");
      if (!named.ok()) return named.error();
      attempt.description = "raw window.open injection with no supporting context";
      break;
    }
    case AttackKind::kLockReleaseWhenAway: {
      const Status named = want("lock.unlock");
      if (!named.ok()) return named.error();
      attempt.description = "lock.unlock injected while the house is empty";
      break;
    }
    case AttackKind::kCurtainReconnaissance: {
      const Status named = want("curtain.open");
      if (!named.ok()) return named.error();
      attempt.description = "curtain.open injected for visual reconnaissance";
      break;
    }
    case AttackKind::kOvenArson: {
      const Status named = want("oven.preheat");
      if (!named.ok()) return named.error();
      attempt.description = "oven.preheat injected in an empty house";
      break;
    }
  }
  home_.LogEvent("ATTACK staged: " + std::string(ToString(kind)));
  return attempt;
}

void AttackGenerator::Cleanup(AttackAttempt& attempt) {
  for (Sensor* sensor : attempt.spoofed) sensor->ClearSpoof();
  attempt.spoofed.clear();
}

}  // namespace sidet
