// Adversarial campaign layer — context-spoofing, sensor-compromise and
// mimicry campaigns mounted against the *live* collection path.
//
// AttackGenerator (attack_generator.h) models the paper's in-home threat: a
// malicious SmartApp spoofing a sensor object inside the hub. Campaigns model
// the stronger network adversary the robustness issue calls for: one who
// tampers with the transport itself — crafting miio packets with a stolen
// gateway token, serving forged REST bodies on a stolen bearer token,
// recording benign responses and replaying them later, or pinning a
// compromised feed that looks perfectly healthy to the collector. Each
// family stages its tampering through the transport's FaultSchedule
// (`compromised_after` / `stuck_after`), names the sensitive instructions the
// attacker then tries to slip through, and cleans up after itself so the
// same rig can score every family back-to-back.
//
// The defence under test is the IDS's cross-sensor consistency tier
// (core/consistency.h): forged context that violates physics couplings
// (smoke without bad air, daylight lux at night, frozen bit-identical
// readings) is condemned before the per-category model ever votes.
#pragma once

#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "home/smart_home.h"
#include "instructions/instruction.h"
#include "protocol/fault_schedule.h"
#include "protocol/miio_gateway.h"
#include "protocol/transport.h"
#include "sensors/snapshot.h"
#include "util/result.h"

namespace sidet {

// Broad class of a campaign family; the bench aggregates per class.
enum class AttackClass : std::uint8_t {
  kSpoofing = 0,  // forged or replayed context over the transport
  kCompromise,    // a sensor feed the attacker persistently controls
  kMimicry,       // no tampering: near-benign probes at the decision boundary
};

enum class AttackFamily : std::uint8_t {
  // Spoofing: crafted miio packets (stolen gateway token) forging a kitchen
  // fire while the rest of the vendor's readings stay benign.
  kMiioHazardSpoof = 0,
  // Spoofing: forged REST bodies (stolen bearer token) claiming a fresh voice
  // command, occupancy and bright light in the dead of night.
  kRestPresenceSpoof,
  // Spoofing: record-and-replay — both vendors' benign daytime responses
  // captured earlier and replayed verbatim at night.
  kSnapshotReplay,
  // Compromise: the attacker wedges the REST bridge (stuck_after) right after
  // an evening voice window so the stale "voice heard" context keeps serving.
  kStuckSensorExploit,
  // Compromise: a *coherent* hazard packet (smoke + matching temperature and
  // AQI) pinned on the gateway address well before the strike.
  kCompromisedSensorPin,
  // Mimicry: no context tampering at all; sensitive probes issued at boundary
  // times (dawn, late evening) hoping the model's decision surface allows.
  kBoundaryMimicry,
};

inline constexpr std::size_t kAttackFamilyCount = 6;

std::string_view ToString(AttackFamily family);
std::string_view ToString(AttackClass cls);
AttackClass ClassOf(AttackFamily family);
const std::vector<AttackFamily>& AllAttackFamilies();

// Everything a campaign needs to tamper with the rig. Pointers are not owned
// and must outlive the runner. `base_schedule` is what Cleanup() restores —
// pass the scenario's chaos schedule to run adversarial campaigns *on top of*
// network faults.
struct CampaignContext {
  SmartHome* home = nullptr;
  InMemoryTransport* transport = nullptr;
  const InstructionRegistry* registry = nullptr;
  // The attacker's stolen credentials: the gateway object yields the miio
  // token/device id (developer-mode disclosure, §IV.B.1).
  MiioGateway* gateway = nullptr;
  std::string gateway_address;
  std::string bridge_address;
  FaultSchedule base_schedule;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignContext context);

  // Captures the home's current readings as the benign template the forgery
  // and replay families splice from. Call at a quiet daytime moment before
  // the first Prepare; replay attacks are only as good as their recording.
  void RecordBenignContext();
  bool has_benign_context() const { return has_benign_; }
  const SensorSnapshot& benign_context() const { return benign_; }

  // Installs the family's transport tampering starting at `now`. Families
  // that forge context fail if RecordBenignContext was never called.
  // kBoundaryMimicry installs nothing.
  Status Prepare(AttackFamily family, SimTime now);

  // The sensitive instructions the attacker tries to slip through while the
  // family's spoof is live. Resolution failures are skipped (empty only if
  // the registry lacks every probe).
  std::vector<const Instruction*> Strike(AttackFamily family) const;

  // Restores the base fault schedule (drops any campaign tampering).
  void Cleanup();

 private:
  // Crafts a full authenticated get_all_props response: benign recorded
  // values for every Xiaomi sensor, with `overrides` spliced in.
  Bytes CraftMiioResponse(const std::map<std::string, SensorValue>& overrides) const;
  // Crafts a 200 /api/states body the RestClient parses: benign recorded
  // values for every SmartThings sensor, with `overrides` spliced in.
  Bytes CraftRestResponse(const std::map<std::string, SensorValue>& overrides) const;
  // Copies the base spec for `address` (or the default) and applies `mutate`.
  template <typename Fn>
  void TamperAddress(const std::string& address, Fn&& mutate);
  std::vector<const Instruction*> Resolve(std::initializer_list<const char*> names) const;

  CampaignContext context_;
  SensorSnapshot benign_;
  bool has_benign_ = false;
  FaultSchedule active_;  // base + current family's tampering
};

}  // namespace sidet
