#include "attacks/campaign_metrics.h"

namespace sidet {

namespace {

Json MatrixJson(const ConfusionMatrix& matrix) {
  Json out = Json::Object();
  out["tp"] = static_cast<std::int64_t>(matrix.tp);
  out["tn"] = static_cast<std::int64_t>(matrix.tn);
  out["fp"] = static_cast<std::int64_t>(matrix.fp);
  out["fn"] = static_cast<std::int64_t>(matrix.fn);
  return out;
}

}  // namespace

void CampaignScoreboard::RecordAttack(AttackFamily family, bool blocked) {
  Tally& tally = families_[static_cast<std::size_t>(family)];
  ++tally.attempts;
  if (blocked) ++tally.blocked;
}

void CampaignScoreboard::RecordBenign(bool blocked) {
  ++benign_.attempts;
  if (blocked) ++benign_.blocked;
}

std::size_t CampaignScoreboard::attack_attempts(AttackFamily family) const {
  return families_[static_cast<std::size_t>(family)].attempts;
}

std::size_t CampaignScoreboard::attack_blocked(AttackFamily family) const {
  return families_[static_cast<std::size_t>(family)].blocked;
}

double CampaignScoreboard::DetectionRate(AttackFamily family) const {
  const Tally& tally = families_[static_cast<std::size_t>(family)];
  if (tally.attempts == 0) return 0.0;
  return static_cast<double>(tally.blocked) / static_cast<double>(tally.attempts);
}

double CampaignScoreboard::BenignFalsePositiveRate() const {
  if (benign_.attempts == 0) return 0.0;
  return static_cast<double>(benign_.blocked) / static_cast<double>(benign_.attempts);
}

ConfusionMatrix CampaignScoreboard::FamilyConfusion(AttackFamily family) const {
  const Tally& tally = families_[static_cast<std::size_t>(family)];
  ConfusionMatrix matrix;
  // Attacks are the negative (illegitimate-context) class: blocking one is a
  // true negative, letting it through a false positive.
  matrix.tn = static_cast<long>(tally.blocked);
  matrix.fp = static_cast<long>(tally.attempts - tally.blocked);
  // Benign probes are positives: allowing is correct, blocking a false alarm.
  matrix.tp = static_cast<long>(benign_.attempts - benign_.blocked);
  matrix.fn = static_cast<long>(benign_.blocked);
  return matrix;
}

ConfusionMatrix CampaignScoreboard::OverallConfusion() const {
  ConfusionMatrix matrix;
  for (const Tally& tally : families_) {
    matrix.tn += static_cast<long>(tally.blocked);
    matrix.fp += static_cast<long>(tally.attempts - tally.blocked);
  }
  matrix.tp = static_cast<long>(benign_.attempts - benign_.blocked);
  matrix.fn = static_cast<long>(benign_.blocked);
  return matrix;
}

Json CampaignScoreboard::ToJson() const {
  Json out = Json::Object();
  Json families = Json::Array();
  for (AttackFamily family : AllAttackFamilies()) {
    const Tally& tally = families_[static_cast<std::size_t>(family)];
    Json entry = Json::Object();
    entry["name"] = std::string(ToString(family));
    entry["class"] = std::string(ToString(ClassOf(family)));
    entry["attempts"] = static_cast<std::int64_t>(tally.attempts);
    entry["blocked"] = static_cast<std::int64_t>(tally.blocked);
    entry["detection_rate"] = DetectionRate(family);
    entry["confusion"] = MatrixJson(FamilyConfusion(family));
    const BinaryMetrics metrics = ComputeMetrics(FamilyConfusion(family));
    Json derived = Json::Object();
    derived["accuracy"] = metrics.accuracy;
    derived["recall"] = metrics.recall;
    derived["precision"] = metrics.precision;
    derived["fpr"] = metrics.fpr;
    derived["fnr"] = metrics.fnr;
    derived["f1"] = metrics.f1;
    entry["metrics"] = std::move(derived);
    families.as_array().push_back(std::move(entry));
  }
  out["families"] = std::move(families);

  Json benign = Json::Object();
  benign["attempts"] = static_cast<std::int64_t>(benign_.attempts);
  benign["blocked"] = static_cast<std::int64_t>(benign_.blocked);
  benign["false_positive_rate"] = BenignFalsePositiveRate();
  out["benign"] = std::move(benign);
  out["overall_confusion"] = MatrixJson(OverallConfusion());
  return out;
}

}  // namespace sidet
