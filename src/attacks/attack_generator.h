// Attack scenario library — the threat model of §III.A.
//
// The canonical attack the paper defends against: a malicious SmartApp
// forges the value of a hazard sensor so the gateway's automation fires a
// sensitive instruction ("if a fire occurs, open the back door"), letting a
// burglar in. AttackGenerator stages such attacks against a live SmartHome:
// it spoofs sensors (reported values change, physical state does not) and
// names the sensitive instruction the attacker wants executed. The caller
// (bench/example) routes that instruction through the IDS and scores
// interception. Cleanup() removes the spoofs.
#pragma once

#include <string>
#include <vector>

#include "home/smart_home.h"
#include "instructions/instruction.h"
#include "util/rng.h"

namespace sidet {

enum class AttackKind {
  kSmokeSpoofBackdoor = 0,  // forge smoke -> open the back door (§III.A)
  kGasSpoofWindow,          // forge gas leak -> open the window
  kNightWindowInjection,    // raw command injection at night, empty house
  kLockReleaseWhenAway,     // unlock the smart lock while nobody is home
  kCurtainReconnaissance,   // open curtains while away (privacy)
  kOvenArson,               // preheat the oven in an empty house
};

inline constexpr std::size_t kAttackKindCount = 6;
std::string_view ToString(AttackKind kind);
const std::vector<AttackKind>& AllAttackKinds();

struct AttackAttempt {
  AttackKind kind;
  const Instruction* instruction = nullptr;  // what the attacker tries to run
  std::string description;
  std::vector<Sensor*> spoofed;  // sensors currently forged
};

class AttackGenerator {
 public:
  AttackGenerator(SmartHome& home, const InstructionRegistry& registry, std::uint64_t seed);

  // Stages the attack's preconditions (sensor spoofs) and returns the
  // attempt. Fails if the home lacks the devices/sensors the attack needs.
  Result<AttackAttempt> Launch(AttackKind kind);

  // Removes the attempt's spoofs.
  void Cleanup(AttackAttempt& attempt);

 private:
  SmartHome& home_;
  const InstructionRegistry& registry_;
  Rng rng_;
};

}  // namespace sidet
