#include "datagen/corpus_generator.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"
#include "util/thread_pool.h"

namespace sidet {

namespace {

// One strategy template. `fmt` may contain up to two %g placeholders whose
// sampled values come from [lo1,hi1] / [lo2,hi2].
struct Template {
  DeviceCategory category;
  const char* action;
  const char* fmt;
  int args;
  double lo1, hi1;
  double lo2, hi2;
  const char* description;
  const char* camera_trigger;  // non-null only for camera-warning templates
};

const std::vector<Template>& CoreTemplates() {
  static const std::vector<Template> kTemplates = {
      // Windows / doors / locks.
      {DeviceCategory::kWindowAndLock, "window.open", "smoke", 0, 0, 0, 0, 0,
       "If the smoke alarm fires, open the window to ventilate", nullptr},
      {DeviceCategory::kWindowAndLock, "window.open", "gas_leak", 0, 0, 0, 0, 0,
       "If combustible gas is detected, open the window", nullptr},
      {DeviceCategory::kWindowAndLock, "window.open", "air_quality > %g", 1, 120, 220, 0, 0,
       "If indoor air quality is poor, open the window", nullptr},
      {DeviceCategory::kWindowAndLock, "window.open", "voice_command and not lock_state", 0, 0,
       0, 0, 0, "Open the window on a resident's voice command while the home is unlocked",
       nullptr},
      {DeviceCategory::kWindowAndLock, "window.open",
       "temperature > %g and weather_condition == \"clear\"", 1, 24, 30, 0, 0,
       "If it is hot inside on a clear day, open the window", nullptr},
      {DeviceCategory::kWindowAndLock, "window.open",
       "temperature > %g and not lock_state and motion", 1, 25, 29, 0, 0,
       "If it is hot and someone is active at home, open the window", nullptr},
      {DeviceCategory::kWindowAndLock, "window.close", "weather_condition == \"rain\"", 0, 0, 0,
       0, 0, "Close the window when it rains", nullptr},
      {DeviceCategory::kWindowAndLock, "window.close", "hour >= %g", 1, 21, 23, 0, 0,
       "Close the window late in the evening", nullptr},
      {DeviceCategory::kWindowAndLock, "lock.lock", "not motion and hour >= %g", 1, 21, 23, 0, 0,
       "Engage the smart lock at night when the house is quiet", nullptr},
      {DeviceCategory::kWindowAndLock, "backdoor.open", "smoke and gas_leak", 0, 0, 0, 0, 0,
       "If a fire is confirmed by smoke and gas detectors, open the back door for escape",
       nullptr},

      // Lighting.
      {DeviceCategory::kLighting, "light.on", "motion and illuminance < %g", 1, 30, 90, 0, 0,
       "Turn on the light when motion is seen in a dark room", nullptr},
      {DeviceCategory::kLighting, "light.on",
       "occupancy and (segment == \"evening\" or segment == \"night\")", 0, 0, 0, 0, 0,
       "If someone goes home and it is evening or later, turn on the lights", nullptr},
      {DeviceCategory::kLighting, "light.on", "voice_command and occupancy", 0, 0, 0, 0, 0,
       "Turn on the light on voice command", nullptr},
      {DeviceCategory::kLighting, "light.on", "motion and segment == \"night\"", 0, 0, 0, 0, 0,
       "Night light on motion", nullptr},
      {DeviceCategory::kLighting, "light.off", "not occupancy", 0, 0, 0, 0, 0,
       "Turn lights off when the house empties", nullptr},
      {DeviceCategory::kLighting, "light.off", "hour >= %g and not motion", 1, 22, 23.8, 0, 0,
       "Lights out late at night when nothing moves", nullptr},
      {DeviceCategory::kLighting, "light.set_brightness",
       "occupancy and illuminance < %g and hour >= %g", 2, 20, 60, 17, 20,
       "Dim evening lighting when natural light fades", nullptr},

      // Air conditioning / thermostat.
      {DeviceCategory::kAirConditioning, "ac.cool", "temperature > %g and occupancy", 1, 26, 30,
       0, 0, "When the indoor temperature is too high and someone is home, cool", nullptr},
      {DeviceCategory::kAirConditioning, "ac.heat", "temperature < %g and occupancy", 1, 14, 18,
       0, 0, "Heat when it is cold inside and someone is home", nullptr},
      {DeviceCategory::kAirConditioning, "ac.cool",
       "temperature > %g and humidity > %g", 2, 25, 29, 60, 78,
       "Cool when hot and humid", nullptr},
      {DeviceCategory::kAirConditioning, "ac.cool",
       "outdoor_temperature > %g and occupancy", 1, 28, 33, 0, 0,
       "Pre-cool on very hot days", nullptr},
      {DeviceCategory::kAirConditioning, "ac.off", "not occupancy", 0, 0, 0, 0, 0,
       "Switch the AC off when nobody is home", nullptr},
      {DeviceCategory::kAirConditioning, "ac.off", "window_contact", 0, 0, 0, 0, 0,
       "Do not condition with a window open", nullptr},
      {DeviceCategory::kAirConditioning, "ac.on", "occupancy and hour >= %g and hour < %g", 2, 6,
       7.5, 8.5, 10, "Morning comfort schedule", nullptr},

      // Curtains / blinds.
      {DeviceCategory::kCurtains, "curtain.close",
       "illuminance > %g and weather_condition == \"clear\"", 1, 700, 1500, 0, 0,
       "Close the curtains against glare", nullptr},
      {DeviceCategory::kCurtains, "curtain.open", "occupancy and hour >= %g and hour < %g", 2, 6,
       8, 9, 11, "Open the curtains in the morning", nullptr},
      {DeviceCategory::kCurtains, "curtain.close", "segment == \"night\"", 0, 0, 0, 0, 0,
       "Close the curtains at night", nullptr},
      {DeviceCategory::kCurtains, "curtain.close", "not occupancy", 0, 0, 0, 0, 0,
       "Close the curtains when leaving (privacy)", nullptr},
      {DeviceCategory::kCurtains, "curtain.open", "voice_command and occupancy", 0, 0, 0, 0, 0,
       "Open the curtains on voice command", nullptr},

      // TV / stereo.
      {DeviceCategory::kEntertainment, "tv.on", "occupancy and segment == \"evening\"", 0, 0, 0,
       0, 0, "Evening TV when someone is home", nullptr},
      {DeviceCategory::kEntertainment, "tv.on", "voice_command and occupancy", 0, 0, 0, 0, 0,
       "Turn the TV on by voice", nullptr},
      {DeviceCategory::kEntertainment, "tv.off", "not occupancy", 0, 0, 0, 0, 0,
       "Turn the TV off when the house empties", nullptr},
      {DeviceCategory::kEntertainment, "tv.off", "hour >= %g", 1, 22.5, 23.9, 0, 0,
       "TV off at bedtime", nullptr},
      {DeviceCategory::kEntertainment, "stereo.play",
       "weekend and occupancy and motion", 0, 0, 0, 0, 0,
       "Weekend music when people are around", nullptr},
      {DeviceCategory::kEntertainment, "stereo.set_volume",
       "noise_level > %g and occupancy", 1, 70, 90, 0, 0,
       "Drop the volume when the room is loud", nullptr},

      // Kitchen.
      {DeviceCategory::kKitchen, "kettle.boil",
       "occupancy and hour >= %g and hour < %g", 2, 6, 7.5, 8.5, 9.5,
       "Boil the kettle for breakfast", nullptr},
      {DeviceCategory::kKitchen, "cooker.start",
       "occupancy and motion and hour >= %g", 1, 10, 12, 0, 0,
       "Start the rice cooker before lunch", nullptr},
      {DeviceCategory::kKitchen, "oven.preheat", "voice_command and occupancy", 0, 0, 0, 0, 0,
       "Preheat the oven on voice command", nullptr},
      {DeviceCategory::kKitchen, "oven.off", "not occupancy", 0, 0, 0, 0, 0,
       "Never leave the oven on in an empty house", nullptr},
      {DeviceCategory::kKitchen, "kettle.boil", "occupancy and segment == \"morning\"", 0, 0, 0,
       0, 0, "Morning kettle", nullptr},

      // Vacuum.
      {DeviceCategory::kVacuum, "vacuum.start", "not occupancy and hour >= %g and hour < %g", 2,
       9, 11, 12, 15, "Clean while the house is empty", nullptr},
      {DeviceCategory::kVacuum, "vacuum.dock", "occupancy", 0, 0, 0, 0, 0,
       "Send the vacuum home when residents return", nullptr},

      // Alarms (trigger devices; §V keeps them out of the IDS scope but the
      // crawled corpus contains their strategies).
      {DeviceCategory::kAlarm, "alarm.siren_on", "smoke or gas_leak", 0, 0, 0, 0, 0,
       "Sound the siren on smoke or gas", nullptr},
      {DeviceCategory::kAlarm, "alarm.arm", "not occupancy", 0, 0, 0, 0, 0,
       "Arm the alarm when everyone leaves", nullptr},
      {DeviceCategory::kAlarm, "alarm.disarm", "occupancy and motion", 0, 0, 0, 0, 0,
       "Disarm when residents are home and active", nullptr},
  };
  return kTemplates;
}

// Camera-warning templates — the Fig 7 census. Weights approximate the
// paper's chart: door/window openings dominate, then the hazard sensors.
struct CameraTemplate {
  Template base;
  double weight;
};

const std::vector<CameraTemplate>& CameraTemplates() {
  static const std::vector<CameraTemplate> kTemplates = {
      {{DeviceCategory::kSecurityCamera, "camera.alert", "door_contact", 0, 0, 0, 0, 0,
        "Warn the user when a door opens", "door opened"},
       0.26},
      {{DeviceCategory::kSecurityCamera, "camera.alert", "window_contact", 0, 0, 0, 0, 0,
        "Warn the user when a window opens", "window opened"},
       0.24},
      {{DeviceCategory::kSecurityCamera, "camera.alert", "smoke", 0, 0, 0, 0, 0,
        "Warn the user on smoke or fire", "smoke or fire"},
       0.17},
      {{DeviceCategory::kSecurityCamera, "camera.alert", "water_leak", 0, 0, 0, 0, 0,
        "Warn the user on a water leak", "water leak"},
       0.12},
      {{DeviceCategory::kSecurityCamera, "camera.alert", "gas_leak", 0, 0, 0, 0, 0,
        "Warn the user on combustible gas", "combustible gas"},
       0.10},
      {{DeviceCategory::kSecurityCamera, "camera.alert", "motion and not occupancy", 0, 0, 0, 0,
        0, "Warn on motion while nobody is home", "motion while away"},
       0.08},
      {{DeviceCategory::kSecurityCamera, "camera.alert",
        "noise_level > %g and not occupancy", 1, 75, 95, 0, 0,
        "Warn on loud noise in an empty house", "loud noise"},
       0.03},
  };
  return kTemplates;
}

std::string Instantiate(const Template& t, Rng& rng) {
  switch (t.args) {
    case 0:
      return t.fmt;
    case 1:
      return Format(t.fmt, std::round(rng.UniformDouble(t.lo1, t.hi1) * 10.0) / 10.0);
    case 2:
      return Format(t.fmt, std::round(rng.UniformDouble(t.lo1, t.hi1) * 10.0) / 10.0,
                    std::round(rng.UniformDouble(t.lo2, t.hi2) * 10.0) / 10.0);
    default:
      return t.fmt;
  }
}

}  // namespace

Result<GeneratedCorpus> GenerateCorpus(const CorpusConfig& config,
                                       const InstructionRegistry& registry) {
  Rng rng(config.seed);
  GeneratedCorpus out;

  // Category mix for the core corpus, roughly matching how vendor platforms
  // skew toward lighting/climate comfort rules.
  const std::vector<Template>& templates = CoreTemplates();
  std::vector<double> weights;
  weights.reserve(templates.size());
  for (const Template& t : templates) {
    double w = 1.0;
    switch (t.category) {
      case DeviceCategory::kLighting: w = 1.6; break;
      case DeviceCategory::kAirConditioning: w = 1.3; break;
      case DeviceCategory::kWindowAndLock: w = 1.2; break;
      case DeviceCategory::kCurtains: w = 1.0; break;
      case DeviceCategory::kEntertainment: w = 1.0; break;
      case DeviceCategory::kKitchen: w = 1.0; break;
      case DeviceCategory::kVacuum: w = 0.5; break;
      case DeviceCategory::kAlarm: w = 0.5; break;
      default: w = 0.4; break;
    }
    weights.push_back(w);
  }

  // Rule i (template choice, parameter draws, DSL parse) comes entirely from
  // stream rng.Fork(i), so instantiation shards freely across workers while
  // producing the same corpus in the same order at any thread count. Camera
  // rules use the stream indices after the core block.
  {
    const std::size_t total = config.core_rules + config.camera_rules;
    std::vector<Rule> rules(total);
    std::vector<Status> statuses(total, Status::Ok());
    std::vector<const char*> camera_triggers(total, nullptr);

    std::vector<double> camera_weights;
    for (const CameraTemplate& t : CameraTemplates()) camera_weights.push_back(t.weight);

    ParallelFor(config.threads, total, [&](std::size_t i) {
      Rng rule_rng = rng.Fork(i);
      const Template* t;
      if (i < config.core_rules) {
        t = &templates[rule_rng.Categorical(weights)];
      } else {
        const CameraTemplate& camera = CameraTemplates()[rule_rng.Categorical(camera_weights)];
        t = &camera.base;
        camera_triggers[i] = camera.base.camera_trigger;
      }
      const std::string condition = Instantiate(*t, rule_rng);
      Result<Rule> rule = MakeRule(static_cast<std::uint32_t>(i + 1), t->description, condition,
                                   t->action, registry, /*user_count=*/1);
      if (!rule.ok()) {
        statuses[i] =
            rule.error().context(i < config.core_rules ? "core corpus" : "camera corpus");
        return;
      }
      rules[i] = std::move(rule).value();
    });

    for (const Status& status : statuses) {
      if (!status.ok()) return status.error();
    }
    for (std::size_t i = 0; i < total; ++i) {
      out.corpus.Add(std::move(rules[i]));
      if (camera_triggers[i] != nullptr) out.camera_census[camera_triggers[i]] += 1;
    }
  }

  // Popularity: Zipf rank-size law (rank 1 gets max_users, rank r gets
  // max_users / r^s) with 20% multiplicative jitter — the Fig 5
  // head-and-tail shape. Safety automations (hazard-sensor triggers) and
  // voice-control rules are boosted toward the head: on real platforms they
  // ship as defaults / official recipes and dominate adoption, which is also
  // what makes smoke, gas and voice the dominant Fig 6 features.
  {
    std::vector<std::size_t> ranks(out.corpus.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) ranks[i] = i;
    rng.Shuffle(ranks);
    RuleCorpus reweighted;
    std::vector<std::uint32_t> counts(out.corpus.size(), 1);
    for (std::size_t position = 0; position < ranks.size(); ++position) {
      const double rank = static_cast<double>(position) + 1.0;
      const double base = static_cast<double>(config.max_users) /
                          std::pow(rank, config.popularity_exponent);
      const double jitter = 1.0 + rng.Normal(0.0, 0.2);
      counts[ranks[position]] =
          std::max<std::uint32_t>(1, static_cast<std::uint32_t>(base * std::max(0.2, jitter)));
    }
    std::size_t index = 0;
    for (const Rule& rule : out.corpus.rules()) {
      Rule copy = rule;
      copy.user_count = counts[index++];
      const std::string& cond = copy.condition_source;
      const bool hazard = cond.find("smoke") != std::string::npos ||
                          cond.find("gas_leak") != std::string::npos ||
                          cond.find("water_leak") != std::string::npos;
      const bool voice = cond.find("voice_command") != std::string::npos;
      if (hazard) copy.user_count *= 6;
      else if (voice) copy.user_count *= 3;
      // Time-only schedules (no sensor in the condition) sit in the tail:
      // platforms report sensor-triggered recipes as the widely shared ones.
      if (copy.condition->ReferencedSensors().empty()) {
        copy.user_count = std::max<std::uint32_t>(1, copy.user_count / 5);
      }
      reweighted.Add(std::move(copy));
    }
    out.corpus = std::move(reweighted);
  }

  return out;
}

}  // namespace sidet
