// ContextSchema: the per-device-family feature layout.
//
// Each device model in Table VI is trained on its own set of sensor context
// features. The window schema is exactly the nine features of Fig 6 (smoke,
// combustible gas, user voice command, smart-door-lock state, temperature,
// air quality, outdoor weather, motion, specific time); the other families
// use the sensors their automation strategies reference. A schema converts a
// SensorSnapshot + time into an ML feature row, both at dataset-construction
// time and at live-judgement time.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "instructions/device_category.h"
#include "ml/dataset.h"
#include "sensors/snapshot.h"
#include "util/sim_clock.h"

namespace sidet {

struct ContextField {
  enum class Source { kSensor, kHour, kSegment, kWeekend, kAction };
  Source source = Source::kSensor;
  SensorType sensor_type = SensorType::kMotion;  // when source == kSensor
  std::string name;                              // feature name (DSL identifier)
};

class ContextSchema {
 public:
  ContextSchema() = default;
  ContextSchema(DeviceCategory category, std::vector<ContextField> fields);

  // The fixed schema for one of the evaluated device families: the family's
  // sensor context features (Fig 6's nine, for windows) plus the *action*
  // feature — which control instruction of the family is being judged. The
  // paper's window model is "whether to OPEN the window"; carrying the
  // instruction as a categorical feature lets one per-family tree encode
  // per-action context (opening needs different context than closing).
  static ContextSchema ForCategory(DeviceCategory category);

  DeviceCategory category() const { return category_; }
  const std::vector<ContextField>& fields() const { return fields_; }
  std::size_t size() const { return fields_.size(); }

  std::vector<FeatureSpec> ToFeatureSpecs() const;

  // The action-feature category labels for this family (the family's control
  // instructions plus a trailing "other" sentinel for unseen actions).
  const std::vector<std::string>& ActionLabels() const;
  double ActionIndex(std::string_view action) const;

  // Fails when the snapshot lacks a referenced sensor. `action` is the
  // instruction being judged (ignored unless the schema has an action field).
  Result<std::vector<double>> Featurize(const SensorSnapshot& snapshot, SimTime time,
                                        std::string_view action = "") const;

  // Allocation-free variant for the batch hot path: writes into `out`,
  // which must span exactly size() doubles. Heap traffic only on the error
  // path (the message), so a steady-state batch featurizes rows with zero
  // allocations.
  Status FeaturizeInto(const SensorSnapshot& snapshot, SimTime time, std::string_view action,
                       std::span<double> out) const;

  // Indices of kAction fields (usually exactly one), precomputed so the
  // batch judger can patch the per-row action without rescanning fields.
  const std::vector<std::size_t>& action_field_indices() const { return action_fields_; }

 private:
  DeviceCategory category_ = DeviceCategory::kAlarm;
  std::vector<ContextField> fields_;
  std::vector<std::size_t> action_fields_;
};

// Device families evaluated in Table VI, in the paper's row order.
const std::vector<DeviceCategory>& EvaluatedCategories();
// Table VI row label ("window", "Air conditioning", ...).
std::string_view EvaluationRowName(DeviceCategory category);

}  // namespace sidet
