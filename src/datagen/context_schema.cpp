#include "datagen/context_schema.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "instructions/standard_instruction_set.h"

namespace sidet {

namespace {

// Action-feature labels per family: the standard instruction set's control
// instructions for the category, plus a trailing "other" sentinel.
const std::vector<std::string>& ActionLabelsFor(DeviceCategory category) {
  static const std::map<DeviceCategory, std::vector<std::string>> kLabels = [] {
    const InstructionRegistry registry = BuildStandardInstructionSet();
    std::map<DeviceCategory, std::vector<std::string>> labels;
    for (const DeviceCategory c : AllDeviceCategories()) {
      std::vector<std::string> names;
      for (const Instruction* instruction :
           registry.ForCategory(c, InstructionKind::kControl)) {
        names.push_back(instruction->name);
      }
      std::sort(names.begin(), names.end());
      names.push_back("other");
      labels[c] = std::move(names);
    }
    return labels;
  }();
  return kLabels.at(category);
}

ContextField ActionField() {
  return ContextField{ContextField::Source::kAction, SensorType::kMotion, "action"};
}

ContextField SensorField(SensorType type) {
  return ContextField{ContextField::Source::kSensor, type, std::string(ToString(type))};
}

ContextField HourField() {
  return ContextField{ContextField::Source::kHour, SensorType::kMotion, "hour"};
}

ContextField SegmentField() {
  return ContextField{ContextField::Source::kSegment, SensorType::kMotion, "segment"};
}

ContextField WeekendField() {
  return ContextField{ContextField::Source::kWeekend, SensorType::kMotion, "weekend"};
}

}  // namespace

ContextSchema::ContextSchema(DeviceCategory category, std::vector<ContextField> fields)
    : category_(category), fields_(std::move(fields)) {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].source == ContextField::Source::kAction) action_fields_.push_back(i);
  }
}

const std::vector<std::string>& ContextSchema::ActionLabels() const {
  return ActionLabelsFor(category_);
}

double ContextSchema::ActionIndex(std::string_view action) const {
  const std::vector<std::string>& labels = ActionLabels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == action) return static_cast<double>(i);
  }
  return static_cast<double>(labels.size() - 1);  // "other"
}

ContextSchema ContextSchema::ForCategory(DeviceCategory category) {
  switch (category) {
    case DeviceCategory::kWindowAndLock:
      // Exactly the nine features of Fig 6, plus the action feature.
      return ContextSchema(category, {
          SensorField(SensorType::kSmoke),
          SensorField(SensorType::kGasLeak),
          SensorField(SensorType::kVoiceCommand),
          SensorField(SensorType::kLockState),
          SensorField(SensorType::kTemperature),
          SensorField(SensorType::kAirQuality),
          SensorField(SensorType::kWeatherCondition),
          SensorField(SensorType::kMotion),
          HourField(),
          ActionField(),
      });
    case DeviceCategory::kAirConditioning:
      return ContextSchema(category, {
          SensorField(SensorType::kTemperature),
          SensorField(SensorType::kOutdoorTemperature),
          SensorField(SensorType::kOccupancy),
          SensorField(SensorType::kHumidity),
          SensorField(SensorType::kWindowContact),
          HourField(),
          ActionField(),
      });
    case DeviceCategory::kLighting:
      return ContextSchema(category, {
          SensorField(SensorType::kMotion),
          SensorField(SensorType::kOccupancy),
          SensorField(SensorType::kIlluminance),
          SensorField(SensorType::kVoiceCommand),
          HourField(),
          SegmentField(),
          ActionField(),
      });
    case DeviceCategory::kCurtains:
      return ContextSchema(category, {
          SensorField(SensorType::kIlluminance),
          SensorField(SensorType::kOccupancy),
          SensorField(SensorType::kWeatherCondition),
          SensorField(SensorType::kVoiceCommand),
          HourField(),
          ActionField(),
      });
    case DeviceCategory::kEntertainment:
      return ContextSchema(category, {
          SensorField(SensorType::kOccupancy),
          SensorField(SensorType::kMotion),
          SensorField(SensorType::kNoiseLevel),
          SensorField(SensorType::kVoiceCommand),
          HourField(),
          WeekendField(),
          ActionField(),
      });
    case DeviceCategory::kKitchen:
      // "The eigenvalue types of kitchen appliances are relatively simple" —
      // the smallest schema.
      return ContextSchema(category, {
          SensorField(SensorType::kOccupancy),
          SensorField(SensorType::kMotion),
          SensorField(SensorType::kVoiceCommand),
          HourField(),
          ActionField(),
      });
    default:
      // Families not evaluated in Table VI get a generic schema.
      return ContextSchema(category, {
          SensorField(SensorType::kOccupancy),
          SensorField(SensorType::kMotion),
          SensorField(SensorType::kVoiceCommand),
          HourField(),
          ActionField(),
      });
  }
}

std::vector<FeatureSpec> ContextSchema::ToFeatureSpecs() const {
  std::vector<FeatureSpec> specs;
  specs.reserve(fields_.size());
  for (const ContextField& field : fields_) {
    FeatureSpec spec;
    spec.name = field.name;
    switch (field.source) {
      case ContextField::Source::kSensor: {
        const SensorTraits& traits = TraitsOf(field.sensor_type);
        if (traits.kind == ValueKind::kCategorical) {
          spec.categorical = true;
          for (const std::string_view c : traits.categories) spec.categories.emplace_back(c);
        }
        // Binary sensors ride as numeric 0/1: threshold splits handle them
        // naturally and they stay comparable across classifiers.
        break;
      }
      case ContextField::Source::kSegment:
        spec.categorical = true;
        spec.categories = {"night", "morning", "afternoon", "evening"};
        break;
      case ContextField::Source::kAction:
        spec.categorical = true;
        spec.categories = ActionLabelsFor(category_);
        break;
      case ContextField::Source::kHour:
      case ContextField::Source::kWeekend:
        break;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

Result<std::vector<double>> ContextSchema::Featurize(const SensorSnapshot& snapshot,
                                                     SimTime time,
                                                     std::string_view action) const {
  std::vector<double> row(fields_.size());
  Status status = FeaturizeInto(snapshot, time, action, row);
  if (!status.ok()) return status.error();
  return row;
}

Status ContextSchema::FeaturizeInto(const SensorSnapshot& snapshot, SimTime time,
                                    std::string_view action, std::span<double> out) const {
  assert(out.size() == fields_.size());
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const ContextField& field = fields_[i];
    switch (field.source) {
      case ContextField::Source::kSensor: {
        const SensorValue* value = snapshot.FindByType(field.sensor_type);
        if (value == nullptr) {
          return Error("snapshot lacks a '" + field.name + "' sensor");
        }
        out[i] = value->number;
        break;
      }
      case ContextField::Source::kHour:
        out[i] = time.hour_of_day();
        break;
      case ContextField::Source::kSegment:
        out[i] = static_cast<double>(time.day_segment());
        break;
      case ContextField::Source::kWeekend:
        out[i] = time.is_weekend() ? 1.0 : 0.0;
        break;
      case ContextField::Source::kAction:
        out[i] = ActionIndex(action);
        break;
    }
  }
  return Status();
}

const std::vector<DeviceCategory>& EvaluatedCategories() {
  static const std::vector<DeviceCategory> kEvaluated = {
      DeviceCategory::kWindowAndLock, DeviceCategory::kAirConditioning,
      DeviceCategory::kLighting,      DeviceCategory::kCurtains,
      DeviceCategory::kEntertainment, DeviceCategory::kKitchen,
  };
  return kEvaluated;
}

std::string_view EvaluationRowName(DeviceCategory category) {
  switch (category) {
    case DeviceCategory::kWindowAndLock: return "window";
    case DeviceCategory::kAirConditioning: return "Air conditioning";
    case DeviceCategory::kLighting: return "light";
    case DeviceCategory::kCurtains: return "Curtains, blinds";
    case DeviceCategory::kEntertainment: return "TV, stereo";
    case DeviceCategory::kKitchen: return "Kitchen appliances";
    default: return DisplayName(category);
  }
}

}  // namespace sidet
