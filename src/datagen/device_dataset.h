// Per-device-family labelled dataset construction.
//
// Expands the strategy corpus into (sensor context, label) rows for one
// device family, the way §IV.C describes expanding the 804 strategies by
// their user populations:
//   label 1 (positive / legitimate): a context in which one of the family's
//     strategies genuinely fires — sampled from the background distribution
//     and steered to satisfy the strategy's condition; strategies are picked
//     proportionally to their user counts.
//   label 0 (negative / out-of-context): an instruction arriving in a
//     context no strategy sanctions. Two flavours: *easy* negatives are
//     plain background contexts (falsified if a rule happens to hold), and
//     *hard* negatives start from a satisfied context and break one atom with
//     a small margin — the spoofed-sensor near-miss an attacker produces.
// `ambiguous_positive_fraction` models legitimate-but-unusual user behaviour
// (the source of the paper's ~4–7% false-negative rates); `label_noise`
// models crawl/labelling errors.
#pragma once

#include "automation/rule.h"
#include "datagen/context_schema.h"
#include "ml/dataset.h"

namespace sidet {

struct DeviceDatasetConfig {
  DeviceCategory category = DeviceCategory::kWindowAndLock;
  std::size_t samples = 3000;
  double positive_fraction = 0.75;        // corpus skews heavily positive
  double hard_negative_fraction = 0.4;    // of negatives
  double hard_negative_margin = 0.90;     // solver margin scale for near-misses
  // Fraction of negatives synthesized as sensor-spoof attacks: a hazard rule
  // condition satisfied bit-for-bit, with the *physical* downstream effects
  // of the hazard absent (§III.A's forged-smoke attack). Only applies to
  // families whose rules reference hazard sensors.
  double spoof_negative_fraction = 0.0;
  // Couple hazard bits to their physical consequences (smoke -> air quality
  // and temperature rise). Required for spoof detection; bench_fig6 disables
  // it to reproduce the paper's physics-free feature weights.
  bool hazard_coherence = true;
  double ambiguous_positive_fraction = 0.05;
  double label_noise = 0.006;
  double sensor_noise = 0.15;             // stddev added to continuous features,
                                          // relative to each sensor's range/25
  std::uint64_t seed = 7;
};

// The defaults that reproduce each Table VI row's difficulty.
DeviceDatasetConfig DefaultConfigFor(DeviceCategory category, std::uint64_t seed = 7);

struct DeviceDataset {
  Dataset data;
  ContextSchema schema;
  std::size_t rules_used = 0;
};

// Fails when the corpus has no rules for the family.
Result<DeviceDataset> BuildDeviceDataset(const RuleCorpus& corpus,
                                         const DeviceDatasetConfig& config);

}  // namespace sidet
