// Condition solver: mutates a sampled context so that a rule condition
// becomes (or stops being) true.
//
// Positive training rows are contexts in which some automation strategy for
// the device legitimately fires; rejection-sampling those from the
// background distribution would be hopeless for rare conjunctions (smoke AND
// gas AND night), so the builder samples a background context and then
// *forces* the condition's atoms:
//   - AND satisfies both sides; OR satisfies one side at random;
//   - NOT flips the target;
//   - comparisons set the referenced sensor (or the time) just past the
//     threshold, with a randomized margin;
//   - bare identifiers set the binary sensor.
// Falsification is the dual (falsify one AND side / both OR sides), which —
// starting from a satisfied context — yields the *hard negatives*: attack
// contexts that mimic most of the legitimate scene.
#pragma once

#include "automation/condition.h"
#include "datagen/background.h"
#include "util/rng.h"

namespace sidet {

struct SolverOptions {
  // Scales the random slack added beyond numeric thresholds. Small values
  // put samples near decision boundaries (harder datasets).
  double margin_scale = 1.0;
};

// Fails on conditions it cannot steer (e.g. comparisons between two
// literals that are simply false).
Status ForceCondition(const ConditionExpr& condition, bool satisfy, ContextSample& context,
                      Rng& rng, const SolverOptions& options = {});

}  // namespace sidet
