// BackgroundSampler: draws realistic joint sensor contexts directly.
//
// The dataset builder needs many thousands of plausible home states; running
// the full discrete-event simulator for each would be slow and would couple
// corpus statistics to one home layout. The sampler instead draws from the
// same joint structure the simulator produces — occupancy follows the time
// of day, indoor temperature tracks a diurnal outdoor cycle, hazard sensors
// are rare, illuminance mixes daylight with lamp usage — one independent
// context per call.
#pragma once

#include "sensors/snapshot.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace sidet {

struct ContextSample {
  SensorSnapshot snapshot;
  SimTime time;
};

class BackgroundSampler {
 public:
  explicit BackgroundSampler(std::uint64_t seed);

  ContextSample Sample();

 private:
  Rng rng_;
};

// Re-imposes the physical couplings a *genuine* hazard produces, after a
// solver pass has forced hazard sensors directly: real smoke raises air
// quality readings and temperature, real gas raises air quality, a real
// water leak raises humidity. Contexts with a hazard bit set but none of
// these downstream effects are exactly what a sensor-spoofing attacker
// produces — the IDS's handle on the §III.A attack.
void EnforceHazardCoherence(ContextSample& context, Rng& rng);

// The inverse: forces the downstream channels back to benign values while
// leaving the hazard bits alone (used to synthesize spoof-attack negatives).
// Channels named in `skip` (sensor type names) are left untouched.
void StripHazardCoherence(ContextSample& context, Rng& rng,
                          const std::vector<std::string>& skip);

}  // namespace sidet
