#include "datagen/condition_solver.h"

#include <algorithm>
#include <cmath>

namespace sidet {

namespace {

// Writes `value` into whatever the identifier names: a sensor reading or one
// of the time pseudo-sensors.
Status Assign(const std::string& identifier, const CondValue& value, ContextSample& context,
              Rng& rng) {
  if (identifier == "hour") {
    if (value.kind != CondValue::Kind::kNumber) return Error("hour must be numeric");
    const double h = std::clamp(value.number, 0.0, 23.999);
    const auto second_of_day = static_cast<std::int64_t>(h * kSecondsPerHour);
    context.time = SimTime(context.time.day() * kSecondsPerDay + second_of_day);
    context.snapshot.set_time(context.time);
    return Status::Ok();
  }
  if (identifier == "segment") {
    if (value.kind != CondValue::Kind::kString) return Error("segment must be a string");
    double lo = 0.0, hi = 6.0;
    if (value.text == "night") { lo = 0.0; hi = 6.0; }
    else if (value.text == "morning") { lo = 6.0; hi = 12.0; }
    else if (value.text == "afternoon") { lo = 12.0; hi = 18.0; }
    else if (value.text == "evening") { lo = 18.0; hi = 24.0; }
    else return Error("unknown segment '" + value.text + "'");
    return Assign("hour", CondValue::Number(rng.UniformDouble(lo, hi - 0.01)), context, rng);
  }
  if (identifier == "weekend") {
    if (value.kind != CondValue::Kind::kBool) return Error("weekend must be boolean");
    const auto dow = static_cast<std::int64_t>(context.time.day_of_week());
    std::int64_t target_dow;
    if (value.boolean) {
      target_dow = rng.Bernoulli(0.5) ? 5 : 6;  // Sat / Sun
    } else {
      target_dow = rng.UniformInt(0, 4);
    }
    const std::int64_t new_day = context.time.day() - dow + target_dow;
    context.time = SimTime(new_day * kSecondsPerDay + context.time.second_of_day());
    context.snapshot.set_time(context.time);
    return Status::Ok();
  }

  Result<SensorType> type = SensorTypeFromString(identifier);
  if (!type.ok()) return type.error().context("solver assign");
  const SensorTraits& traits = TraitsOf(type.value());
  SensorValue sensor_value;
  switch (traits.kind) {
    case ValueKind::kBinary:
      if (value.kind != CondValue::Kind::kBool) {
        return Error(identifier + " is binary but assignment is not boolean");
      }
      sensor_value = SensorValue::Binary(value.boolean);
      break;
    case ValueKind::kContinuous: {
      if (value.kind != CondValue::Kind::kNumber) {
        return Error(identifier + " is continuous but assignment is not numeric");
      }
      sensor_value =
          SensorValue::Continuous(std::clamp(value.number, traits.min_value, traits.max_value));
      break;
    }
    case ValueKind::kCategorical: {
      if (value.kind != CondValue::Kind::kString) {
        return Error(identifier + " is categorical but assignment is not a string");
      }
      Result<SensorValue> made = MakeCategorical(type.value(), value.text);
      if (!made.ok()) return made.error();
      sensor_value = std::move(made).value();
      break;
    }
  }
  context.snapshot.Set(identifier, type.value(), std::move(sensor_value));
  return Status::Ok();
}

// A random different category for != forcing.
Result<CondValue> SomeOtherCategory(const std::string& identifier, const std::string& not_this,
                                    Rng& rng) {
  if (identifier == "segment") {
    static constexpr const char* kSegments[4] = {"night", "morning", "afternoon", "evening"};
    std::vector<std::string> options;
    for (const char* s : kSegments) {
      if (not_this != s) options.emplace_back(s);
    }
    return CondValue::String(options[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(options.size()) - 1))]);
  }
  Result<SensorType> type = SensorTypeFromString(identifier);
  if (!type.ok()) return type.error();
  const SensorTraits& traits = TraitsOf(type.value());
  std::vector<std::string> options;
  for (const std::string_view c : traits.categories) {
    if (not_this != c) options.emplace_back(c);
  }
  if (options.empty()) return Error("no alternative category for " + identifier);
  return CondValue::String(options[static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(options.size()) - 1))]);
}

class Solver {
 public:
  Solver(ContextSample& context, Rng& rng, const SolverOptions& options)
      : context_(context), rng_(rng), options_(options) {}

  Status Force(const ConditionExpr& node, bool satisfy) {
    switch (node.node()) {
      case ConditionExpr::Node::kAnd:
        if (satisfy) {
          const Status lhs = Force(*node.lhs(), true);
          if (!lhs.ok()) return lhs;
          return Force(*node.rhs(), true);
        }
        // Falsify exactly one side — the other may keep holding, producing
        // near-miss contexts.
        return Force(rng_.Bernoulli(0.5) ? *node.lhs() : *node.rhs(), false);
      case ConditionExpr::Node::kOr:
        if (satisfy) return Force(rng_.Bernoulli(0.5) ? *node.lhs() : *node.rhs(), true);
        {
          const Status lhs = Force(*node.lhs(), false);
          if (!lhs.ok()) return lhs;
          return Force(*node.rhs(), false);
        }
      case ConditionExpr::Node::kNot:
        return Force(*node.lhs(), !satisfy);
      case ConditionExpr::Node::kIdentifier:
        return Assign(node.identifier(), CondValue::Bool(satisfy), context_, rng_);
      case ConditionExpr::Node::kLiteral: {
        const CondValue& literal = node.literal();
        if (literal.kind == CondValue::Kind::kBool && literal.boolean == satisfy) {
          return Status::Ok();
        }
        return Error("cannot force constant condition");
      }
      case ConditionExpr::Node::kCompare:
        return ForceCompare(node, satisfy);
    }
    return Error("unhandled node");
  }

 private:
  double Margin(double scale) const {
    return (0.05 + std::abs(rng_.Normal(0.0, 0.8))) * scale * options_.margin_scale;
  }

  // Current value of an operand (literal or identifier).
  Result<CondValue> Eval(const ConditionExpr& node) {
    if (node.node() == ConditionExpr::Node::kLiteral) return node.literal();
    if (node.node() == ConditionExpr::Node::kIdentifier) {
      EvalContext eval;
      eval.snapshot = &context_.snapshot;
      eval.time = context_.time;
      return eval.Resolve(node.identifier());
    }
    return Error("comparison operand must be identifier or literal");
  }

  Status ForceCompare(const ConditionExpr& node, bool satisfy) {
    const ConditionExpr* lhs = node.lhs();
    const ConditionExpr* rhs = node.rhs();
    const bool lhs_is_ident = lhs->node() == ConditionExpr::Node::kIdentifier;
    const bool rhs_is_ident = rhs->node() == ConditionExpr::Node::kIdentifier;

    // Effective operator after applying the (dis)satisfaction target.
    CompareOp op = node.compare_op();
    if (!satisfy) {
      switch (op) {
        case CompareOp::kEq: op = CompareOp::kNe; break;
        case CompareOp::kNe: op = CompareOp::kEq; break;
        case CompareOp::kLt: op = CompareOp::kGe; break;
        case CompareOp::kLe: op = CompareOp::kGt; break;
        case CompareOp::kGt: op = CompareOp::kLe; break;
        case CompareOp::kGe: op = CompareOp::kLt; break;
      }
    }

    if (!lhs_is_ident && !rhs_is_ident) {
      // Literal-vs-literal: nothing to steer; just check.
      EvalContext eval;
      eval.snapshot = &context_.snapshot;
      eval.time = context_.time;
      Result<bool> holds = node.Evaluate(eval);
      if (!holds.ok()) return holds.error();
      if (holds.value() == satisfy) return Status::Ok();
      return Error("constant comparison cannot be forced");
    }

    // Normalize to "steer the left identifier relative to the right value".
    const ConditionExpr* target = lhs_is_ident ? lhs : rhs;
    const ConditionExpr* anchor = lhs_is_ident ? rhs : lhs;
    if (!lhs_is_ident) {
      // Mirror the operator when we steer the right operand instead.
      switch (op) {
        case CompareOp::kLt: op = CompareOp::kGt; break;
        case CompareOp::kLe: op = CompareOp::kGe; break;
        case CompareOp::kGt: op = CompareOp::kLt; break;
        case CompareOp::kGe: op = CompareOp::kLe; break;
        default: break;
      }
    }

    Result<CondValue> anchor_value = Eval(*anchor);
    if (!anchor_value.ok()) return anchor_value.error();
    const CondValue& a = anchor_value.value();

    switch (op) {
      case CompareOp::kEq:
        return Assign(target->identifier(), a, context_, rng_);
      case CompareOp::kNe:
        switch (a.kind) {
          case CondValue::Kind::kBool:
            return Assign(target->identifier(), CondValue::Bool(!a.boolean), context_, rng_);
          case CondValue::Kind::kNumber:
            return Assign(target->identifier(),
                          CondValue::Number(a.number + (rng_.Bernoulli(0.5) ? 1 : -1) *
                                                           Margin(NumericScale(target))),
                          context_, rng_);
          case CondValue::Kind::kString: {
            Result<CondValue> other = SomeOtherCategory(target->identifier(), a.text, rng_);
            if (!other.ok()) return other.error();
            return Assign(target->identifier(), other.value(), context_, rng_);
          }
        }
        return Error("unhandled kind");
      case CompareOp::kLt:
      case CompareOp::kLe:
        if (a.kind != CondValue::Kind::kNumber) return Error("ordering needs numbers");
        return Assign(target->identifier(),
                      CondValue::Number(a.number - Margin(NumericScale(target))), context_,
                      rng_);
      case CompareOp::kGt:
      case CompareOp::kGe:
        if (a.kind != CondValue::Kind::kNumber) return Error("ordering needs numbers");
        return Assign(target->identifier(),
                      CondValue::Number(a.number + Margin(NumericScale(target))), context_,
                      rng_);
    }
    return Error("unhandled comparison");
  }

  // Sensible margin scale per identifier (temperature degrees vs lux).
  double NumericScale(const ConditionExpr* identifier_node) const {
    const std::string& name = identifier_node->identifier();
    if (name == "hour") return 1.5;
    Result<SensorType> type = SensorTypeFromString(name);
    if (!type.ok()) return 1.0;
    const SensorTraits& traits = TraitsOf(type.value());
    return std::max(0.5, (traits.max_value - traits.min_value) / 25.0);
  }

  ContextSample& context_;
  Rng& rng_;
  const SolverOptions& options_;
};

}  // namespace

Status ForceCondition(const ConditionExpr& condition, bool satisfy, ContextSample& context,
                      Rng& rng, const SolverOptions& options) {
  // One forcing pass can disturb a sibling atom (two constraints over `hour`,
  // an OR whose re-randomized category lands back on the excluded one), so
  // force-then-verify with bounded retries. Margins decay across attempts:
  // a conjunction bounding `hour` to a half-hour window is only satisfiable
  // once the random slack shrinks below the window width.
  Status last = Status::Ok();
  for (int attempt = 0; attempt < 12; ++attempt) {
    SolverOptions scaled = options;
    scaled.margin_scale =
        std::max(options.margin_scale / (1.0 + attempt), options.margin_scale * 0.25);
    last = Solver(context, rng, scaled).Force(condition, satisfy);
    if (!last.ok()) return last;
    EvalContext eval;
    eval.snapshot = &context.snapshot;
    eval.time = context.time;
    const Result<bool> holds = condition.Evaluate(eval);
    if (!holds.ok()) return holds.error();
    if (holds.value() == satisfy) return Status::Ok();
  }
  return Error("could not force condition " + condition.ToString() + " to " +
               (satisfy ? "true" : "false"));
}

}  // namespace sidet
