// Strategy-corpus generator.
//
// Reconstructs the paper's crawled dataset: ~804 distinct automation
// strategies across the device families (§IV.C.1, "804 original valid data")
// plus the 319 camera-warning strategies of Fig 7. Each rule carries a
// platform user count following a Zipf rank-size law — the popularity skew of
// Fig 5 — which the dataset expansion multiplies by, mirroring "each piece of
// valid data will generate a large amount of data when multiplied by the
// number of users".
#pragma once

#include <map>

#include "automation/rule.h"
#include "instructions/instruction.h"
#include "util/rng.h"

namespace sidet {

struct CorpusConfig {
  std::size_t core_rules = 804;
  std::size_t camera_rules = 319;
  std::uint64_t seed = 2021;
  // Zipf rank-size exponent and head size for user counts (Fig 5).
  double popularity_exponent = 0.85;
  std::uint32_t max_users = 18000;
  // Worker lanes for rule instantiation + DSL parsing (1 = sequential,
  // 0 = hardware concurrency). Every rule draws from its own Fork(i) stream,
  // so the generated corpus is identical at any thread count.
  int threads = 1;
};

struct GeneratedCorpus {
  RuleCorpus corpus;
  // Camera-warning rules annotated by trigger kind -> count (Fig 7 series).
  std::map<std::string, int> camera_census;
};

Result<GeneratedCorpus> GenerateCorpus(const CorpusConfig& config,
                                       const InstructionRegistry& registry);

}  // namespace sidet
