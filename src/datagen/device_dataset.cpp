#include "datagen/device_dataset.h"

#include <algorithm>
#include <cmath>

#include "datagen/background.h"
#include "datagen/condition_solver.h"

namespace sidet {

DeviceDatasetConfig DefaultConfigFor(DeviceCategory category, std::uint64_t seed) {
  DeviceDatasetConfig config;
  config.category = category;
  config.seed = seed ^ (static_cast<std::uint64_t>(category) << 32);
  switch (category) {
    case DeviceCategory::kKitchen:
      // Simple feature types, best-fitting model (test acc ≈ .96, Table VI).
      config.hard_negative_fraction = 0.22;
      config.ambiguous_positive_fraction = 0.026;
      config.label_noise = 0.002;
      break;
    case DeviceCategory::kCurtains:
      config.hard_negative_fraction = 0.18;
      config.ambiguous_positive_fraction = 0.042;
      config.label_noise = 0.004;
      break;
    case DeviceCategory::kEntertainment:
      config.hard_negative_fraction = 0.22;
      config.ambiguous_positive_fraction = 0.056;
      config.label_noise = 0.005;
      break;
    case DeviceCategory::kAirConditioning:
      config.hard_negative_fraction = 0.14;
      config.ambiguous_positive_fraction = 0.042;
      config.label_noise = 0.005;
      break;
    case DeviceCategory::kWindowAndLock:
      // Richest schema; small but nonzero false-alarm rate in the paper.
      // A quarter of the attack class is sensor-spoofing (§III.A).
      config.hard_negative_fraction = 0.35;
      config.spoof_negative_fraction = 0.25;
      config.ambiguous_positive_fraction = 0.038;
      config.label_noise = 0.006;
      config.hard_negative_margin = 0.50;
      break;
    case DeviceCategory::kLighting:
      // The weakest model of Table VI (.8923) — noisiest behaviour.
      config.hard_negative_fraction = 0.18;
      config.ambiguous_positive_fraction = 0.032;
      config.label_noise = 0.006;
      break;
    default:
      break;
  }
  return config;
}

namespace {

// Falsifies every rule in `rules` that currently holds (bounded retries;
// forcing one rule off can turn another on).
void FalsifyAll(const std::vector<const Rule*>& rules, ContextSample& context, Rng& rng,
                const SolverOptions& options) {
  for (int attempt = 0; attempt < 6; ++attempt) {
    EvalContext eval;
    eval.snapshot = &context.snapshot;
    eval.time = context.time;
    bool any = false;
    for (const Rule* rule : rules) {
      const Result<bool> holds = rule->condition->Evaluate(eval);
      if (holds.ok() && holds.value()) {
        (void)ForceCondition(*rule->condition, /*satisfy=*/false, context, rng, options);
        any = true;
      }
    }
    if (!any) return;
  }
}

std::vector<const Rule*> RulesForAction(const std::vector<const Rule*>& rules,
                                        std::string_view action) {
  std::vector<const Rule*> out;
  for (const Rule* rule : rules) {
    if (rule->action == action) out.push_back(rule);
  }
  return out;
}

}  // namespace

Result<DeviceDataset> BuildDeviceDataset(const RuleCorpus& corpus,
                                         const DeviceDatasetConfig& config) {
  const std::vector<const Rule*> rules = corpus.ForCategory(config.category);
  if (rules.empty()) {
    return Error("corpus has no rules for category " +
                 std::string(ToString(config.category)));
  }

  DeviceDataset out;
  out.schema = ContextSchema::ForCategory(config.category);
  out.data = Dataset(out.schema.ToFeatureSpecs());
  out.rules_used = rules.size();

  std::vector<double> rule_weights;
  rule_weights.reserve(rules.size());
  for (const Rule* rule : rules) rule_weights.push_back(static_cast<double>(rule->user_count));

  Rng rng(config.seed);
  BackgroundSampler sampler(rng.Next());
  const SolverOptions normal_margin{1.0};
  const SolverOptions near_margin{config.hard_negative_margin};

  // Per-feature measurement noise, matching the simulator's per-type sensor
  // accuracy (SmartHome's default noise models) so trained boundaries
  // transfer to live snapshots. `config.sensor_noise` scales relative to
  // that baseline (0.15 keeps the defaults).
  const auto baseline_noise = [](SensorType type) {
    switch (type) {
      case SensorType::kTemperature:
      case SensorType::kOutdoorTemperature: return 0.8;
      case SensorType::kHumidity: return 4.0;
      case SensorType::kIlluminance: return 60.0;
      case SensorType::kAirQuality: return 12.0;
      case SensorType::kNoiseLevel: return 5.0;
      default: return 1.0;
    }
  };
  std::vector<double> noise_scale(out.schema.size(), 0.0);
  for (std::size_t f = 0; f < out.schema.fields().size(); ++f) {
    const ContextField& field = out.schema.fields()[f];
    if (field.source == ContextField::Source::kSensor &&
        TraitsOf(field.sensor_type).kind == ValueKind::kContinuous) {
      noise_scale[f] = config.sensor_noise / 0.15 * baseline_noise(field.sensor_type);
    }
  }

  const auto add_row = [&](const ContextSample& context, std::string_view action,
                           int label) -> Status {
    Result<std::vector<double>> row =
        out.schema.Featurize(context.snapshot, context.time, action);
    if (!row.ok()) return row.error();
    std::vector<double> values = std::move(row).value();
    for (std::size_t f = 0; f < values.size(); ++f) {
      if (noise_scale[f] > 0.0) values[f] += rng.Normal(0.0, noise_scale[f]);
    }
    if (config.label_noise > 0.0 && rng.Bernoulli(config.label_noise)) label = 1 - label;
    out.data.Add(std::move(values), label);
    return Status::Ok();
  };

  const auto positives =
      static_cast<std::size_t>(config.positive_fraction * static_cast<double>(config.samples));
  const std::size_t negatives = config.samples - positives;

  // --- Positives: (rule action, context satisfying the rule) ------------------
  for (std::size_t i = 0; i < positives; ++i) {
    const Rule* rule = rules[rng.Categorical(rule_weights)];
    ContextSample context = sampler.Sample();
    const Status forced =
        ForceCondition(*rule->condition, /*satisfy=*/true, context, rng, normal_margin);
    if (!forced.ok()) return forced.error().context("positive sample");

    if (rng.Bernoulli(config.ambiguous_positive_fraction)) {
      // A legitimate-but-unusual execution: the user fired the command in a
      // context no recorded strategy for that action sanctions (a manual 3am
      // window opening). Deep in negative-looking territory — these bound
      // the model's recall (the paper's 4-7% FNR).
      const SolverOptions far_margin{1.6};
      FalsifyAll(RulesForAction(rules, rule->action), context, rng, far_margin);
    }
    if (config.hazard_coherence) EnforceHazardCoherence(context, rng);
    const Status added = add_row(context, rule->action, 1);
    if (!added.ok()) return added.error();
  }

  // --- Negatives: (action, context no rule for that action sanctions) ---------
  // Hazard-triggered rules are the spoofing surface (§III.A).
  std::vector<const Rule*> hazard_rules;
  std::vector<double> hazard_weights;
  for (const Rule* rule : rules) {
    for (const std::string& sensor : rule->condition->ReferencedSensors()) {
      if (sensor == "smoke" || sensor == "gas_leak" || sensor == "water_leak") {
        hazard_rules.push_back(rule);
        hazard_weights.push_back(static_cast<double>(rule->user_count));
        break;
      }
    }
  }
  // Action labels an injected command may carry (everything in the family,
  // not just actions that appear in rules — attackers are not so polite).
  std::vector<std::string> all_actions = out.schema.ActionLabels();
  if (!all_actions.empty() && all_actions.back() == "other") all_actions.pop_back();

  const auto hard =
      static_cast<std::size_t>(config.hard_negative_fraction * static_cast<double>(negatives));
  const std::size_t spoof =
      hazard_rules.empty()
          ? 0
          : static_cast<std::size_t>(config.spoof_negative_fraction *
                                     static_cast<double>(negatives));
  for (std::size_t i = 0; i < negatives; ++i) {
    ContextSample context = sampler.Sample();
    if (i < spoof) {
      // Sensor spoofing: the attacker forges exactly the hazard bits a rule
      // wants, but cannot forge the physical consequences.
      const Rule* rule = hazard_rules[rng.Categorical(hazard_weights)];
      const Status forced =
          ForceCondition(*rule->condition, /*satisfy=*/true, context, rng, normal_margin);
      if (!forced.ok()) return forced.error().context("spoof negative");
      StripHazardCoherence(context, rng, rule->condition->ReferencedSensors());
      const Status added = add_row(context, rule->action, 0);
      if (!added.ok()) return added.error();
      continue;
    }

    // Which instruction does the attacker inject? Mostly the actions real
    // rules use (mimicry), sometimes any family instruction.
    std::string action;
    if (rng.Bernoulli(0.7)) {
      action = rules[rng.Categorical(rule_weights)]->action;
    } else {
      action = all_actions[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(all_actions.size()) - 1))];
    }
    const std::vector<const Rule*> action_rules = RulesForAction(rules, action);

    if (i < spoof + hard && !action_rules.empty()) {
      // Near-miss attack: satisfy one of the action's strategies, then break
      // one atom with a small margin.
      const Rule* rule = action_rules[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(action_rules.size()) - 1))];
      (void)ForceCondition(*rule->condition, /*satisfy=*/true, context, rng, normal_margin);
      const Status broken =
          ForceCondition(*rule->condition, /*satisfy=*/false, context, rng, near_margin);
      if (!broken.ok()) return broken.error().context("hard negative");
      FalsifyAll(action_rules, context, rng, near_margin);
    } else {
      FalsifyAll(action_rules, context, rng, normal_margin);
    }
    EnforceHazardCoherence(context, rng);
    const Status added = add_row(context, action, 0);
    if (!added.ok()) return added.error();
  }

  out.data.Shuffle(rng);
  return out;
}

}  // namespace sidet
