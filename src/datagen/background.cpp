#include "datagen/background.h"

#include <algorithm>
#include <cmath>

namespace sidet {

BackgroundSampler::BackgroundSampler(std::uint64_t seed) : rng_(seed) {}

ContextSample BackgroundSampler::Sample() {
  ContextSample sample;

  // Time: uniform over a fortnight.
  const auto seconds = rng_.UniformInt(0, 14 * kSecondsPerDay - 1);
  sample.time = SimTime(seconds);
  const double hour = sample.time.hour_of_day();
  const bool weekend = sample.time.is_weekend();

  // Occupancy: high at night, low during weekday work hours.
  double p_home = 0.92;
  if (!weekend && hour >= 8.5 && hour < 17.5) p_home = 0.25;
  else if (weekend && hour >= 10.0 && hour < 15.0) p_home = 0.6;
  const bool home = rng_.Bernoulli(p_home);
  const bool awake = home && (hour >= 6.5 && hour < 23.5 ? rng_.Bernoulli(0.95)
                                                         : rng_.Bernoulli(0.08));

  // Weather.
  const double weights[4] = {0.45, 0.3, 0.2, 0.05};  // clear cloudy rain snow
  const std::size_t weather_index = rng_.Categorical(std::span<const double>(weights, 4));
  static constexpr const char* kWeatherNames[4] = {"clear", "cloudy", "rain", "snow"};

  // Temperatures: outdoor diurnal cycle, indoor insulated around comfort.
  const double diurnal = 5.0 * std::sin((hour - 9.0) / 24.0 * 2.0 * M_PI);
  double outdoor = 14.0 + diurnal + rng_.Normal(0.0, 4.0);
  if (weather_index == 3) outdoor = std::min(outdoor, rng_.Normal(-1.0, 2.0));  // snow is cold
  // Matches the simulator's insulated zone: relaxed toward outdoor with HVAC
  // keeping it habitable.
  const double indoor =
      std::clamp(18.0 + 0.40 * (outdoor - 14.0) + rng_.Normal(0.0, 2.2), 5.0, 40.0);

  // Hazards: rare, weakly coupled to cooking hours.
  const bool cooking_hours = (hour >= 11 && hour < 13.5) || (hour >= 17.5 && hour < 20);
  const bool smoke = rng_.Bernoulli(home && cooking_hours ? 0.03 : 0.008);
  const bool gas = rng_.Bernoulli(0.006);
  const bool water = rng_.Bernoulli(0.006);

  // Lock: engaged when nobody home; usually engaged at night.
  double p_locked = home ? (hour >= 23 || hour < 7 ? 0.9 : 0.55) : 0.97;
  const bool locked = rng_.Bernoulli(p_locked);

  // Activity sensors.
  const bool motion = awake && rng_.Bernoulli(0.55);
  const bool voice = awake && rng_.Bernoulli(0.08);

  // Illuminance: daylight through windows plus lamps in the evening.
  double daylight = 0.0;
  if (hour > 6.0 && hour < 20.0) {
    daylight = 1600.0 * std::sin((hour - 6.0) / 14.0 * M_PI);
    if (weather_index != 0) daylight *= 0.35;
  }
  double lamps = 0.0;
  if (awake && (hour >= 18.0 || hour < 7.0)) lamps = rng_.Bernoulli(0.8) ? 240.0 : 0.0;
  const double lux = std::max(0.0, daylight + lamps + rng_.Normal(0.0, 25.0));

  // Air quality: worse while cooking; smoke pushes it high.
  double aqi = std::clamp(65.0 + rng_.Normal(0.0, 22.0), 5.0, 500.0);
  if (home && cooking_hours) aqi += rng_.UniformDouble(0.0, 60.0);
  if (smoke) aqi = std::max(aqi, rng_.UniformDouble(180.0, 420.0));

  // Humidity and noise.
  const double humidity = std::clamp(
      (weather_index >= 2 ? 75.0 : 50.0) + rng_.Normal(0.0, 8.0), 10.0, 100.0);
  double noise = 30.0 + (awake ? rng_.UniformDouble(0.0, 25.0) : rng_.Normal(0.0, 2.0));
  noise = std::clamp(noise, 20.0, 120.0);

  // Window/door contact: windows mostly shut, more likely open in mild
  // weather with someone home.
  const bool mild = outdoor > 16.0 && outdoor < 28.0 && weather_index <= 1;
  const bool window_open = rng_.Bernoulli(home && mild ? 0.25 : 0.04);
  const bool door_open = rng_.Bernoulli(home && awake ? 0.08 : 0.01);

  SensorSnapshot& snap = sample.snapshot;
  snap.set_time(sample.time);
  const auto set = [&snap](SensorType type, SensorValue value) {
    snap.Set(std::string(ToString(type)), type, std::move(value));
  };
  set(SensorType::kMotion, SensorValue::Binary(motion));
  set(SensorType::kOccupancy, SensorValue::Binary(home));
  set(SensorType::kDoorContact, SensorValue::Binary(door_open));
  set(SensorType::kWindowContact, SensorValue::Binary(window_open));
  set(SensorType::kSmoke, SensorValue::Binary(smoke));
  set(SensorType::kGasLeak, SensorValue::Binary(gas));
  set(SensorType::kWaterLeak, SensorValue::Binary(water));
  set(SensorType::kLockState, SensorValue::Binary(locked));
  set(SensorType::kVoiceCommand, SensorValue::Binary(voice));
  set(SensorType::kTemperature, SensorValue::Continuous(indoor));
  set(SensorType::kOutdoorTemperature, SensorValue::Continuous(outdoor));
  set(SensorType::kHumidity, SensorValue::Continuous(humidity));
  set(SensorType::kIlluminance, SensorValue::Continuous(lux));
  set(SensorType::kAirQuality, SensorValue::Continuous(aqi));
  set(SensorType::kNoiseLevel, SensorValue::Continuous(noise));
  set(SensorType::kWeatherCondition,
      SensorValue::Categorical(kWeatherNames[weather_index],
                               static_cast<double>(weather_index)));
  // Organic hazard draws obey the same physics as forced ones.
  EnforceHazardCoherence(sample, rng_);
  return sample;
}

namespace {

bool ReadsTrue(const ContextSample& context, SensorType type) {
  const SensorValue* value = context.snapshot.FindByType(type);
  return value != nullptr && value->as_bool();
}

void SetContinuous(ContextSample& context, SensorType type, double value) {
  const SensorTraits& traits = TraitsOf(type);
  context.snapshot.Set(std::string(traits.name), type,
                       SensorValue::Continuous(std::clamp(value, traits.min_value,
                                                          traits.max_value)));
}

double ReadNumber(const ContextSample& context, SensorType type, double fallback) {
  const SensorValue* value = context.snapshot.FindByType(type);
  return value == nullptr ? fallback : value->number;
}

}  // namespace

void EnforceHazardCoherence(ContextSample& context, Rng& rng) {
  if (ReadsTrue(context, SensorType::kSmoke)) {
    SetContinuous(context, SensorType::kAirQuality,
                  std::max(ReadNumber(context, SensorType::kAirQuality, 0.0),
                           rng.UniformDouble(190.0, 430.0)));
    SetContinuous(context, SensorType::kTemperature,
                  std::max(ReadNumber(context, SensorType::kTemperature, 0.0),
                           rng.UniformDouble(26.0, 40.0)));
  }
  if (ReadsTrue(context, SensorType::kGasLeak)) {
    SetContinuous(context, SensorType::kAirQuality,
                  std::max(ReadNumber(context, SensorType::kAirQuality, 0.0),
                           rng.UniformDouble(130.0, 280.0)));
  }
  if (ReadsTrue(context, SensorType::kWaterLeak)) {
    SetContinuous(context, SensorType::kHumidity,
                  std::max(ReadNumber(context, SensorType::kHumidity, 0.0),
                           rng.UniformDouble(82.0, 100.0)));
  }
}

void StripHazardCoherence(ContextSample& context, Rng& rng,
                          const std::vector<std::string>& skip) {
  const auto skipped = [&skip](SensorType type) {
    const std::string_view name = ToString(type);
    for (const std::string& s : skip) {
      if (s == name) return true;
    }
    return false;
  };
  if (!skipped(SensorType::kAirQuality)) {
    SetContinuous(context, SensorType::kAirQuality,
                  std::clamp(60.0 + rng.Normal(0.0, 18.0), 5.0, 115.0));
  }
  if (!skipped(SensorType::kTemperature)) {
    SetContinuous(context, SensorType::kTemperature, 18.5 + rng.Normal(0.0, 2.0));
  }
  if (!skipped(SensorType::kHumidity)) {
    SetContinuous(context, SensorType::kHumidity,
                  std::clamp(52.0 + rng.Normal(0.0, 7.0), 10.0, 78.0));
  }
}

}  // namespace sidet
