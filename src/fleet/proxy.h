// FleetProxy — the fleet's front door.
//
// Routes wire requests across N gateway shards (in-process or remote TCP —
// anything a GatewayClient can reach) by rendezvous placement, with
// per-shard health tracking and failover:
//
//   * judge/explain go to the home's owning shard (FleetDirectory);
//   * a shard that fails transport `unhealthy_after` times in a row is
//     routed around — the request walks the home's PlacementOrder to the
//     next live shard, which cold-starts the home from the shared model
//     store (the tiered store makes every home servable on every shard);
//   * a successful call heals the shard; in-band backpressure (429) is
//     counted per shard and surfaced in StatsJson, but a shed answer is
//     returned to the caller rather than re-routed — spilling a overloaded
//     shard's keys onto its neighbours would just spread the hot spot via
//     cold-start churn;
//   * health fans out to every shard and aggregates.
//
// Not thread-safe: one proxy per front-door thread (GatewayClient is a
// single blocking connection). Shards register with explicit endpoints;
// placement reacts immediately to Add/RemoveShard.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "fleet/directory.h"
#include "sensors/snapshot.h"
#include "server/client.h"
#include "util/json.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace sidet {

struct ShardEndpoint {
  std::string id;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct FleetProxyConfig {
  int unhealthy_after = 3;  // consecutive transport failures → route around
  int call_timeout_ms = 5000;
};

class FleetProxy {
 public:
  explicit FleetProxy(FleetProxyConfig config = {}) : config_(config) {}

  // Registers the shard and connects eagerly; a failed connect still
  // registers (marked unhealthy) so the shard can come up later — every
  // Forward retries disconnected shards.
  Status AddShard(const ShardEndpoint& endpoint);
  Status RemoveShard(const std::string& shard);

  const FleetDirectory& directory() const { return directory_; }

  // The shard the next request for `home` would be sent to (health-aware).
  Result<std::string> ShardFor(const std::string& home) const;

  // Forwarded ops. Judge/Explain return the shard's parsed response line —
  // in-band errors (ok:false, e.g. 429) come back as values for the caller
  // to inspect; a Result error means no shard could be reached at all.
  Result<Json> Judge(const std::string& home, const std::string& instruction, SimTime time,
                     const SensorSnapshot* snapshot = nullptr);
  Result<Json> Explain(const std::string& home, const std::string& instruction, SimTime time,
                       int top_k = 5, const SensorSnapshot* snapshot = nullptr);
  // Routes an arbitrary wire request by its "home" member.
  Result<Json> Forward(const std::string& home, const Json& request);
  // Fan-out: per-shard health bodies plus fleet aggregates (homes, resident
  // lanes, evictions, cold loads summed over reachable shards).
  Json Health(std::int64_t window_seconds = 60);

  struct ShardStats {
    std::uint64_t forwarded = 0;
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;       // in-band 429s
    std::uint64_t errors = 0;     // other in-band failures
    std::uint64_t failovers = 0;  // requests this shard lost to transport failure
    int consecutive_failures = 0;
    bool healthy = true;
  };
  Json StatsJson() const;

 private:
  struct Shard {
    ShardEndpoint endpoint;
    GatewayClient client;
    ShardStats stats;
  };

  // One request to one shard; counts transport failures and heals on
  // success. Reconnects a closed client first.
  Result<Json> CallShard(Shard& shard, const Json& request);

  FleetProxyConfig config_;
  FleetDirectory directory_;
  std::map<std::string, Shard> shards_;
};

}  // namespace sidet
