// FleetDirectory — rendezvous (highest-random-weight) home→shard placement.
//
// Every router in the fleet answers "which shard owns home h?" by ranking
// shards on Weight(shard, home) — a pure hash mix — and picking the max. No
// coordination, no ring state to replicate: two proxies with the same shard
// set always agree, and the placement is deterministic across processes and
// platforms (FNV-1a + SplitMix64 finalizer over the id bytes).
//
// The property this buys (DESIGN.md §18): removing a shard moves exactly the
// homes that shard owned (fraction ≈ 1/N) and nobody else; adding a shard
// steals ≈ 1/(N+1) of every survivor's homes and moves them only onto the
// newcomer. DiffPlacements measures a transition and counts any home that
// moved between two surviving shards as `misplaced` — a rendezvous-property
// violation, asserted zero by the fleet suite.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sidet {

class FleetDirectory {
 public:
  Status AddShard(const std::string& shard);
  Status RemoveShard(const std::string& shard);

  bool HasShard(std::string_view shard) const;
  std::size_t shard_count() const { return shards_.size(); }
  // Insertion order (stable display/iteration order; placement ignores it).
  const std::vector<std::string>& shards() const { return shards_; }

  // The owning shard: argmax weight, ties broken toward the lexicographically
  // smaller id. Errors when the directory is empty.
  Result<std::string> PlaceHome(std::string_view home) const;
  // Every shard sorted by descending weight for `home` — the failover order
  // a proxy walks when the owner is unhealthy.
  std::vector<std::string> PlacementOrder(std::string_view home) const;

  static std::uint64_t Weight(std::string_view shard, std::string_view home);

 private:
  std::vector<std::string> shards_;
};

// One directory transition measured over a home population.
struct RemapReport {
  std::size_t homes = 0;
  std::size_t moved = 0;       // placement changed between `before` and `after`
  std::size_t misplaced = 0;   // moved between two shards present in BOTH
  double moved_fraction = 0.0;
};

RemapReport DiffPlacements(const FleetDirectory& before, const FleetDirectory& after,
                           std::span<const std::string> homes);

}  // namespace sidet
