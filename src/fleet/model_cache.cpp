#include "fleet/model_cache.h"

#include <utility>

#include "core/model_store.h"

namespace sidet {

Result<ContextFeatureMemory> ModelCache::Load(const std::string& path) {
  // Cheap probe first: a compact blob's header names its fingerprint, so a
  // hit never touches the column slabs. Non-compact files (or unreadable
  // headers) fall through to the full load below.
  Result<std::string> peeked = PeekCompactFingerprint(path);
  if (peeked.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_fingerprint_.find(peeked.value());
    if (it != by_fingerprint_.end()) {
      ++hits_;
      return it->second;  // copy shares the shared_ptr models
    }
  }

  // Load outside the lock — disk I/O must not serialize concurrent hits.
  Result<ContextFeatureMemory> loaded = LoadMemoryAuto(path);
  if (!loaded.ok()) return loaded.error().context("model cache '" + path + "'");
  const std::string fingerprint = loaded.value().Fingerprint();

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_fingerprint_.find(fingerprint);
  if (it != by_fingerprint_.end()) {
    // Raced another loader (or a JSON file whose fingerprint was already
    // resident): keep the first copy, count the disk round trip as a miss.
    ++misses_;
    return it->second;
  }
  ++misses_;
  by_fingerprint_.emplace(fingerprint, loaded.value());
  return std::move(loaded).value();
}

ModelCache::Stats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.resident_models = by_fingerprint_.size();
  return out;
}

}  // namespace sidet
