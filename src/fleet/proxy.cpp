#include "fleet/proxy.h"

#include <utility>

namespace sidet {

Status FleetProxy::AddShard(const ShardEndpoint& endpoint) {
  const Status added = directory_.AddShard(endpoint.id);
  if (!added.ok()) return added;
  Shard shard;
  shard.endpoint = endpoint;
  Result<GatewayClient> client = GatewayClient::Connect(endpoint.host, endpoint.port);
  if (client.ok()) {
    shard.client = std::move(client).value();
  } else {
    shard.stats.healthy = false;
    shard.stats.consecutive_failures = config_.unhealthy_after;
  }
  shards_.emplace(endpoint.id, std::move(shard));
  return Status::Ok();
}

Status FleetProxy::RemoveShard(const std::string& shard) {
  const Status removed = directory_.RemoveShard(shard);
  if (!removed.ok()) return removed;
  shards_.erase(shard);
  return Status::Ok();
}

Result<std::string> FleetProxy::ShardFor(const std::string& home) const {
  const std::vector<std::string> order = directory_.PlacementOrder(home);
  if (order.empty()) return Error("fleet has no shards");
  for (const std::string& id : order) {
    const auto it = shards_.find(id);
    if (it != shards_.end() && it->second.stats.healthy) return id;
  }
  // Every shard looks down: answer the owner anyway — the next Forward will
  // retry its connection and may heal it.
  return order.front();
}

Result<Json> FleetProxy::CallShard(Shard& shard, const Json& request) {
  if (!shard.client.connected()) {
    Result<GatewayClient> fresh =
        GatewayClient::Connect(shard.endpoint.host, shard.endpoint.port);
    if (!fresh.ok()) {
      shard.stats.consecutive_failures++;
      if (shard.stats.consecutive_failures >= config_.unhealthy_after) {
        shard.stats.healthy = false;
      }
      return fresh.error().context("shard '" + shard.endpoint.id + "'");
    }
    shard.client = std::move(fresh).value();
  }
  Result<Json> response = shard.client.Call(request, config_.call_timeout_ms);
  if (!response.ok()) {
    // Transport failure: drop the connection so the next attempt redials.
    shard.client.Close();
    shard.stats.consecutive_failures++;
    if (shard.stats.consecutive_failures >= config_.unhealthy_after) {
      shard.stats.healthy = false;
    }
    return response.error().context("shard '" + shard.endpoint.id + "'");
  }
  shard.stats.consecutive_failures = 0;
  shard.stats.healthy = true;
  return response;
}

Result<Json> FleetProxy::Forward(const std::string& home, const Json& request) {
  const std::vector<std::string> order = directory_.PlacementOrder(home);
  if (order.empty()) return Error("fleet has no shards");
  // Two passes over the placement order: healthy shards first, then — only
  // if every preferred hop failed — the unhealthy ones get a recovery try.
  Status last = Error("no shard reachable for home '" + home + "'");
  for (const bool include_unhealthy : {false, true}) {
    for (const std::string& id : order) {
      const auto it = shards_.find(id);
      if (it == shards_.end()) continue;
      Shard& shard = it->second;
      if (!include_unhealthy && !shard.stats.healthy) continue;
      if (include_unhealthy && shard.stats.healthy) continue;  // already tried
      shard.stats.forwarded++;
      Result<Json> response = CallShard(shard, request);
      if (!response.ok()) {
        shard.stats.failovers++;
        last = response.error();
        continue;
      }
      if (response.value().bool_or("ok", false)) {
        shard.stats.ok++;
      } else if (response.value().number_or("code", 0) == 429.0) {
        shard.stats.shed++;
      } else {
        shard.stats.errors++;
      }
      return response;
    }
  }
  return last.error();
}

Result<Json> FleetProxy::Judge(const std::string& home, const std::string& instruction,
                               SimTime time, const SensorSnapshot* snapshot) {
  Json request = Json::Object();
  request["op"] = "judge";
  request["home"] = home;
  request["instruction"] = instruction;
  request["time"] = time.seconds();
  if (snapshot != nullptr) request["snapshot"] = snapshot->ToJson();
  return Forward(home, request);
}

Result<Json> FleetProxy::Explain(const std::string& home, const std::string& instruction,
                                 SimTime time, int top_k, const SensorSnapshot* snapshot) {
  Json request = Json::Object();
  request["op"] = "explain";
  request["home"] = home;
  request["instruction"] = instruction;
  request["time"] = time.seconds();
  request["top_k"] = top_k;
  if (snapshot != nullptr) request["snapshot"] = snapshot->ToJson();
  return Forward(home, request);
}

Json FleetProxy::Health(std::int64_t window_seconds) {
  Json shards = Json::Object();
  std::uint64_t homes = 0;
  std::uint64_t lanes_resident = 0;
  std::uint64_t lane_evictions = 0;
  std::uint64_t model_cold_loads = 0;
  std::size_t reachable = 0;
  Json request = Json::Object();
  request["op"] = "health";
  request["window_seconds"] = window_seconds;
  for (auto& [id, shard] : shards_) {
    Json entry = Json::Object();
    Result<Json> response = CallShard(shard, request);
    if (response.ok() && response.value().bool_or("ok", false)) {
      ++reachable;
      entry["reachable"] = true;
      homes += static_cast<std::uint64_t>(response.value().number_or("homes", 0));
      lanes_resident +=
          static_cast<std::uint64_t>(response.value().number_or("lanes_resident", 0));
      lane_evictions +=
          static_cast<std::uint64_t>(response.value().number_or("lane_evictions", 0));
      model_cold_loads +=
          static_cast<std::uint64_t>(response.value().number_or("model_cold_loads", 0));
      entry["body"] = std::move(response).value();
    } else {
      entry["reachable"] = false;
      entry["error"] = response.ok() ? std::string("in-band failure")
                                     : response.error().message();
    }
    shards[id] = std::move(entry);
  }
  Json out = Json::Object();
  out["shards_total"] = shards_.size();
  out["shards_reachable"] = reachable;
  out["homes"] = homes;
  out["lanes_resident"] = lanes_resident;
  out["lane_evictions"] = lane_evictions;
  out["model_cold_loads"] = model_cold_loads;
  out["shards"] = std::move(shards);
  return out;
}

Json FleetProxy::StatsJson() const {
  Json shards = Json::Object();
  for (const auto& [id, shard] : shards_) {
    Json entry = Json::Object();
    entry["host"] = shard.endpoint.host;
    entry["port"] = shard.endpoint.port;
    entry["healthy"] = shard.stats.healthy;
    entry["forwarded"] = shard.stats.forwarded;
    entry["ok"] = shard.stats.ok;
    entry["shed"] = shard.stats.shed;
    entry["errors"] = shard.stats.errors;
    entry["failovers"] = shard.stats.failovers;
    entry["consecutive_failures"] = shard.stats.consecutive_failures;
    shards[id] = std::move(entry);
  }
  Json out = Json::Object();
  out["shards"] = std::move(shards);
  return out;
}

}  // namespace sidet
