#include "fleet/directory.h"

#include <algorithm>

namespace sidet {

namespace {

std::uint64_t Fnv1a64(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

// SplitMix64 finalizer: full-avalanche mix so shard and home hashes combine
// into weights with no structural correlation between shards.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Status FleetDirectory::AddShard(const std::string& shard) {
  if (shard.empty()) return Error("shard id must be non-empty");
  if (HasShard(shard)) return Error("shard '" + shard + "' already present");
  shards_.push_back(shard);
  return Status::Ok();
}

Status FleetDirectory::RemoveShard(const std::string& shard) {
  const auto it = std::find(shards_.begin(), shards_.end(), shard);
  if (it == shards_.end()) return Error("unknown shard '" + shard + "'");
  shards_.erase(it);
  return Status::Ok();
}

bool FleetDirectory::HasShard(std::string_view shard) const {
  return std::find(shards_.begin(), shards_.end(), shard) != shards_.end();
}

std::uint64_t FleetDirectory::Weight(std::string_view shard, std::string_view home) {
  return Mix(Fnv1a64(home) ^ Mix(Fnv1a64(shard)));
}

Result<std::string> FleetDirectory::PlaceHome(std::string_view home) const {
  if (shards_.empty()) return Error("directory has no shards");
  const std::string* best = nullptr;
  std::uint64_t best_weight = 0;
  for (const std::string& shard : shards_) {
    const std::uint64_t weight = Weight(shard, home);
    if (best == nullptr || weight > best_weight ||
        (weight == best_weight && shard < *best)) {
      best = &shard;
      best_weight = weight;
    }
  }
  return *best;
}

std::vector<std::string> FleetDirectory::PlacementOrder(std::string_view home) const {
  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  ranked.reserve(shards_.size());
  for (const std::string& shard : shards_) {
    ranked.emplace_back(Weight(shard, home), shard);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // same tie-break as PlaceHome
  });
  std::vector<std::string> order;
  order.reserve(ranked.size());
  for (auto& [weight, shard] : ranked) order.push_back(std::move(shard));
  return order;
}

RemapReport DiffPlacements(const FleetDirectory& before, const FleetDirectory& after,
                           std::span<const std::string> homes) {
  RemapReport report;
  report.homes = homes.size();
  for (const std::string& home : homes) {
    const Result<std::string> from = before.PlaceHome(home);
    const Result<std::string> to = after.PlaceHome(home);
    if (!from.ok() || !to.ok()) continue;
    if (from.value() == to.value()) continue;
    ++report.moved;
    if (after.HasShard(from.value()) && before.HasShard(to.value())) ++report.misplaced;
  }
  report.moved_fraction =
      report.homes == 0 ? 0.0
                        : static_cast<double>(report.moved) / static_cast<double>(report.homes);
  return report;
}

}  // namespace sidet
