// ModelCache — the L2 of the tiered model store (DESIGN.md §18).
//
//   L1: the resident lane (GatewayRouter, bounded by the lane cap);
//   L2: this cache — one immutable ContextFeatureMemory per model
//       *fingerprint*, shared by every lane whose home uses that model;
//   L3: the on-disk blob (compact or JSON).
//
// Homes with identical device families reference the same file (or
// byte-identical files); the cache keys on the blob's fingerprint, so a hit
// hands out a memory whose models are shared_ptr copies into one resident
// forest — a fleet of 100k homes over a handful of model variants keeps a
// handful of forests in RAM, not 100k. Compact blobs are probed by header
// peek (no slab parsing on a hit); other formats fall back to a full load
// before the fingerprint is known.
//
// Thread-safe. The map only grows — entries are immutable and the number of
// distinct fingerprints is the number of model *variants* in the fleet
// (small by construction), not the number of homes.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/feature_memory.h"
#include "util/result.h"

namespace sidet {

class ModelCache {
 public:
  // The memory for the blob at `path`: from cache when its fingerprint is
  // already resident, loaded (and cached) otherwise. The returned copy
  // shares model storage with the cached original.
  Result<ContextFeatureMemory> Load(const std::string& path);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;          // full loads that went to disk
    std::size_t resident_models = 0;   // distinct fingerprints held
  };
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, ContextFeatureMemory> by_fingerprint_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sidet
