// ReplayEngine — deterministic re-judgement of recorded sessions.
//
// A flight-recorder session holds everything a verdict depended on: the
// instruction, the full sensor snapshot, and the time. Loading a session and
// pushing the same rows through `ContextIds::JudgeBatch` therefore either
// reproduces the recorded verdicts bit-for-bit (same model — the determinism
// guarantee the replay test suite enforces) or yields a verdict-diff report
// quantifying exactly what a *new* model would have done differently on real
// traffic: flips by direction, per-category confusion deltas, consistency
// drift, and latency comparison. That turns every model upgrade into a
// regression test over production history instead of a leap of faith.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.h"

namespace sidet {

// One verdict event, fully resolved against the session dictionaries.
struct RecordedEvent {
  std::int64_t at_seconds = 0;
  std::uint32_t instruction_id = 0;
  std::uint32_t snapshot_id = 0;  // kNoSnapshot for policy verdicts
  VerdictKind kind = VerdictKind::kNonSensitive;
  double probability = 0.0;   // model output for scored rows
  bool degraded = false;
  std::int32_t latency_us = -1;  // -1 for batch rows
  std::string side_reason;       // verbatim for error / policy rows
  std::string tier;              // guard tier for policy rows ("" for model rows)
  std::int64_t staleness_seconds = 0;  // snapshot staleness stamped live
  // Gateway request-trace id joined onto the verdict (0 = not served through
  // a tracing gateway). Resolves the server-side span tree for this decision
  // via the gateway's tail-exemplar store / `trace` wire command.
  std::uint64_t trace_id = 0;
  // Recorded top-k Saabas attribution (schema field index, signed
  // contribution) — present only when the session was recorded with
  // ContextIds::EnableAttributionCapture on. Field indices resolve through
  // ContextSchema::ForCategory(instruction.category).
  std::vector<std::pair<std::uint32_t, double>> attribution;

  bool allowed() const;
  double consistency() const;
  std::string reason() const;
};

struct RecordedSession {
  static constexpr std::uint32_t kNoSnapshot = 0xffffffffu;

  std::string model_fingerprint;
  std::vector<Instruction> instructions;   // indexed by dictionary id
  std::vector<SensorSnapshot> snapshots;   // indexed by dictionary id
  std::vector<RecordedEvent> events;       // recording order
  std::vector<BatchStageMicros> batches;
  std::uint64_t dropped = 0;

  // Expected audit record for an event — what ContextIds appended when the
  // verdict was made (and will append again on a faithful replay).
  AuditRecord EventAudit(const RecordedEvent& event) const;
};

// Parses NDJSON session text. Fails loudly on a missing header, a missing
// footer (truncated tail — the recorder died before Close()), a dangling
// dictionary reference, or any malformed line.
Result<RecordedSession> ParseSession(std::string_view text);
// Reads and parses a session file.
Result<RecordedSession> LoadSession(const std::string& path);

// A verdict that changed between recording and replay.
struct VerdictFlip {
  std::string instruction;
  std::string category;
  std::int64_t at_seconds = 0;
  bool recorded_allowed = false;
  bool replayed_allowed = false;
  double recorded_consistency = 0.0;
  double replayed_consistency = 0.0;
  // Per-feature attribution on both sides of the flip, resolved to schema
  // field names: `recorded_top` from the session's stamped notes (empty when
  // the recording ran without attribution capture), `replayed_top` from an
  // Explain() walk of the replay model over the recorded snapshot. Together
  // they answer *which features* the new model weighs differently.
  std::vector<std::pair<std::string, double>> recorded_top;
  std::vector<std::pair<std::string, double>> replayed_top;
};

struct CategoryDelta {
  std::string category;
  std::uint64_t rows = 0;
  std::uint64_t recorded_blocked = 0;
  std::uint64_t replayed_blocked = 0;
  std::uint64_t flips = 0;
};

struct ReplayReport {
  std::size_t events = 0;          // verdict events in the session
  std::size_t replayed = 0;        // rows re-run through JudgeBatch
  std::size_t skipped = 0;         // policy rows / missing snapshots
  std::size_t identical = 0;       // allowed + consistency + reason all equal
  std::size_t flips = 0;
  std::size_t allow_to_block = 0;
  std::size_t block_to_allow = 0;
  std::size_t consistency_changes = 0;  // same verdict, different probability
  std::size_t reason_mismatches = 0;
  double max_consistency_delta = 0.0;
  std::vector<CategoryDelta> categories;
  std::vector<VerdictFlip> flip_samples;  // capped at kMaxFlipSamples
  // Which features drove the sampled flips: per feature, the summed
  // (replayed − recorded) contribution across flip samples that carry
  // attribution on both sides, |delta| descending. Empty unless the session
  // was recorded with attribution capture and verdicts actually flipped.
  std::vector<std::pair<std::string, double>> flip_feature_deltas;
  std::int64_t recorded_wall_us = 0;  // batch walls + single-verdict latencies
  std::int64_t replay_wall_us = 0;
  std::string recorded_fingerprint;
  std::string replay_fingerprint;

  static constexpr std::size_t kMaxFlipSamples = 16;

  bool model_changed() const { return recorded_fingerprint != replay_fingerprint; }
  // True when every replayed verdict matched the recording exactly.
  bool bit_identical() const {
    return replayed > 0 && identical == replayed;
  }
  Json ToJson() const;
};

// Re-judges every replayable event (rows with a snapshot) through
// `ids.JudgeBatch` in recording order and diffs the outcome against the
// recording. `ids` would normally come from MakeReplayIds over a model_store
// load; any model works — the report says what changed.
ReplayReport Replay(const RecordedSession& session, ContextIds& ids, int threads = 1);

// Assembles a replay IDS around a persisted feature memory: the paper's
// Table III detector (the same configuration BuildIdsFromScratch ships), no
// collector — replay always judges against recorded snapshots.
ContextIds MakeReplayIds(ContextFeatureMemory memory);

}  // namespace sidet
