#include "replay/flight_recorder.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "replay/drift_monitor.h"
#include "telemetry/tracing.h"
#include "util/log.h"
#include "util/strings.h"

namespace sidet {

Result<VerdictKind> VerdictKindFromString(std::string_view name) {
  if (name == "non_sensitive") return VerdictKind::kNonSensitive;
  if (name == "unmodelled") return VerdictKind::kUnmodelled;
  if (name == "error") return VerdictKind::kError;
  if (name == "scored") return VerdictKind::kScored;
  if (name == "fail_open") return VerdictKind::kFailOpen;
  if (name == "fail_closed") return VerdictKind::kFailClosed;
  return Error("unknown verdict kind '" + std::string(name) + "'");
}

bool VerdictAllowed(VerdictKind kind, double probability) {
  switch (kind) {
    case VerdictKind::kNonSensitive:
    case VerdictKind::kUnmodelled:
    case VerdictKind::kFailOpen:
      return true;
    case VerdictKind::kError:
    case VerdictKind::kFailClosed:
      return false;
    case VerdictKind::kScored:
      return probability >= 0.5;
  }
  return false;
}

double VerdictConsistency(VerdictKind kind, double probability) {
  switch (kind) {
    case VerdictKind::kNonSensitive:
    case VerdictKind::kUnmodelled:
    case VerdictKind::kFailOpen:
      return 1.0;
    case VerdictKind::kError:
    case VerdictKind::kFailClosed:
      return 0.0;
    case VerdictKind::kScored:
      return probability;
  }
  return 0.0;
}

std::string VerdictReason(VerdictKind kind, double probability, const std::string& side) {
  // Must replicate the ContextIds format strings verbatim — the replay
  // determinism suite asserts string equality against live judgements.
  switch (kind) {
    case VerdictKind::kNonSensitive:
      return "not a sensitive instruction";
    case VerdictKind::kUnmodelled:
      return "category outside the modelled scope";
    case VerdictKind::kScored:
      return Format("context consistency %.3f %s threshold", probability,
                    probability >= 0.5 ? "meets" : "below");
    case VerdictKind::kError:
    case VerdictKind::kFailOpen:
    case VerdictKind::kFailClosed:
      return side;  // recorded verbatim (error context / policy reason)
  }
  return side;
}

Json FlightRecorderStats::ToJson() const {
  Json out = Json::Object();
  out["recorded"] = recorded;
  out["dropped"] = dropped;
  out["instructions"] = instructions;
  out["snapshots"] = snapshots;
  out["batches"] = batches;
  out["attributions"] = attributions;
  out["flushes"] = flushes;
  out["bytes_written"] = bytes_written;
  return out;
}

void FlightRecorder::Pending::Presize(std::size_t ring_capacity) {
  ids.resize(ring_capacity);
  trace_ids.resize(ring_capacity);
  rows = 0;
}

void FlightRecorder::Pending::Reset() {
  instructions.clear();
  snapshots.clear();
  rows = 0;      // ids/trace_ids keep their presized storage
  runs.clear();  // chunks release the batch vectors here, off the judge path
  chunks.clear();
  side_reasons.clear();
  attributions.clear();
  batches.clear();
  dropped = 0;
  staged_seq = 0;
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  opcode_to_id_.assign(std::size_t{1} << 16, kNoId);
  snap_cache_.assign(kSnapCacheSize, SnapCacheEntry{});
}

FlightRecorder::~FlightRecorder() { Close(); }

Status FlightRecorder::StartSession(const std::string& model_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Error("flight recorder session already started");
  out_.open(options_.path, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!out_.is_open()) {
    return Error("flight recorder cannot open '" + options_.path + "'");
  }
  Json header = Json::Object();
  header["type"] = "header";
  header["version"] = 1;
  header["model"] = model_fingerprint;
  header["ring"] = options_.ring_capacity;
  const std::string line = header.Dump() + "\n";
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  stats_.bytes_written += line.size();
  // The ring is preallocated once (both the active buffer and the spare the
  // flusher swaps in) so the judge hot path never reallocates or zero-fills.
  pending_.Presize(options_.ring_capacity);
  spare_.Presize(options_.ring_capacity);
  started_ = true;
  flusher_ = std::thread([this] { FlushLoop(); });
  return Status::Ok();
}

std::uint32_t FlightRecorder::InternInstruction(const Instruction& instruction) {
  std::uint32_t& slot = opcode_to_id_[instruction.opcode];
  if (slot == kNoId) {
    slot = static_cast<std::uint32_t>(instruction_store_.size());
    instruction_store_.push_back(instruction);
    pending_.instructions.emplace_back(slot, &instruction_store_.back());
    ++stats_.instructions;
  }
  return slot;
}

std::uint32_t FlightRecorder::InternSnapshot(const SensorSnapshot* snapshot) {
  if (snapshot == nullptr) return kNoId;
  const std::int64_t at = snapshot->time().seconds();
  if (snapshot == last_snapshot_ptr_ && at == last_snapshot_time_) return last_snapshot_id_;

  std::uint64_t h = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(snapshot)) >> 4;
  h ^= static_cast<std::uint64_t>(at) * 0x9e3779b97f4a7c15ull;
  h ^= h >> 32;
  SnapCacheEntry& cached = snap_cache_[static_cast<std::size_t>(h) & (kSnapCacheSize - 1)];
  if (cached.ptr == snapshot && cached.at == at) {
    last_snapshot_ptr_ = snapshot;
    last_snapshot_time_ = at;
    last_snapshot_id_ = cached.id;
    return cached.id;
  }

  const std::pair<const void*, std::int64_t> key{snapshot, at};
  const auto it = snapshot_ids_.find(key);
  std::uint32_t id = kNoId;
  if (it != snapshot_ids_.end()) {
    // Guard against address reuse: a new snapshot allocated where an old one
    // lived (same time) must not alias the old recording. The full compare
    // only runs when a (pointer, time) binding is first established or falls
    // out of the direct-mapped cache, so it never dominates staging.
    const SensorSnapshot& known = snapshot_store_[it->second];
    const auto& a = known.entries();
    const auto& b = snapshot->entries();
    bool same = a.size() == b.size();
    for (std::size_t i = 0; same && i < a.size(); ++i) {
      same = a[i].key == b[i].key && a[i].type == b[i].type && a[i].value == b[i].value;
    }
    if (same) {
      id = it->second;
    }
  }
  if (id == kNoId) {
    if (snapshot_store_.size() >= options_.max_snapshots) {
      // Keep recording verdicts, just without the context payload; the
      // replay loader skips rows whose snapshot is unavailable.
      cached = {snapshot, at, kNoId};
      last_snapshot_ptr_ = snapshot;
      last_snapshot_time_ = at;
      last_snapshot_id_ = kNoId;
      return kNoId;
    }
    id = static_cast<std::uint32_t>(snapshot_store_.size());
    snapshot_store_.push_back(*snapshot);
    snapshot_ids_[key] = id;
    pending_.snapshots.emplace_back(id, &snapshot_store_.back());
    ++stats_.snapshots;
  }
  cached = {snapshot, at, id};
  last_snapshot_ptr_ = snapshot;
  last_snapshot_time_ = at;
  last_snapshot_id_ = id;
  return id;
}

void FlightRecorder::OnVerdict(const Instruction& instruction, const SensorSnapshot* snapshot,
                               SimTime at, VerdictKind kind, const Judgement& judgement,
                               bool degraded, std::int64_t latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || closed_ || RingFull()) {
    ++pending_.dropped;
    ++stats_.dropped;
    return;
  }
  const std::uint32_t row = static_cast<std::uint32_t>(pending_.rows++);
  pending_.ids[row] = InternInstruction(instruction);
  pending_.trace_ids[row] = 0;  // single verdicts arrive outside the gateway
  BatchChunk chunk;
  chunk.rows = 1;
  chunk.kinds.push_back(kind);
  chunk.probs.push_back(judgement.consistency);
  pending_.chunks.push_back(std::move(chunk));
  // A single verdict is its own 1-row run: that is where the fields that
  // only exist per single judgement (latency, degraded) live.
  pending_.runs.push_back({at.seconds(), InternSnapshot(snapshot), /*rows=*/1,
                           static_cast<std::int32_t>(latency_us), degraded});
  const bool fail_kind = kind == VerdictKind::kError || kind == VerdictKind::kFailOpen ||
                         kind == VerdictKind::kFailClosed;
  if (fail_kind || !judgement.tier.empty() || judgement.staleness_seconds != 0) {
    // Fail rows need the verbatim reason; any row may carry the tier label
    // and staleness stamp the live path attaches (replay reconstructs the
    // audit record bit-for-bit from these).
    pending_.side_reasons.push_back({row, fail_kind ? judgement.reason : std::string(),
                                     judgement.tier, judgement.staleness_seconds});
  }
  ++stats_.recorded;
  // No wake: the flusher drains on its own cadence (or on Flush/Close). A
  // notify here would boot the parked flusher awake once per judgement —
  // on a single-core host that context switch dwarfs the staging itself.
  pending_.staged_seq = ++staged_seq_;
}

void FlightRecorder::OnBatch(std::span<const JudgeRequest> requests,
                             std::vector<VerdictKind> kinds, std::vector<double> probabilities,
                             std::vector<std::string> errors, const BatchStageMicros& stages) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || closed_) {
    pending_.dropped += requests.size();
    stats_.dropped += requests.size();
    return;
  }
  // The kinds/probabilities vectors are adopted wholesale (they are the
  // batch's own scratch, moved in by the IDS), so the only per-row staging
  // work is resolving the instruction id. That runs in an inner loop scoped
  // to one (snapshot, time) run, keeping the non-inlinable snapshot
  // interning call out of the row loop — the layout and loop shape are what
  // keep recorder-attached JudgeBatch inside the <2% overhead budget.
  const std::size_t base = pending_.rows;
  const std::size_t room = options_.ring_capacity > base ? options_.ring_capacity - base : 0;
  const std::size_t take = requests.size() < room ? requests.size() : room;
  if (take > 0) {
    std::uint32_t* ids = pending_.ids.data() + base;
    std::uint64_t* trace_ids = pending_.trace_ids.data() + base;
    const std::uint32_t* opcode_table = opcode_to_id_.data();
    std::size_t i = 0;
    while (i < take) {
      const SensorSnapshot* run_snapshot = requests[i].snapshot;
      const std::int64_t run_at = requests[i].time.seconds();
      const std::uint32_t snapshot_id = InternSnapshot(run_snapshot);
      std::size_t j = i;
      for (; j < take && requests[j].snapshot == run_snapshot &&
             requests[j].time.seconds() == run_at;
           ++j) {
        // Inlined InternInstruction fast path: after the first sighting of
        // an opcode, a row costs one table load and one store.
        const Instruction& instruction = *requests[j].instruction;
        std::uint32_t id = opcode_table[instruction.opcode];
        if (id == kNoId) id = InternInstruction(instruction);
        ids[j] = id;
        trace_ids[j] = requests[j].trace_id;
        if (kinds[j] == VerdictKind::kError) {
          // Matches the batch verdict loop's reason verbatim. Batch rows
          // never carry tier/staleness (the tier guards the live path only).
          pending_.side_reasons.push_back({static_cast<std::uint32_t>(base + j),
                                           "judgement error: " + errors[j], std::string(), 0});
        }
      }
      pending_.runs.push_back(
          {run_at, snapshot_id, static_cast<std::uint32_t>(j - i), -1, false});
      i = j;
    }
    pending_.rows = base + take;
    pending_.chunks.push_back({take, std::move(kinds), std::move(probabilities)});
  }
  stats_.recorded += take;
  const std::uint64_t lost = requests.size() - take;
  pending_.dropped += lost;
  stats_.dropped += lost;
  pending_.batches.push_back(stages);
  ++stats_.batches;
  pending_.staged_seq = ++staged_seq_;  // no wake — see OnVerdict
  // Open the attribution join window: the notes following this batch (if
  // capture is on) index rows relative to `base`, and the join is sound only
  // while this staging op is still the buffer's newest.
  last_batch_seq_ = staged_seq_;
  last_batch_base_ = base;
  last_batch_take_ = take;
}

void FlightRecorder::OnBatchAttributions(std::span<const AttributionNote> notes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || closed_ || notes.empty()) return;
  // The notes belong to the immediately preceding OnBatch. If anything else
  // staged since — another lane's verdict, or the flusher swapped the buffer
  // out — the row join is unsound; drop rather than mis-attribute. The
  // window reopens at the next batch, so losses are bounded to the race.
  if (last_batch_seq_ == 0 || pending_.staged_seq != last_batch_seq_) return;
  for (const AttributionNote& note : notes) {
    if (note.row >= last_batch_take_) continue;  // ring-clipped tail rows
    AttrNote staged;
    staged.row = static_cast<std::uint32_t>(last_batch_base_ + note.row);
    staged.top.assign(note.top.begin(), note.top.end());
    pending_.attributions.push_back(std::move(staged));
    ++stats_.attributions;
  }
}

void FlightRecorder::AppendVerdictLine(std::string& out, const Pending& batch, const Run& run,
                                       std::size_t row, VerdictKind kind, double probability,
                                       std::size_t& next_side_reason,
                                       std::size_t& next_attribution) const {
  out += "{\"type\":\"verdict\",\"at\":";
  out += std::to_string(run.at_seconds);
  out += ",\"i\":";
  out += std::to_string(batch.ids[row]);
  if (run.snapshot_id != kNoId) {
    out += ",\"s\":";
    out += std::to_string(run.snapshot_id);
  }
  out += ",\"k\":\"";
  out += ToString(kind);
  out += "\"";
  if (kind == VerdictKind::kScored) {
    // %.17g round-trips the double exactly through the JSON parser, keeping
    // replayed consistency values bit-identical.
    out += Format(",\"p\":%.17g", probability);
  }
  if (run.latency_us >= 0) {
    out += ",\"lat_us\":";
    out += std::to_string(run.latency_us);
  }
  if (run.degraded) out += ",\"deg\":true";
  if (batch.trace_ids[row] != 0) {
    // The gateway trace id joins this verdict to its server-side span tree
    // (tail exemplar / trace wire command). Untraced sessions stay
    // byte-identical to the pre-trace format.
    out += ",\"tid\":\"";
    out += FormatTraceId(batch.trace_ids[row]);
    out += "\"";
  }
  // Side notes are staged with ascending row indices, so a single merge
  // cursor pairs them back up with their rows.
  if (next_side_reason < batch.side_reasons.size() &&
      batch.side_reasons[next_side_reason].row == row) {
    const SideNote& note = batch.side_reasons[next_side_reason];
    if (!note.reason.empty()) {
      out += ",\"reason\":";
      out += JsonQuote(note.reason);
    }
    if (!note.tier.empty()) {
      out += ",\"tier\":";
      out += JsonQuote(note.tier);
    }
    if (note.staleness_seconds != 0) {
      out += ",\"stale\":";
      out += std::to_string(note.staleness_seconds);
    }
    ++next_side_reason;
  }
  // Attribution notes merge the same way: staged ascending, one cursor.
  // %.17g keeps the contributions exact through a JSON round trip, so a
  // replay diff against re-derived attributions is bit-meaningful.
  if (next_attribution < batch.attributions.size() &&
      batch.attributions[next_attribution].row == row) {
    const AttrNote& note = batch.attributions[next_attribution];
    out += ",\"a\":[";
    for (std::size_t k = 0; k < note.top.size(); ++k) {
      if (k > 0) out += ',';
      out += '[';
      out += std::to_string(note.top[k].first);
      out += Format(",%.17g]", note.top[k].second);
    }
    out += ']';
    ++next_attribution;
  }
  out += "}\n";
}

void FlightRecorder::WriteOut(Pending batch, bool count_flush) {
  if (batch.empty()) {
    const std::uint64_t seq = batch.staged_seq;
    std::lock_guard<std::mutex> lock(mu_);
    if (batch.ids.size() >= spare_.ids.size()) {
      batch.Reset();
      spare_ = std::move(batch);
    }
    if (seq > written_seq_) written_seq_ = seq;
    flushed_cv_.notify_all();
    return;
  }
  std::string out;
  out.reserve(batch.rows * 96 + batch.snapshots.size() * 512 + 256);
  // Dictionary lines precede the verdicts that reference them; entries are
  // staged in the same lock hold as their first referencing verdict, so ids
  // are always defined upstream of use.
  for (const auto& [id, instruction] : batch.instructions) {
    Json line = Json::Object();
    line["type"] = "instruction";
    line["id"] = static_cast<std::int64_t>(id);
    line["opcode"] = static_cast<std::int64_t>(instruction->opcode);
    line["name"] = instruction->name;
    line["handler"] = instruction->handler;
    line["category"] = std::string(ToString(instruction->category));
    line["kind"] = std::string(ToString(instruction->kind));
    line["description"] = instruction->description;
    out += line.Dump();
    out += '\n';
    // Ids are dense and first serialized here, in order, so the mirror index
    // the drift tee reads always lines up (flusher/closing thread only).
    categories_by_id_.push_back(instruction->category);
  }
  for (const auto& [id, snapshot] : batch.snapshots) {
    Json line = Json::Object();
    line["type"] = "snapshot";
    line["id"] = static_cast<std::int64_t>(id);
    line["data"] = snapshot->ToJson();
    out += line.Dump();
    out += '\n';
  }
  // Runs and chunks both cover rows [0, batch.rows) in staging order, so one
  // pass with two cursors reunites each row with its context (run) and its
  // kind/probability (chunk).
  std::size_t row = 0;
  std::size_t next_side_reason = 0;
  std::size_t next_attribution = 0;
  std::size_t chunk_idx = 0;
  std::size_t chunk_off = 0;
  for (const Run& run : batch.runs) {
    for (std::uint32_t r = 0; r < run.rows; ++r, ++row) {
      while (chunk_off >= batch.chunks[chunk_idx].rows) {
        ++chunk_idx;
        chunk_off = 0;
      }
      const BatchChunk& chunk = batch.chunks[chunk_idx];
      AppendVerdictLine(out, batch, run, row, chunk.kinds[chunk_off], chunk.probs[chunk_off],
                        next_side_reason, next_attribution);
      ++chunk_off;
    }
  }
  for (const BatchStageMicros& stages : batch.batches) {
    Json line = Json::Object();
    line["type"] = "batch";
    line["rows"] = static_cast<std::int64_t>(stages.rows);
    line["classify_us"] = stages.classify_us;
    line["score_us"] = stages.score_us;
    line["verdict_us"] = stages.verdict_us;
    line["wall_us"] = stages.wall_us;
    out += line.Dump();
    out += '\n';
  }
  if (batch.dropped > 0) {
    out += "{\"type\":\"drops\",\"count\":";
    out += std::to_string(batch.dropped);
    out += "}\n";
  }
  out_.write(out.data(), static_cast<std::streamsize>(out.size()));
  out_.flush();

  if (drift_ != nullptr) {
    for (const auto& [id, snapshot] : batch.snapshots) drift_->ObserveSnapshot(*snapshot);
    std::size_t drift_row = 0;
    for (const BatchChunk& chunk : batch.chunks) {
      for (std::size_t k = 0; k < chunk.rows; ++k, ++drift_row) {
        drift_->ObserveVerdict(categories_by_id_[batch.ids[drift_row]],
                               VerdictAllowed(chunk.kinds[k], chunk.probs[k]));
      }
    }
  }

  const std::uint64_t seq = batch.staged_seq;
  std::lock_guard<std::mutex> lock(mu_);
  // Recycle the drained staging buffers so the next swap hands the hot path
  // presized arrays again.
  if (batch.ids.size() >= spare_.ids.size()) {
    batch.Reset();
    spare_ = std::move(batch);
  }
  stats_.bytes_written += out.size();
  if (count_flush) ++stats_.flushes;
  if (seq > written_seq_) written_seq_ = seq;
  flushed_cv_.notify_all();
}

void FlightRecorder::FlushLoop() {
  const auto interval = std::chrono::milliseconds(options_.flush_interval_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    wake_cv_.wait_for(lock, interval, [&] { return stop_ || flush_requested_; });
    const bool stopping = stop_;
    flush_requested_ = false;
    Pending batch = std::exchange(pending_, std::move(spare_));
    spare_ = Pending{};
    lock.unlock();
    WriteOut(std::move(batch), /*count_flush=*/true);
    lock.lock();
    if (stopping) return;
  }
}

void FlightRecorder::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!started_ || closed_) return;
  const std::uint64_t target = staged_seq_;
  flush_requested_ = true;
  wake_cv_.notify_one();
  flushed_cv_.wait(lock, [&] { return written_seq_ >= target || closed_; });
}

void FlightRecorder::Close() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_ || closed_) return;
    closed_ = true;
    stop_ = true;
    wake_cv_.notify_one();
  }
  flusher_.join();
  // The flusher drained everything staged before stop; anything the loop
  // raced past is still in pending_ (staged between its swap and our flag),
  // so take one final pass without the thread.
  Pending tail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tail = std::exchange(pending_, std::move(spare_));
    spare_ = Pending{};
  }
  WriteOut(std::move(tail), /*count_flush=*/false);

  FlightRecorderStats snapshot = stats();
  Json footer = Json::Object();
  footer["type"] = "footer";
  footer["recorded"] = snapshot.recorded;
  footer["dropped"] = snapshot.dropped;
  footer["snapshots"] = snapshot.snapshots;
  footer["flushes"] = snapshot.flushes;
  const std::string line = footer.Dump() + "\n";
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.bytes_written += line.size();
    flushed_cv_.notify_all();
  }
  if (snapshot.dropped > 0) {
    LogWarn(Format("flight recorder: %llu verdicts dropped (ring capacity %zu)",
                   static_cast<unsigned long long>(snapshot.dropped),
                   options_.ring_capacity));
  }
}

FlightRecorderStats FlightRecorder::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sidet
