#include "replay/drift_monitor.h"

#include <cmath>

#include "replay/flight_recorder.h"
#include "replay/replay_engine.h"
#include "telemetry/exporters.h"
#include "telemetry/timeseries.h"

namespace sidet {

Json DriftBaseline::ToJson() const {
  Json out = Json::Object();
  Json cats = Json::Object();
  for (const auto& [category, base] : categories) {
    Json entry = Json::Object();
    entry["allow_rate"] = base.allow_rate;
    entry["support"] = base.support;
    cats[std::string(ToString(category))] = std::move(entry);
  }
  out["categories"] = std::move(cats);
  Json feats = Json::Object();
  for (const auto& [sensor, base] : features) {
    Json entry = Json::Object();
    entry["mean"] = base.mean;
    entry["stddev"] = base.stddev;
    entry["support"] = base.support;
    feats[std::string(ToString(sensor))] = std::move(entry);
  }
  out["features"] = std::move(feats);
  return out;
}

Result<DriftBaseline> DriftBaseline::FromJson(const Json& json) {
  if (!json.is_object()) return Error("drift baseline must be a JSON object");
  DriftBaseline baseline;
  if (const Json* cats = json.find("categories"); cats != nullptr && cats->is_object()) {
    for (const auto& [name, entry] : cats->as_object()) {
      Result<DeviceCategory> category = DeviceCategoryFromString(name);
      if (!category.ok()) return category.error().context("drift baseline");
      CategoryBaseline base;
      base.allow_rate = entry.number_or("allow_rate", 0.0);
      base.support = static_cast<std::uint64_t>(entry.number_or("support", 0));
      baseline.categories[category.value()] = base;
    }
  }
  if (const Json* feats = json.find("features"); feats != nullptr && feats->is_object()) {
    for (const auto& [name, entry] : feats->as_object()) {
      Result<SensorType> sensor = SensorTypeFromString(name);
      if (!sensor.ok()) return sensor.error().context("drift baseline");
      FeatureBaseline base;
      base.mean = entry.number_or("mean", 0.0);
      base.stddev = entry.number_or("stddev", 0.0);
      base.support = static_cast<std::uint64_t>(entry.number_or("support", 0));
      baseline.features[sensor.value()] = base;
    }
  }
  return baseline;
}

DriftBaseline BaselineFromMemory(const ContextFeatureMemory& memory) {
  DriftBaseline baseline;
  for (const DeviceCategory category : memory.Trained()) {
    const TrainedDeviceModel* model = memory.Model(category);
    if (model == nullptr) continue;
    const ConfusionMatrix& confusion = model->holdout_metrics.confusion;
    const long total = confusion.total();
    if (total <= 0) continue;
    CategoryBaseline base;
    base.allow_rate =
        static_cast<double>(confusion.tp + confusion.fn) / static_cast<double>(total);
    base.support = static_cast<std::uint64_t>(total);
    baseline.categories[category] = base;
  }
  return baseline;
}

DriftBaseline BaselineFromSession(const RecordedSession& session) {
  DriftBaseline baseline;
  struct Stream {
    std::uint64_t observed = 0;
    std::uint64_t allowed = 0;
  };
  std::map<DeviceCategory, Stream> streams;
  for (const RecordedEvent& event : session.events) {
    Stream& stream = streams[session.instructions[event.instruction_id].category];
    ++stream.observed;
    if (event.allowed()) ++stream.allowed;
  }
  for (const auto& [category, stream] : streams) {
    CategoryBaseline base;
    base.allow_rate = static_cast<double>(stream.allowed) / static_cast<double>(stream.observed);
    base.support = stream.observed;
    baseline.categories[category] = base;
  }

  struct Welford {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
  };
  std::array<Welford, kSensorTypeCount> features{};
  for (const SensorSnapshot& snapshot : session.snapshots) {
    for (const SensorSnapshot::Entry& entry : snapshot.entries()) {
      Welford& w = features[static_cast<std::size_t>(entry.type)];
      ++w.count;
      const double delta = entry.value.number - w.mean;
      w.mean += delta / static_cast<double>(w.count);
      w.m2 += delta * (entry.value.number - w.mean);
    }
  }
  for (std::size_t i = 0; i < features.size(); ++i) {
    const Welford& w = features[i];
    if (w.count == 0) continue;
    FeatureBaseline base;
    base.mean = w.mean;
    base.stddev = w.count > 1 ? std::sqrt(w.m2 / static_cast<double>(w.count - 1)) : 0.0;
    base.support = w.count;
    baseline.features[static_cast<SensorType>(i)] = base;
  }
  return baseline;
}

Json DriftReport::ToJson() const {
  Json out = Json::Object();
  out["verdicts"] = verdicts;
  out["snapshots"] = snapshots;
  out["max_rate_delta"] = max_rate_delta;
  out["max_feature_z"] = max_feature_z;
  Json cats = Json::Array();
  for (const CategoryDrift& drift : categories) {
    Json entry = Json::Object();
    entry["category"] = drift.category;
    entry["baseline_rate"] = drift.baseline_rate;
    entry["observed_rate"] = drift.observed_rate;
    entry["delta"] = drift.delta;
    entry["observed"] = drift.observed;
    cats.as_array().push_back(std::move(entry));
  }
  out["categories"] = std::move(cats);
  Json feats = Json::Array();
  for (const FeatureDrift& drift : features) {
    Json entry = Json::Object();
    entry["sensor"] = drift.sensor;
    entry["baseline_mean"] = drift.baseline_mean;
    entry["observed_mean"] = drift.observed_mean;
    entry["z_score"] = drift.z_score;
    entry["observed"] = drift.observed;
    feats.as_array().push_back(std::move(entry));
  }
  out["features"] = std::move(feats);
  return out;
}

DriftMonitor::DriftMonitor(DriftBaseline baseline) : baseline_(std::move(baseline)) {}

void DriftMonitor::ObserveVerdict(DeviceCategory category, bool allowed) {
  std::lock_guard<std::mutex> lock(mu_);
  CategoryStream& stream = verdicts_[category];
  ++stream.observed;
  if (allowed) ++stream.allowed;
  ++verdict_count_;
}

void DriftMonitor::ObserveSnapshot(const SensorSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SensorSnapshot::Entry& entry : snapshot.entries()) {
    Welford& w = features_[static_cast<std::size_t>(entry.type)];
    ++w.count;
    const double delta = entry.value.number - w.mean;
    w.mean += delta / static_cast<double>(w.count);
    w.m2 += delta * (entry.value.number - w.mean);
  }
  ++snapshot_count_;
}

void DriftMonitor::AttachTelemetry(MetricsRegistry* registry) { registry_ = registry; }

DriftReport DriftMonitor::Evaluate() {
  std::lock_guard<std::mutex> lock(mu_);
  DriftReport report;
  report.verdicts = verdict_count_;
  report.snapshots = snapshot_count_;

  for (const auto& [category, stream] : verdicts_) {
    CategoryDrift drift;
    drift.category = std::string(ToString(category));
    drift.observed = stream.observed;
    drift.observed_rate =
        static_cast<double>(stream.allowed) / static_cast<double>(stream.observed);
    const auto it = baseline_.categories.find(category);
    if (it != baseline_.categories.end() && it->second.support > 0) {
      drift.baseline_rate = it->second.allow_rate;
      drift.delta = drift.observed_rate - drift.baseline_rate;
    } else {
      // No training reference for this family — report the stream, flag no
      // drift rather than inventing a zero baseline.
      drift.baseline_rate = drift.observed_rate;
      drift.delta = 0.0;
    }
    if (std::fabs(drift.delta) > report.max_rate_delta) {
      report.max_rate_delta = std::fabs(drift.delta);
    }
    report.categories.push_back(std::move(drift));
  }

  for (std::size_t i = 0; i < features_.size(); ++i) {
    const Welford& w = features_[i];
    if (w.count == 0) continue;
    const SensorType sensor = static_cast<SensorType>(i);
    FeatureDrift drift;
    drift.sensor = std::string(ToString(sensor));
    drift.observed = w.count;
    drift.observed_mean = w.mean;
    const auto it = baseline_.features.find(sensor);
    if (it != baseline_.features.end() && it->second.stddev > 0.0) {
      drift.baseline_mean = it->second.mean;
      drift.z_score = std::fabs(w.mean - it->second.mean) / it->second.stddev;
    } else {
      // Degenerate baseline (constant feature or no reference): comparable
      // only by mean, so z stays 0 and the mean delta speaks for itself.
      drift.baseline_mean = it != baseline_.features.end() ? it->second.mean : w.mean;
      drift.z_score = 0.0;
    }
    if (drift.z_score > report.max_feature_z) report.max_feature_z = drift.z_score;
    report.features.push_back(std::move(drift));
  }

  if (registry_ != nullptr) {
    for (const CategoryDrift& drift : report.categories) {
      const std::string labels = PrometheusLabel("category", drift.category);
      registry_
          ->GetGauge("sidet_drift_allow_rate", labels,
                     "Observed per-category allow rate")
          ->Set(drift.observed_rate);
      registry_
          ->GetGauge("sidet_drift_rate_delta", labels,
                     "Allow-rate delta vs training baseline")
          ->Set(drift.delta);
    }
    for (const FeatureDrift& drift : report.features) {
      registry_
          ->GetGauge("sidet_drift_feature_z", PrometheusLabel("sensor", drift.sensor),
                     "Feature-mean z-score vs training baseline")
          ->Set(drift.z_score);
    }
    registry_
        ->GetGauge("sidet_drift_max_rate_delta", "",
                   "Largest per-category allow-rate drift")
        ->Set(report.max_rate_delta);
    registry_
        ->GetGauge("sidet_drift_max_feature_z", "", "Largest sensor-feature z-score")
        ->Set(report.max_feature_z);
  }
  return report;
}

namespace {

// Reduces one retained gauge trail to a windowed |value| verdict.
DriftTrendSeries TrendFromTrail(const TimeSeriesStore& store, const std::string& metric,
                                const std::string& labels, const std::string& label,
                                std::int64_t start_ms, std::int64_t end_ms,
                                double threshold) {
  DriftTrendSeries trend;
  trend.label = label;
  const RangeResult trail = store.Query({metric, labels, start_ms, end_ms});
  trend.points = trail.points.size();
  if (trail.points.empty()) return trend;
  double abs_sum = 0.0;
  for (const SeriesPoint& point : trail.points) {
    const double magnitude = std::max(std::fabs(point.min), std::fabs(point.max));
    trend.window_max = std::max(trend.window_max, magnitude);
    abs_sum += std::fabs(point.last);
  }
  trend.current = trail.last;
  trend.window_avg = abs_sum / static_cast<double>(trail.points.size());
  trend.sustained = trend.points >= 2 && trend.window_avg > threshold;
  return trend;
}

}  // namespace

Json DriftTrendReport::ToJson() const {
  Json out = Json::Object();
  out["window_seconds"] = window_seconds;
  out["rate_delta_threshold"] = rate_delta_threshold;
  out["feature_z_threshold"] = feature_z_threshold;
  out["sustained_drift"] = sustained_drift;
  const auto render = [](const std::vector<DriftTrendSeries>& trends, std::string_view key) {
    Json array = Json::Array();
    for (const DriftTrendSeries& trend : trends) {
      Json entry = Json::Object();
      entry[std::string(key)] = trend.label;
      entry["current"] = trend.current;
      entry["window_avg"] = trend.window_avg;
      entry["window_max"] = trend.window_max;
      entry["points"] = static_cast<std::int64_t>(trend.points);
      entry["sustained"] = trend.sustained;
      array.as_array().push_back(std::move(entry));
    }
    return array;
  };
  out["rate_deltas"] = render(rate_deltas, "category");
  out["feature_z"] = render(feature_z, "sensor");
  return out;
}

DriftTrendReport DriftMonitor::EvaluateTrend(const TimeSeriesStore& store,
                                             std::int64_t window_seconds,
                                             std::int64_t now_ms,
                                             double rate_delta_threshold,
                                             double feature_z_threshold) const {
  DriftTrendReport report;
  report.window_seconds = window_seconds;
  report.rate_delta_threshold = rate_delta_threshold;
  report.feature_z_threshold = feature_z_threshold;
  const std::int64_t start_ms = now_ms - window_seconds * 1000;

  // Snapshot the observed streams under the lock, query the store outside it
  // (the store has its own mutex; never holding both avoids any ordering).
  std::vector<std::string> categories;
  std::vector<std::string> sensors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    categories.reserve(verdicts_.size());
    for (const auto& [category, stream] : verdicts_) {
      categories.emplace_back(ToString(category));
    }
    for (std::size_t i = 0; i < features_.size(); ++i) {
      if (features_[i].count == 0) continue;
      sensors.emplace_back(ToString(static_cast<SensorType>(i)));
    }
  }

  for (const std::string& category : categories) {
    DriftTrendSeries trend = TrendFromTrail(
        store, "sidet_drift_rate_delta", PrometheusLabel("category", category), category,
        start_ms, now_ms, rate_delta_threshold);
    report.sustained_drift = report.sustained_drift || trend.sustained;
    report.rate_deltas.push_back(std::move(trend));
  }
  for (const std::string& sensor : sensors) {
    DriftTrendSeries trend = TrendFromTrail(
        store, "sidet_drift_feature_z", PrometheusLabel("sensor", sensor), sensor,
        start_ms, now_ms, feature_z_threshold);
    report.sustained_drift = report.sustained_drift || trend.sustained;
    report.feature_z.push_back(std::move(trend));
  }
  return report;
}

std::vector<AlertState> AlertEvaluator::Evaluate(MetricsRegistry& registry) const {
  const auto resolve = [&registry](const std::string& metric, const std::string& labels,
                                   double quantile, double* value) {
    return registry.Find(metric, labels, [&](const MetricsRegistry::MetricView& view) {
      switch (view.kind) {
        case MetricKind::kCounter:
          *value = static_cast<double>(view.counter->Value());
          break;
        case MetricKind::kGauge:
          *value = view.gauge->Value();
          break;
        case MetricKind::kHistogram:
          *value = view.histogram->Quantile(quantile);
          break;
      }
    });
  };

  std::vector<AlertState> states;
  states.reserve(rules_.size());
  for (const AlertRule& rule : rules_) {
    AlertState state;
    state.name = rule.name;
    double value = 0.0;
    state.has_data = resolve(rule.metric, rule.labels, rule.quantile, &value);
    if (state.has_data && !rule.denominator_metric.empty()) {
      double denominator = 0.0;
      state.has_data = resolve(rule.denominator_metric, rule.denominator_labels,
                               rule.quantile, &denominator) &&
                       denominator > 0.0;
      if (state.has_data) value /= denominator;
    }
    state.value = state.has_data ? value : 0.0;
    state.firing = state.has_data &&
                   (rule.comparison == AlertRule::Comparison::kAbove
                        ? state.value > rule.threshold
                        : state.value < rule.threshold);
    registry
        .GetGauge("sidet_alert_firing", PrometheusLabel("alert", rule.name),
                  rule.description)
        ->Set(state.firing ? 1.0 : 0.0);
    states.push_back(std::move(state));
  }
  return states;
}

Json AlertEvaluator::StatesJson(const std::vector<AlertState>& states) {
  Json out = Json::Array();
  for (const AlertState& state : states) {
    Json entry = Json::Object();
    entry["alert"] = state.name;
    entry["value"] = state.value;
    entry["has_data"] = state.has_data;
    entry["firing"] = state.firing;
    out.as_array().push_back(std::move(entry));
  }
  return out;
}

std::vector<AlertRule> DefaultIdsAlerts() {
  std::vector<AlertRule> rules;
  {
    AlertRule rule;
    rule.name = "high_block_ratio";
    rule.description = "More than half of all judgements blocked";
    rule.metric = "sidet_ids_blocked_total";
    rule.denominator_metric = "sidet_ids_judged_total";
    rule.threshold = 0.5;
    rules.push_back(std::move(rule));
  }
  {
    AlertRule rule;
    rule.name = "judgement_errors";
    rule.description = "Judgement failures occurred (missing model/sensor)";
    rule.metric = "sidet_ids_errors_total";
    rule.threshold = 0.0;
    rules.push_back(std::move(rule));
  }
  {
    AlertRule rule;
    rule.name = "fail_closed_outages";
    rule.description = "Instructions blocked without judging (context outage)";
    rule.metric = "sidet_ids_blocked_on_outage_total";
    rule.threshold = 0.0;
    rules.push_back(std::move(rule));
  }
  {
    AlertRule rule;
    rule.name = "judge_latency_p99";
    rule.description = "p99 end-to-end judgement latency above 5ms";
    rule.metric = "sidet_ids_judge_seconds";
    rule.quantile = 0.99;
    rule.threshold = 0.005;
    rules.push_back(std::move(rule));
  }
  {
    AlertRule rule;
    rule.name = "verdict_rate_drift";
    rule.description = "Per-category allow rate drifted >15% from baseline";
    rule.metric = "sidet_drift_max_rate_delta";
    rule.threshold = 0.15;
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::vector<AlertRule> SloBurnAlerts(const std::vector<std::string>& slo_names) {
  std::vector<AlertRule> rules;
  rules.reserve(slo_names.size());
  for (const std::string& name : slo_names) {
    AlertRule rule;
    rule.name = "slo_burn_" + name;
    rule.description = "SLO '" + name + "' burning error budget (multi-window)";
    rule.metric = "sidet_slo_firing";
    rule.labels = PrometheusLabel("slo", name);
    rule.threshold = 0.5;  // gauge is 0/1; fire on 1
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace sidet
