// DriftMonitor + AlertEvaluator — "is production still the distribution we
// trained on, and should a human look at it?"
//
// The drift monitor keeps streaming statistics of what the IDS actually
// sees — per-category verdict (allow) rates and per-sensor-type feature
// moments (Welford) — and compares them against a baseline captured from the
// training corpus holdout or from a reference recorded session. Deltas and
// z-scores export as `sidet_drift_*` gauges.
//
// The alert evaluator is the declarative layer on top: threshold and ratio
// rules evaluated against any MetricsRegistry (counters, gauges, histogram
// quantiles). Each evaluation writes `sidet_alert_firing{alert="..."}` 0/1
// gauges back into the registry, so firing alerts surface through the
// existing Prometheus/JSON exporters with no new plumbing.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/feature_memory.h"
#include "sensors/snapshot.h"
#include "telemetry/metrics.h"

namespace sidet {

struct RecordedSession;
class TimeSeriesStore;

struct CategoryBaseline {
  double allow_rate = 0.0;  // legitimate-context fraction
  std::uint64_t support = 0;
};

struct FeatureBaseline {
  double mean = 0.0;
  double stddev = 0.0;
  std::uint64_t support = 0;
};

struct DriftBaseline {
  std::map<DeviceCategory, CategoryBaseline> categories;
  std::map<SensorType, FeatureBaseline> features;

  Json ToJson() const;
  static Result<DriftBaseline> FromJson(const Json& json);
};

// Category allow rates from the trained memory's holdout confusion matrices:
// the positive class is "legitimate context", so (tp + fn) / total is the
// fraction of contexts the training distribution considered legitimate.
// (The memory holds no raw sensor rows, so feature baselines stay empty.)
DriftBaseline BaselineFromMemory(const ContextFeatureMemory& memory);
// Both verdict-rate and sensor-feature baselines from a recorded session —
// the "yesterday's traffic" reference.
DriftBaseline BaselineFromSession(const RecordedSession& session);

struct CategoryDrift {
  std::string category;
  double baseline_rate = 0.0;
  double observed_rate = 0.0;
  double delta = 0.0;  // observed - baseline
  std::uint64_t observed = 0;
};

struct FeatureDrift {
  std::string sensor;
  double baseline_mean = 0.0;
  double observed_mean = 0.0;
  double z_score = 0.0;  // |observed - baseline| / baseline stddev
  std::uint64_t observed = 0;
};

struct DriftReport {
  std::vector<CategoryDrift> categories;
  std::vector<FeatureDrift> features;
  std::uint64_t verdicts = 0;
  std::uint64_t snapshots = 0;

  // Largest absolute allow-rate delta / feature z-score observed.
  double max_rate_delta = 0.0;
  double max_feature_z = 0.0;

  Json ToJson() const;
};

// One gauge trail judged over a retention window instead of at an instant.
struct DriftTrendSeries {
  std::string label;       // category or sensor name
  double current = 0.0;    // newest retained value inside the window
  double window_avg = 0.0;  // mean of |value| over the window's points
  double window_max = 0.0;  // largest |value| over the window's points
  std::size_t points = 0;   // retained samples the verdict rests on
  bool sustained = false;   // window_avg beyond the threshold (>= 2 points)
};

struct DriftTrendReport {
  std::int64_t window_seconds = 0;
  double rate_delta_threshold = 0.0;
  double feature_z_threshold = 0.0;
  std::vector<DriftTrendSeries> rate_deltas;  // sidet_drift_rate_delta trails
  std::vector<DriftTrendSeries> feature_z;    // sidet_drift_feature_z trails
  bool sustained_drift = false;  // any trail sustained over the window

  Json ToJson() const;
};

// Thread-safe: the flight recorder feeds it from the flusher thread while
// Evaluate() runs on the caller's.
class DriftMonitor {
 public:
  explicit DriftMonitor(DriftBaseline baseline);

  void ObserveVerdict(DeviceCategory category, bool allowed);
  void ObserveSnapshot(const SensorSnapshot& snapshot);

  // Computes the current drift report and, when telemetry is attached,
  // refreshes the `sidet_drift_*` gauges.
  DriftReport Evaluate();

  // Trend evaluation against retained time-series history: a category only
  // counts as drifted when its |allow-rate delta| (or a sensor's z-score)
  // stayed beyond the threshold *on average* across the window of retained
  // `sidet_drift_*` gauge samples — one bad sampling instant cannot flag
  // drift, and a real shift cannot hide behind one good instant the way it
  // can from the instantaneous Evaluate(). Requires Evaluate() to have been
  // running with telemetry attached and the store sampling that registry;
  // trails the store has never retained report 0 points, not drift. The
  // streams enumerated are the monitor's own (categories/sensors it has
  // observed), so a series the store retains for another monitor is ignored.
  DriftTrendReport EvaluateTrend(const TimeSeriesStore& store, std::int64_t window_seconds,
                                 std::int64_t now_ms, double rate_delta_threshold = 0.15,
                                 double feature_z_threshold = 3.0) const;

  // Exports per-category `sidet_drift_allow_rate` / `sidet_drift_rate_delta`
  // and per-sensor `sidet_drift_feature_z` gauges, refreshed by Evaluate().
  void AttachTelemetry(MetricsRegistry* registry);

  const DriftBaseline& baseline() const { return baseline_; }

 private:
  struct CategoryStream {
    std::uint64_t observed = 0;
    std::uint64_t allowed = 0;
  };
  struct Welford {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
  };

  DriftBaseline baseline_;
  mutable std::mutex mu_;
  std::map<DeviceCategory, CategoryStream> verdicts_;
  std::array<Welford, kSensorTypeCount> features_{};
  std::uint64_t verdict_count_ = 0;
  std::uint64_t snapshot_count_ = 0;
  MetricsRegistry* registry_ = nullptr;  // not owned
};

// Declarative alert rule over one metric (optionally divided by another).
struct AlertRule {
  std::string name;         // alert label, e.g. "high_block_ratio"
  std::string description;  // becomes the firing gauge's HELP text
  std::string metric;       // registry metric name
  std::string labels;       // pre-rendered label body ("" for unlabelled)
  // Histogram rules read this quantile; counters/gauges ignore it.
  double quantile = 0.99;
  // When set, the rule value is metric / denominator (e.g. blocked/judged).
  std::string denominator_metric;
  std::string denominator_labels;
  enum class Comparison { kAbove, kBelow };
  Comparison comparison = Comparison::kAbove;
  double threshold = 0.0;
};

struct AlertState {
  std::string name;
  double value = 0.0;
  bool has_data = false;  // metric (and denominator) resolved
  bool firing = false;
};

class AlertEvaluator {
 public:
  void AddRule(AlertRule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<AlertRule>& rules() const { return rules_; }

  // Resolves every rule against the registry and writes
  // `sidet_alert_firing{alert="<name>"}` gauges back into it (1 firing,
  // 0 resolved/no-data), so alerts ride the existing exporters.
  std::vector<AlertState> Evaluate(MetricsRegistry& registry) const;

  static Json StatesJson(const std::vector<AlertState>& states);

 private:
  std::vector<AlertRule> rules_;
};

// The stock rule pack for a deployed IDS: block-ratio, judgement-error and
// recorder-drop alarms plus a drift ceiling (see drift_monitor.cpp).
std::vector<AlertRule> DefaultIdsAlerts();

// One AlertRule per SLO name, reading the `sidet_slo_firing{slo="<name>"}`
// gauge the SloEngine writes on every Evaluate — burn-rate alerts ride the
// same AlertEvaluator/exporter path as the stock IDS alerts. Pair with
// DefaultGatewaySlos() names ("judge_latency", "availability",
// "lane_shed_rate") or any custom objective set.
std::vector<AlertRule> SloBurnAlerts(const std::vector<std::string>& slo_names);

}  // namespace sidet
