#include "replay/replay_engine.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "datagen/context_schema.h"
#include "replay/flight_recorder.h"
#include "telemetry/trace.h"
#include "telemetry/tracing.h"
#include "util/strings.h"

namespace sidet {

bool RecordedEvent::allowed() const { return VerdictAllowed(kind, probability); }
double RecordedEvent::consistency() const { return VerdictConsistency(kind, probability); }
std::string RecordedEvent::reason() const {
  return VerdictReason(kind, probability, side_reason);
}

AuditRecord RecordedSession::EventAudit(const RecordedEvent& event) const {
  const Instruction& instruction = instructions[event.instruction_id];
  AuditRecord record;
  record.at = SimTime(event.at_seconds);
  record.instruction = instruction.name;
  record.category = instruction.category;
  record.sensitive = event.kind != VerdictKind::kNonSensitive;
  record.allowed = event.allowed();
  record.consistency = event.consistency();
  record.degraded = event.degraded;
  record.reason = event.reason();
  record.tier = event.tier;
  record.staleness_seconds = event.staleness_seconds;
  return record;
}

namespace {

Result<std::uint32_t> RequireId(const Json& line, std::string_view field,
                                std::size_t bound, std::size_t line_no) {
  const Json* value = line.find(field);
  if (value == nullptr || !value->is_number()) {
    return Error(Format("session line %zu lacks numeric '%s'", line_no,
                        std::string(field).c_str()));
  }
  const auto id = static_cast<std::uint32_t>(value->as_int());
  if (id >= bound) {
    return Error(Format("session line %zu references undefined %s id %u", line_no,
                        std::string(field).c_str(), id));
  }
  return id;
}

}  // namespace

Result<RecordedSession> ParseSession(std::string_view text) {
  RecordedSession session;
  bool have_header = false;
  bool have_footer = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      // A line without its terminating newline is a partial write: the
      // recorder (or the machine) died mid-flush.
      return Error(Format("session truncated mid-line at line %zu", line_no + 1));
    }
    const std::string_view raw = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (raw.empty()) continue;
    if (have_footer) return Error("session has lines after its footer");

    Result<Json> parsed = Json::Parse(raw);
    if (!parsed.ok()) {
      return parsed.error().context(Format("session line %zu", line_no));
    }
    const Json& line = parsed.value();
    const std::string type = line.string_or("type", "");
    if (!have_header) {
      if (type != "header") return Error("session does not start with a header line");
      const Json* model = line.find("model");
      if (model == nullptr || !model->is_string()) {
        return Error("session header lacks a model fingerprint");
      }
      session.model_fingerprint = model->as_string();
      have_header = true;
      continue;
    }

    if (type == "instruction") {
      const Json* id = line.find("id");
      if (id == nullptr || !id->is_number() ||
          static_cast<std::size_t>(id->as_int()) != session.instructions.size()) {
        return Error(Format("session line %zu: instruction ids must be dense and in "
                            "order", line_no));
      }
      Instruction instruction;
      instruction.opcode = static_cast<Opcode>(line.number_or("opcode", 0));
      instruction.name = line.string_or("name", "");
      instruction.handler = line.string_or("handler", "");
      instruction.description = line.string_or("description", "");
      Result<DeviceCategory> category =
          DeviceCategoryFromString(line.string_or("category", ""));
      if (!category.ok()) return category.error().context(Format("line %zu", line_no));
      instruction.category = category.value();
      Result<InstructionKind> kind = InstructionKindFromString(line.string_or("kind", ""));
      if (!kind.ok()) return kind.error().context(Format("line %zu", line_no));
      instruction.kind = kind.value();
      session.instructions.push_back(std::move(instruction));
    } else if (type == "snapshot") {
      const Json* id = line.find("id");
      if (id == nullptr || !id->is_number() ||
          static_cast<std::size_t>(id->as_int()) != session.snapshots.size()) {
        return Error(Format("session line %zu: snapshot ids must be dense and in order",
                            line_no));
      }
      const Json* data = line.find("data");
      if (data == nullptr) return Error(Format("session line %zu lacks data", line_no));
      Result<SensorSnapshot> snapshot = SensorSnapshot::FromJson(*data);
      if (!snapshot.ok()) return snapshot.error().context(Format("line %zu", line_no));
      session.snapshots.push_back(std::move(snapshot).value());
    } else if (type == "verdict") {
      RecordedEvent event;
      event.at_seconds = static_cast<std::int64_t>(line.number_or("at", 0));
      Result<std::uint32_t> iid =
          RequireId(line, "i", session.instructions.size(), line_no);
      if (!iid.ok()) return iid.error();
      event.instruction_id = iid.value();
      if (line.find("s") != nullptr) {
        Result<std::uint32_t> sid = RequireId(line, "s", session.snapshots.size(), line_no);
        if (!sid.ok()) return sid.error();
        event.snapshot_id = sid.value();
      } else {
        event.snapshot_id = RecordedSession::kNoSnapshot;
      }
      Result<VerdictKind> kind = VerdictKindFromString(line.string_or("k", ""));
      if (!kind.ok()) return kind.error().context(Format("line %zu", line_no));
      event.kind = kind.value();
      event.probability = line.number_or("p", 0.0);
      event.degraded = line.bool_or("deg", false);
      event.latency_us = static_cast<std::int32_t>(line.number_or("lat_us", -1));
      event.side_reason = line.string_or("reason", "");
      event.tier = line.string_or("tier", "");
      event.staleness_seconds = static_cast<std::int64_t>(line.number_or("stale", 0));
      event.trace_id = ParseTraceId(line.string_or("tid", ""));
      if (const Json* attr = line.find("a"); attr != nullptr) {
        if (!attr->is_array()) {
          return Error(Format("session line %zu: 'a' must be an array", line_no));
        }
        for (const Json& pair : attr->as_array()) {
          if (!pair.is_array() || pair.as_array().size() != 2 ||
              !pair.as_array()[0].is_number() || !pair.as_array()[1].is_number()) {
            return Error(Format("session line %zu: attribution entries must be "
                                "[field, contribution] pairs", line_no));
          }
          event.attribution.emplace_back(
              static_cast<std::uint32_t>(pair.as_array()[0].as_int()),
              pair.as_array()[1].as_number());
        }
      }
      session.events.push_back(std::move(event));
    } else if (type == "batch") {
      BatchStageMicros stages;
      stages.rows = static_cast<std::size_t>(line.number_or("rows", 0));
      stages.classify_us = static_cast<std::int64_t>(line.number_or("classify_us", 0));
      stages.score_us = static_cast<std::int64_t>(line.number_or("score_us", 0));
      stages.verdict_us = static_cast<std::int64_t>(line.number_or("verdict_us", 0));
      stages.wall_us = static_cast<std::int64_t>(line.number_or("wall_us", 0));
      session.batches.push_back(stages);
    } else if (type == "drops") {
      session.dropped += static_cast<std::uint64_t>(line.number_or("count", 0));
    } else if (type == "footer") {
      const auto recorded = static_cast<std::size_t>(line.number_or("recorded", 0));
      if (recorded != session.events.size()) {
        return Error(Format("session footer claims %zu verdicts, file holds %zu",
                            recorded, session.events.size()));
      }
      have_footer = true;
    } else {
      return Error(Format("session line %zu has unknown type '%s'", line_no,
                          type.c_str()));
    }
  }
  if (!have_header) return Error("session is empty (no header)");
  if (!have_footer) {
    return Error("session has no footer: the recording was truncated before Close()");
  }
  return session;
}

Result<RecordedSession> LoadSession(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) return Error("cannot open session '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<RecordedSession> session = ParseSession(buffer.str());
  if (!session.ok()) return session.error().context("load session '" + path + "'");
  return session;
}

Json ReplayReport::ToJson() const {
  Json out = Json::Object();
  out["events"] = static_cast<std::int64_t>(events);
  out["replayed"] = static_cast<std::int64_t>(replayed);
  out["skipped"] = static_cast<std::int64_t>(skipped);
  out["identical"] = static_cast<std::int64_t>(identical);
  out["flips"] = static_cast<std::int64_t>(flips);
  out["allow_to_block"] = static_cast<std::int64_t>(allow_to_block);
  out["block_to_allow"] = static_cast<std::int64_t>(block_to_allow);
  out["consistency_changes"] = static_cast<std::int64_t>(consistency_changes);
  out["reason_mismatches"] = static_cast<std::int64_t>(reason_mismatches);
  out["max_consistency_delta"] = max_consistency_delta;
  out["bit_identical"] = bit_identical();
  out["model_changed"] = model_changed();
  out["recorded_fingerprint"] = recorded_fingerprint;
  out["replay_fingerprint"] = replay_fingerprint;
  out["recorded_wall_us"] = recorded_wall_us;
  out["replay_wall_us"] = replay_wall_us;
  Json deltas = Json::Array();
  for (const CategoryDelta& delta : categories) {
    Json entry = Json::Object();
    entry["category"] = delta.category;
    entry["rows"] = delta.rows;
    entry["recorded_blocked"] = delta.recorded_blocked;
    entry["replayed_blocked"] = delta.replayed_blocked;
    entry["flips"] = delta.flips;
    deltas.as_array().push_back(std::move(entry));
  }
  out["categories"] = std::move(deltas);
  Json samples = Json::Array();
  for (const VerdictFlip& flip : flip_samples) {
    Json entry = Json::Object();
    entry["instruction"] = flip.instruction;
    entry["category"] = flip.category;
    entry["at_seconds"] = flip.at_seconds;
    entry["recorded_allowed"] = flip.recorded_allowed;
    entry["replayed_allowed"] = flip.replayed_allowed;
    entry["recorded_consistency"] = flip.recorded_consistency;
    entry["replayed_consistency"] = flip.replayed_consistency;
    const auto render_top = [](const std::vector<std::pair<std::string, double>>& top) {
      Json arr = Json::Array();
      for (const auto& [feature, contribution] : top) {
        Json item = Json::Object();
        item["feature"] = feature;
        item["contribution"] = contribution;
        arr.as_array().push_back(std::move(item));
      }
      return arr;
    };
    if (!flip.recorded_top.empty()) entry["recorded_top"] = render_top(flip.recorded_top);
    if (!flip.replayed_top.empty()) entry["replayed_top"] = render_top(flip.replayed_top);
    samples.as_array().push_back(std::move(entry));
  }
  out["flip_samples"] = std::move(samples);
  Json drivers = Json::Array();
  for (const auto& [feature, delta] : flip_feature_deltas) {
    Json item = Json::Object();
    item["feature"] = feature;
    item["delta"] = delta;
    drivers.as_array().push_back(std::move(item));
  }
  out["flip_feature_deltas"] = std::move(drivers);
  return out;
}

ReplayReport Replay(const RecordedSession& session, ContextIds& ids, int threads) {
  ReplayReport report;
  report.events = session.events.size();
  report.recorded_fingerprint = session.model_fingerprint;
  report.replay_fingerprint = ids.memory().Fingerprint();
  for (const BatchStageMicros& stages : session.batches) {
    report.recorded_wall_us += stages.wall_us;
  }

  std::vector<JudgeRequest> requests;
  std::vector<const RecordedEvent*> rows;
  requests.reserve(session.events.size());
  rows.reserve(session.events.size());
  for (const RecordedEvent& event : session.events) {
    if (event.latency_us >= 0) report.recorded_wall_us += event.latency_us;
    if (event.snapshot_id == RecordedSession::kNoSnapshot) {
      // Policy verdicts never ran the model; there is no context to re-judge.
      ++report.skipped;
      continue;
    }
    JudgeRequest request;
    request.instruction = &session.instructions[event.instruction_id];
    request.snapshot = &session.snapshots[event.snapshot_id];
    request.time = SimTime(event.at_seconds);
    requests.push_back(request);
    rows.push_back(&event);
  }
  report.replayed = requests.size();
  if (requests.empty()) return report;

  const std::int64_t start_us = MonotonicMicros();
  const std::vector<Judgement> replayed = ids.JudgeBatch(requests, threads);
  report.replay_wall_us = MonotonicMicros() - start_us;

  std::map<DeviceCategory, CategoryDelta> deltas;
  std::map<DeviceCategory, ContextSchema> schemas;  // flip-sample name lookups
  std::map<std::string, double> flip_drivers;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RecordedEvent& event = *rows[i];
    const Judgement& now = replayed[i];
    const bool was_allowed = event.allowed();
    const double was_consistency = event.consistency();
    const DeviceCategory category = requests[i].instruction->category;

    CategoryDelta& delta = deltas[category];
    delta.category = std::string(ToString(category));
    ++delta.rows;
    if (!was_allowed) ++delta.recorded_blocked;
    if (!now.allowed) ++delta.replayed_blocked;

    const double consistency_delta = std::fabs(now.consistency - was_consistency);
    if (consistency_delta > report.max_consistency_delta) {
      report.max_consistency_delta = consistency_delta;
    }
    const bool reason_equal = now.reason == event.reason();
    if (!reason_equal) ++report.reason_mismatches;
    if (now.allowed == was_allowed) {
      if (now.consistency == was_consistency && reason_equal) {
        ++report.identical;
      } else if (now.consistency != was_consistency) {
        ++report.consistency_changes;
      }
      continue;
    }
    ++report.flips;
    ++delta.flips;
    ++(was_allowed ? report.allow_to_block : report.block_to_allow);
    if (report.flip_samples.size() < ReplayReport::kMaxFlipSamples) {
      VerdictFlip flip;
      flip.instruction = requests[i].instruction->name;
      flip.category = delta.category;
      flip.at_seconds = event.at_seconds;
      flip.recorded_allowed = was_allowed;
      flip.replayed_allowed = now.allowed;
      flip.recorded_consistency = was_consistency;
      flip.replayed_consistency = now.consistency;
      // Attribute the flip: the recording's stamped notes name what the old
      // model weighed; an Explain walk of the replay model over the same
      // snapshot names what the new one weighs. Capped at kMaxFlipSamples,
      // so the Explain cost never scales with the session.
      auto schema_it = schemas.find(category);
      if (schema_it == schemas.end()) {
        schema_it = schemas.emplace(category, ContextSchema::ForCategory(category)).first;
      }
      const std::vector<ContextField>& fields = schema_it->second.fields();
      for (const auto& [field, contribution] : event.attribution) {
        flip.recorded_top.emplace_back(
            field < fields.size() ? fields[field].name : Format("field_%u", field),
            contribution);
      }
      const std::size_t top_k =
          event.attribution.empty() ? 5 : event.attribution.size();
      Result<ExplainResult> explained =
          ids.Explain(*requests[i].instruction, *requests[i].snapshot,
                      SimTime(event.at_seconds), top_k);
      if (explained.ok() && explained.value().kind == VerdictKind::kScored) {
        for (const FeatureContribution& c : explained.value().contributions) {
          flip.replayed_top.emplace_back(c.feature, c.contribution);
        }
      }
      if (!flip.recorded_top.empty() && !flip.replayed_top.empty()) {
        for (const auto& [feature, contribution] : flip.replayed_top) {
          flip_drivers[feature] += contribution;
        }
        for (const auto& [feature, contribution] : flip.recorded_top) {
          flip_drivers[feature] -= contribution;
        }
      }
      report.flip_samples.push_back(std::move(flip));
    }
  }
  report.categories.reserve(deltas.size());
  for (auto& [category, delta] : deltas) report.categories.push_back(std::move(delta));
  report.flip_feature_deltas.assign(flip_drivers.begin(), flip_drivers.end());
  std::sort(report.flip_feature_deltas.begin(), report.flip_feature_deltas.end(),
            [](const auto& a, const auto& b) {
              return std::fabs(a.second) > std::fabs(b.second);
            });
  return report;
}

ContextIds MakeReplayIds(ContextFeatureMemory memory) {
  return ContextIds(SensitiveInstructionDetector(PaperTableThree()), std::move(memory));
}

}  // namespace sidet
