// FlightRecorder — durable capture of every IDS verdict for forensics and
// deterministic replay (ROADMAP: observability for "heavy traffic").
//
// The recorder implements `VerdictObserver`: ContextIds reports each verdict
// (and each JudgeBatch, once per call) synchronously, and the recorder only
// *stages* plain-old-data rows into a bounded in-memory ring under a short
// mutex hold — no I/O, no allocation beyond amortized vector growth, no
// per-row strings on the hot path. A background flusher thread drains the
// ring every `flush_interval_ms` and serializes NDJSON; when the ring is
// full between drains, new verdicts are *dropped and counted*, never queued
// unboundedly and never blocking the judge.
//
// Session file layout (one JSON object per line; DESIGN.md §11):
//
//   {"type":"header","version":1,"model":"<md5>","ring":65536}
//   {"type":"instruction","id":0,"opcode":...,...}     # first-use dictionary
//   {"type":"snapshot","id":0,"data":{...}}            # first-use dictionary
//   {"type":"verdict","at":...,"i":0,"s":0,"k":"scored","p":0.97,...}
//   {"type":"batch","rows":8192,"classify_us":...,...} # one per JudgeBatch
//
// With ContextIds::EnableAttributionCapture on, scored verdict lines also
// carry `"a":[[field,contribution],...]` — the row's top-k Saabas feature
// attributions (schema field index + signed probability delta), so a replay
// against a new model can say *which features* drove each verdict flip.
//   {"type":"drops","count":12}                        # only when drops occurred
//   {"type":"footer","recorded":...,"dropped":...}     # written by Close()
//
// A session without its footer is truncated — the process died with staged
// rows, or Close() was never called — and the replay loader fails loudly on
// it. Verdicts are fully reconstructible from (kind, probability, side
// reason): the reason strings ContextIds formats are deterministic, so the
// recorder stores an enum + double per row instead of a string.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/ids.h"

namespace sidet {

class DriftMonitor;

// ToString(VerdictKind) lives with the enum in core/ids.h.
Result<VerdictKind> VerdictKindFromString(std::string_view name);

// Allowed / consistency / reason are functions of (kind, probability, side
// reason) — shared by the recorder's serializer and the replay loader so
// both reconstruct exactly what ContextIds produced.
bool VerdictAllowed(VerdictKind kind, double probability);
double VerdictConsistency(VerdictKind kind, double probability);
// `side` is the verbatim reason for kError/kFailOpen/kFailClosed, unused
// otherwise.
std::string VerdictReason(VerdictKind kind, double probability, const std::string& side);

struct FlightRecorderOptions {
  std::string path;                       // NDJSON session file
  std::size_t ring_capacity = 1 << 16;    // staged verdicts between flushes
  std::int64_t flush_interval_ms = 50;    // background drain cadence
  std::size_t max_snapshots = 1 << 20;    // distinct snapshots retained/interned
};

struct FlightRecorderStats {
  std::uint64_t recorded = 0;      // verdicts staged (will reach the file)
  std::uint64_t dropped = 0;       // verdicts lost to a full ring
  std::uint64_t instructions = 0;  // dictionary entries written
  std::uint64_t snapshots = 0;     // distinct snapshots interned
  std::uint64_t batches = 0;       // JudgeBatch calls observed
  std::uint64_t attributions = 0;  // rows stamped with attribution notes
  std::uint64_t flushes = 0;       // background + explicit drains
  std::uint64_t bytes_written = 0;

  Json ToJson() const;
};

class FlightRecorder : public VerdictObserver {
 public:
  explicit FlightRecorder(FlightRecorderOptions options);
  ~FlightRecorder() override;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Opens the session file, writes the header and starts the flusher.
  // `model_fingerprint` is ContextFeatureMemory::Fingerprint() of the model
  // the verdicts will be judged by.
  Status StartSession(const std::string& model_fingerprint);

  // Blocks until everything staged before the call is on disk (the flusher
  // also drains on its own cadence; Flush is for tests and clean handover).
  void Flush();

  // Final drain + footer + file close. Idempotent; called by the destructor.
  // Verdicts observed after Close() are counted as dropped.
  void Close();

  // Optional tee: every staged verdict/new snapshot is also fed to the
  // monitor *from the flusher thread* (the monitor is thread-safe), so drift
  // tracking adds nothing to the judge hot path. Not owned; attach before
  // StartSession and keep alive until Close().
  void SetDriftMonitor(DriftMonitor* monitor) { drift_ = monitor; }

  FlightRecorderStats stats() const;
  const std::string& path() const { return options_.path; }

  // VerdictObserver:
  void OnVerdict(const Instruction& instruction, const SensorSnapshot* snapshot, SimTime at,
                 VerdictKind kind, const Judgement& judgement, bool degraded,
                 std::int64_t latency_us) override;
  void OnBatch(std::span<const JudgeRequest> requests, std::vector<VerdictKind> kinds,
               std::vector<double> probabilities, std::vector<std::string> errors,
               const BatchStageMicros& stages) override;
  // Stages the scored-row attribution notes the IDS reports right after
  // OnBatch (attribution capture on). Notes join their rows by the staging
  // seq recorded at OnBatch; if anything else staged in between (another
  // lane's verdict, a flusher swap) the join is no longer sound and the
  // notes are dropped — counted, never mis-attributed.
  void OnBatchAttributions(std::span<const AttributionNote> notes) override;

 private:
  static constexpr std::uint32_t kNoId = 0xffffffffu;

  // A run is a stretch of consecutive staged rows sharing one (snapshot,
  // timestamp) context. JudgeBatch traffic arrives grouped by context, so a
  // run typically covers dozens of rows and the per-row staging cost is just
  // an instruction id, a kind byte and a probability — the structure-of-
  // arrays layout below keeps the OnBatch loop within the <2% overhead
  // budget (a 40-byte per-row struct measurably does not). Single-verdict
  // staging (OnVerdict) uses a 1-row run, which also carries the fields that
  // only exist per single judgement (latency, degraded).
  struct Run {
    std::int64_t at_seconds;
    std::uint32_t snapshot_id;  // kNoId for policy verdicts / capped interning
    std::uint32_t rows;
    std::int32_t latency_us;    // -1 for batch rows (see the batch event)
    bool degraded;
  };

  // Per-row kinds and probabilities arrive as the batch's own scratch
  // vectors, moved in wholesale — a chunk is one OnBatch (or a 1-row chunk
  // for a single OnVerdict). `rows` may be smaller than the vectors when the
  // ring clipped the batch; the serializer reads only the first `rows`.
  struct BatchChunk {
    std::size_t rows = 0;
    std::vector<VerdictKind> kinds;
    std::vector<double> probs;
  };

  // Dictionary entries are staged as (id, pointer into the owning deque):
  // deque growth never moves existing elements, and the recorder never
  // mutates a stored entry, so the flusher serializes from the pointer
  // without re-touching the container the hot path is appending to.
  //
  // `ids` is presized to ring_capacity at StartSession and recycled between
  // flush windows (`rows` is the logical length), so the judge hot path
  // never reallocates, copies or zero-fills the ring.
  // Rare per-row annotations: the verbatim reason for error/policy rows plus
  // the guard-tier label and staleness stamp live judgements carry. Staged
  // with ascending row indices so the serializer pairs them back up with a
  // single merge cursor.
  struct SideNote {
    std::uint32_t row;
    std::string reason;  // empty for scored/pass rows (reason is derivable)
    std::string tier;    // "availability"/"staleness"/"coverage"/"consistency"
    std::int64_t staleness_seconds;
  };

  // A scored row's top-k (schema field, contribution) pairs, staged with
  // ascending row indices like SideNote so the serializer pairs them with a
  // second merge cursor. Only present when attribution capture is on.
  struct AttrNote {
    std::uint32_t row;
    std::vector<std::pair<std::uint32_t, double>> top;
  };

  struct Pending {
    std::vector<std::pair<std::uint32_t, const Instruction*>> instructions;
    std::vector<std::pair<std::uint32_t, const SensorSnapshot*>> snapshots;
    std::vector<std::uint32_t> ids;          // per-row instruction id
    std::vector<std::uint64_t> trace_ids;    // per-row gateway trace id (0 = untraced)
    std::size_t rows = 0;                    // logical length of ids/trace_ids
    std::vector<Run> runs;              // covers rows [0, rows) in order
    std::vector<BatchChunk> chunks;     // covers rows [0, rows) in order
    std::vector<SideNote> side_reasons;
    std::vector<AttrNote> attributions;
    std::vector<BatchStageMicros> batches;
    std::uint64_t dropped = 0;
    std::uint64_t staged_seq = 0;  // seq of the newest row in this swap

    void Presize(std::size_t ring_capacity);
    void Reset();  // keeps capacity/size of the presized arrays
    bool empty() const {
      return rows == 0 && instructions.empty() && snapshots.empty() && batches.empty() &&
             dropped == 0;
    }
  };

  // All Intern*/Stage* helpers require mu_ held.
  std::uint32_t InternInstruction(const Instruction& instruction);
  std::uint32_t InternSnapshot(const SensorSnapshot* snapshot);
  bool RingFull() const { return pending_.rows >= options_.ring_capacity; }

  void FlushLoop();
  // Serializes and writes one swapped-out batch; runs on the flusher thread
  // (or the closing thread) without mu_ held.
  void WriteOut(Pending batch, bool count_flush);
  void AppendVerdictLine(std::string& out, const Pending& batch, const Run& run,
                         std::size_t row, VerdictKind kind, double probability,
                         std::size_t& next_side_reason, std::size_t& next_attribution) const;

  FlightRecorderOptions options_;
  DriftMonitor* drift_ = nullptr;  // not owned

  mutable std::mutex mu_;
  std::condition_variable wake_cv_;     // staged work / flush request / stop
  std::condition_variable flushed_cv_;  // written_seq_ advanced
  Pending pending_;
  Pending spare_;  // recycled staging buffers; swapped in when pending_ drains
  std::uint64_t staged_seq_ = 0;   // monotonically counts staging operations
  std::uint64_t written_seq_ = 0;  // newest seq known to be on disk
  // The last OnBatch's staging window, consumed by OnBatchAttributions: the
  // notes' row indices are relative to `base`, valid only while the buffer
  // seq still equals `seq` (nothing else staged, no flusher swap).
  std::uint64_t last_batch_seq_ = 0;
  std::size_t last_batch_base_ = 0;
  std::size_t last_batch_take_ = 0;
  bool flush_requested_ = false;
  bool stop_ = false;
  bool started_ = false;
  bool closed_ = false;

  // Dictionaries (mu_ held for writes; the flusher reads owned copies).
  std::vector<std::uint32_t> opcode_to_id_;       // opcode -> instruction id
  std::deque<Instruction> instruction_store_;     // id -> owned copy
  std::deque<SensorSnapshot> snapshot_store_;     // id -> owned copy
  std::map<std::pair<const void*, std::int64_t>, std::uint32_t> snapshot_ids_;
  const void* last_snapshot_ptr_ = nullptr;       // one-entry fast path
  std::int64_t last_snapshot_time_ = 0;
  std::uint32_t last_snapshot_id_ = kNoId;
  // Direct-mapped cache in front of snapshot_ids_: replayed workloads cycle
  // through the same contexts, and the tree lookup at every run boundary is
  // the dominant staging cost once rows are cheap. Like the one-entry fast
  // path, a hit trusts the existing (pointer, timestamp) binding; the full
  // address-reuse content check stays on the map path that creates bindings.
  struct SnapCacheEntry {
    const void* ptr = nullptr;
    std::int64_t at = 0;
    std::uint32_t id = kNoId;
  };
  static constexpr std::size_t kSnapCacheSize = 1024;  // power of two
  std::vector<SnapCacheEntry> snap_cache_;

  // Flusher-side instruction-id -> category mirror (ids are dense and the
  // dictionary entry for an id is always serialized before the first verdict
  // that references it), so the drift tee never touches the deque the hot
  // path may be appending to.
  std::vector<DeviceCategory> categories_by_id_;

  FlightRecorderStats stats_;
  std::ofstream out_;
  std::thread flusher_;
};

}  // namespace sidet
