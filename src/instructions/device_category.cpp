#include "instructions/device_category.h"

#include <array>
#include <cassert>

namespace sidet {

namespace {

struct CategoryNames {
  DeviceCategory category;
  std::string_view id;
  std::string_view display;
};

constexpr std::array<CategoryNames, kDeviceCategoryCount> kNames = {{
    {DeviceCategory::kAlarm, "alarm", "Alarm equipment"},
    {DeviceCategory::kKitchen, "kitchen", "Kitchen equipment"},
    {DeviceCategory::kEntertainment, "entertainment", "TV audio equipment"},
    {DeviceCategory::kAirConditioning, "air_conditioning", "Air conditioning equipment"},
    {DeviceCategory::kCurtains, "curtains", "Curtain blinds equipment"},
    {DeviceCategory::kLighting, "lighting", "Lighting equipment"},
    {DeviceCategory::kWindowAndLock, "window_and_lock", "Window equipment"},
    {DeviceCategory::kVacuum, "vacuum", "Sweeping robot equipment"},
    {DeviceCategory::kSecurityCamera, "security_camera", "Security camera equipment"},
}};

const CategoryNames& NamesOf(DeviceCategory category) {
  const auto index = static_cast<std::size_t>(category);
  assert(index < kDeviceCategoryCount);
  assert(kNames[index].category == category);
  return kNames[index];
}

}  // namespace

std::string_view ToString(DeviceCategory category) { return NamesOf(category).id; }

std::string_view DisplayName(DeviceCategory category) { return NamesOf(category).display; }

Result<DeviceCategory> DeviceCategoryFromString(std::string_view name) {
  for (const CategoryNames& names : kNames) {
    if (names.id == name) return names.category;
  }
  return Error("unknown device category '" + std::string(name) + "'");
}

const std::vector<DeviceCategory>& AllDeviceCategories() {
  static const std::vector<DeviceCategory> kAll = [] {
    std::vector<DeviceCategory> all;
    for (const CategoryNames& names : kNames) all.push_back(names.category);
    return all;
  }();
  return kAll;
}

}  // namespace sidet
