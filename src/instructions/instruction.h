// Instruction model and registry.
//
// The paper extracted "all instruction sets of Xiaomi IoT manufacturers'
// devices" from gateway firmware and split them into *control* instructions
// (change device state) and *status acquisition* instructions (read state) —
// the two classes its questionnaire rates separately. Each instruction here
// carries the opcode the firmware stores, its device category, its kind, and
// a handler name (the "function" the paper found paired with each opcode at
// 0x102F80).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "instructions/device_category.h"
#include "util/result.h"

namespace sidet {

enum class InstructionKind : std::uint8_t { kControl = 0, kStatus };

std::string_view ToString(InstructionKind kind);
Result<InstructionKind> InstructionKindFromString(std::string_view name);

using Opcode = std::uint16_t;

struct Instruction {
  Opcode opcode = 0;
  std::string name;          // e.g. "window.open"
  std::string handler;       // firmware handler symbol, e.g. "cmd_window_open"
  DeviceCategory category = DeviceCategory::kAlarm;
  InstructionKind kind = InstructionKind::kControl;
  std::string description;

  bool operator==(const Instruction&) const = default;
};

class InstructionRegistry {
 public:
  // Fails on duplicate opcode or duplicate name.
  Status Add(Instruction instruction);

  const Instruction* FindByOpcode(Opcode opcode) const;
  const Instruction* FindByName(std::string_view name) const;

  std::vector<const Instruction*> ForCategory(DeviceCategory category) const;
  std::vector<const Instruction*> ForCategory(DeviceCategory category,
                                              InstructionKind kind) const;

  const std::vector<Instruction>& all() const { return instructions_; }
  std::size_t size() const { return instructions_.size(); }

 private:
  std::vector<Instruction> instructions_;
  // Name and opcode indices into instructions_; kept because FindByName sits
  // on the gateway's per-request hot path.
  std::map<std::string, std::size_t, std::less<>> by_name_;
  std::map<Opcode, std::size_t> by_opcode_;
};

}  // namespace sidet
