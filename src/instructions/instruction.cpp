#include "instructions/instruction.h"

namespace sidet {

std::string_view ToString(InstructionKind kind) {
  switch (kind) {
    case InstructionKind::kControl: return "control";
    case InstructionKind::kStatus: return "status";
  }
  return "?";
}

Result<InstructionKind> InstructionKindFromString(std::string_view name) {
  if (name == "control") return InstructionKind::kControl;
  if (name == "status") return InstructionKind::kStatus;
  return Error("unknown instruction kind '" + std::string(name) + "'");
}

Status InstructionRegistry::Add(Instruction instruction) {
  if (FindByOpcode(instruction.opcode) != nullptr) {
    return Error("duplicate opcode " + std::to_string(instruction.opcode));
  }
  if (FindByName(instruction.name) != nullptr) {
    return Error("duplicate instruction name '" + instruction.name + "'");
  }
  by_name_.emplace(instruction.name, instructions_.size());
  by_opcode_.emplace(instruction.opcode, instructions_.size());
  instructions_.push_back(std::move(instruction));
  return Status::Ok();
}

const Instruction* InstructionRegistry::FindByOpcode(Opcode opcode) const {
  const auto it = by_opcode_.find(opcode);
  return it == by_opcode_.end() ? nullptr : &instructions_[it->second];
}

const Instruction* InstructionRegistry::FindByName(std::string_view name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &instructions_[it->second];
}

std::vector<const Instruction*> InstructionRegistry::ForCategory(DeviceCategory category) const {
  std::vector<const Instruction*> out;
  for (const Instruction& instruction : instructions_) {
    if (instruction.category == category) out.push_back(&instruction);
  }
  return out;
}

std::vector<const Instruction*> InstructionRegistry::ForCategory(DeviceCategory category,
                                                                 InstructionKind kind) const {
  std::vector<const Instruction*> out;
  for (const Instruction& instruction : instructions_) {
    if (instruction.category == category && instruction.kind == kind) {
      out.push_back(&instruction);
    }
  }
  return out;
}

}  // namespace sidet
