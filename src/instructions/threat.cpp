#include "instructions/threat.h"

#include <cassert>

namespace sidet {

std::string_view ToString(ThreatLevel level) {
  switch (level) {
    case ThreatLevel::kHigh: return "high";
    case ThreatLevel::kLow: return "low";
    case ThreatLevel::kNone: return "none";
  }
  return "?";
}

void ThreatProfile::Set(DeviceCategory category, ThreatDistribution distribution) {
  distributions_[static_cast<std::size_t>(category)] = distribution;
}

const ThreatDistribution& ThreatProfile::Of(DeviceCategory category) const {
  return distributions_[static_cast<std::size_t>(category)];
}

bool ThreatProfile::IsSensitive(DeviceCategory category, double threshold) const {
  return Of(category).high > threshold;
}

std::vector<DeviceCategory> ThreatProfile::SensitiveCategories(double threshold) const {
  std::vector<DeviceCategory> out;
  for (const DeviceCategory category : AllDeviceCategories()) {
    if (IsSensitive(category, threshold)) out.push_back(category);
  }
  return out;
}

ThreatProfile PaperTableThree() {
  ThreatProfile profile;
  // Fractions exactly as printed in Table III. (The TV row is printed as
  // 26.47 / 73.54 / 0 in the paper, which sums to 100.01 — we keep the
  // printed values; the calibration normalizes.)
  profile.Set(DeviceCategory::kAlarm, {0.7059, 0.2647, 0.0294});
  profile.Set(DeviceCategory::kKitchen, {0.6765, 0.3235, 0.0});
  profile.Set(DeviceCategory::kEntertainment, {0.2647, 0.7354, 0.0});
  profile.Set(DeviceCategory::kAirConditioning, {0.5294, 0.4412, 0.0294});
  profile.Set(DeviceCategory::kCurtains, {0.5588, 0.4118, 0.0294});
  profile.Set(DeviceCategory::kLighting, {0.6471, 0.2647, 0.0882});
  profile.Set(DeviceCategory::kWindowAndLock, {0.9412, 0.0588, 0.0});
  profile.Set(DeviceCategory::kVacuum, {0.4118, 0.5294, 0.0588});
  profile.Set(DeviceCategory::kSecurityCamera, {0.9412, 0.0588, 0.0});
  return profile;
}

bool IsSensitiveInstruction(const Instruction& instruction, const ThreatProfile& profile,
                            double threshold) {
  if (instruction.kind != InstructionKind::kControl) return false;
  return profile.IsSensitive(instruction.category, threshold);
}

}  // namespace sidet
