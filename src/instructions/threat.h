// Threat taxonomy and the sensitive-instruction policy.
//
// The paper grades every (device category × instruction kind) by the fraction
// of questionnaire respondents rating it high / low / no threat (Table III),
// then defines as *sensitive* the categories whose control instructions more
// than 50% of respondents called high-threat. This header carries the threat
// model plus the paper's published Table III fractions, which the survey
// module uses to calibrate its respondent model.
#pragma once

#include <array>
#include <string_view>

#include "instructions/device_category.h"
#include "instructions/instruction.h"

namespace sidet {

enum class ThreatLevel : std::uint8_t { kHigh = 0, kLow, kNone };

std::string_view ToString(ThreatLevel level);

// Fractions over respondents; sums to 1 within rounding.
struct ThreatDistribution {
  double high = 0.0;
  double low = 0.0;
  double none = 0.0;
};

// Per-category threat distributions for CONTROL instructions, per the survey.
class ThreatProfile {
 public:
  void Set(DeviceCategory category, ThreatDistribution distribution);
  const ThreatDistribution& Of(DeviceCategory category) const;

  // The paper: "We defined the instructions that accounted for more than 50%
  // of the survey results' high threats as sensitive instructions."
  bool IsSensitive(DeviceCategory category, double threshold = 0.5) const;
  std::vector<DeviceCategory> SensitiveCategories(double threshold = 0.5) const;

 private:
  std::array<ThreatDistribution, kDeviceCategoryCount> distributions_{};
};

// The exact fractions the paper reports in Table III (control instructions).
ThreatProfile PaperTableThree();

// Whether a concrete instruction is treated as sensitive under a profile:
// control instructions inherit their category's sensitivity; status
// acquisition instructions are never sensitive (the paper's respondents rate
// control strictly more threatening, §IV.A / Fig 4).
bool IsSensitiveInstruction(const Instruction& instruction, const ThreatProfile& profile,
                            double threshold = 0.5);

}  // namespace sidet
