#include "instructions/standard_instruction_set.h"

#include <cassert>

namespace sidet {

Opcode CategoryOpcodeBase(DeviceCategory category) {
  return static_cast<Opcode>((static_cast<Opcode>(category) + 1) << 8);
}

DeviceCategory CategoryOfOpcode(Opcode opcode) {
  const auto ordinal = static_cast<std::uint8_t>((opcode >> 8) - 1);
  assert(ordinal < kDeviceCategoryCount);
  return static_cast<DeviceCategory>(ordinal);
}

namespace {

struct Spec {
  const char* name;
  const char* handler;
  const char* description;
};

void AddBlock(InstructionRegistry& registry, DeviceCategory category, InstructionKind kind,
              std::initializer_list<Spec> specs) {
  const Opcode base = CategoryOpcodeBase(category);
  Opcode offset = kind == InstructionKind::kControl ? 0x00 : 0x80;
  for (const Spec& spec : specs) {
    Instruction instruction;
    instruction.opcode = static_cast<Opcode>(base + offset++);
    instruction.name = spec.name;
    instruction.handler = spec.handler;
    instruction.category = category;
    instruction.kind = kind;
    instruction.description = spec.description;
    const Status status = registry.Add(std::move(instruction));
    assert(status.ok());
    (void)status;
  }
}

}  // namespace

InstructionRegistry BuildStandardInstructionSet() {
  InstructionRegistry registry;

  // 1. Alarms (smoke/fire, flood, combustible gas).
  AddBlock(registry, DeviceCategory::kAlarm, InstructionKind::kControl,
           {{"alarm.arm", "cmd_alarm_arm", "Arm the alarm system"},
            {"alarm.disarm", "cmd_alarm_disarm", "Disarm the alarm system"},
            {"alarm.siren_on", "cmd_alarm_siren_on", "Sound the siren"},
            {"alarm.siren_off", "cmd_alarm_siren_off", "Silence the siren"},
            {"alarm.test", "cmd_alarm_self_test", "Run alarm self test"},
            {"alarm.mute_gas", "cmd_alarm_mute_gas", "Mute the combustible gas detector"}});
  AddBlock(registry, DeviceCategory::kAlarm, InstructionKind::kStatus,
           {{"alarm.get_state", "qry_alarm_state", "Read armed/disarmed state"},
            {"alarm.get_smoke", "qry_alarm_smoke", "Read smoke sensor value"},
            {"alarm.get_gas", "qry_alarm_gas", "Read combustible gas sensor value"},
            {"alarm.get_flood", "qry_alarm_flood", "Read flood sensor value"},
            {"alarm.get_battery", "qry_alarm_battery", "Read alarm battery level"}});

  // 2. Kitchen appliances.
  AddBlock(registry, DeviceCategory::kKitchen, InstructionKind::kControl,
           {{"cooker.start", "cmd_cooker_start", "Start the rice cooker"},
            {"cooker.stop", "cmd_cooker_stop", "Stop the rice cooker"},
            {"oven.preheat", "cmd_oven_preheat", "Preheat the oven"},
            {"oven.off", "cmd_oven_off", "Turn the oven off"},
            {"oven.set_temp", "cmd_oven_set_temp", "Set oven temperature"},
            {"dishwasher.start", "cmd_dishwasher_start", "Start the dishwasher"},
            {"dishwasher.stop", "cmd_dishwasher_stop", "Stop the dishwasher"},
            {"fridge.set_temp", "cmd_fridge_set_temp", "Set refrigerator temperature"},
            {"kettle.boil", "cmd_kettle_boil", "Boil the kettle"}});
  AddBlock(registry, DeviceCategory::kKitchen, InstructionKind::kStatus,
           {{"cooker.get_state", "qry_cooker_state", "Read rice cooker program state"},
            {"oven.get_temp", "qry_oven_temp", "Read oven temperature"},
            {"dishwasher.get_state", "qry_dishwasher_state", "Read dishwasher cycle state"},
            {"fridge.get_temp", "qry_fridge_temp", "Read refrigerator temperature"}});

  // 3. Entertainment (TV, stereo).
  AddBlock(registry, DeviceCategory::kEntertainment, InstructionKind::kControl,
           {{"tv.on", "cmd_tv_on", "Turn the TV on"},
            {"tv.off", "cmd_tv_off", "Turn the TV off"},
            {"tv.set_volume", "cmd_tv_set_volume", "Set TV volume"},
            {"tv.set_channel", "cmd_tv_set_channel", "Set TV channel"},
            {"stereo.play", "cmd_stereo_play", "Start stereo playback"},
            {"stereo.pause", "cmd_stereo_pause", "Pause stereo playback"},
            {"stereo.set_volume", "cmd_stereo_set_volume", "Set stereo volume"}});
  AddBlock(registry, DeviceCategory::kEntertainment, InstructionKind::kStatus,
           {{"tv.get_state", "qry_tv_state", "Read TV power/channel state"},
            {"stereo.get_state", "qry_stereo_state", "Read stereo playback state"}});

  // 4. Air conditioning / thermostat.
  AddBlock(registry, DeviceCategory::kAirConditioning, InstructionKind::kControl,
           {{"ac.on", "cmd_ac_on", "Turn the air conditioner on"},
            {"ac.off", "cmd_ac_off", "Turn the air conditioner off"},
            {"ac.cool", "cmd_ac_cool", "Switch to cooling mode"},
            {"ac.heat", "cmd_ac_heat", "Switch to heating mode"},
            {"ac.set_target", "cmd_ac_set_target", "Set target temperature"},
            {"thermostat.set_schedule", "cmd_thermostat_sched", "Program the thermostat"},
            {"ac.fan_speed", "cmd_ac_fan_speed", "Set fan speed"}});
  AddBlock(registry, DeviceCategory::kAirConditioning, InstructionKind::kStatus,
           {{"ac.get_state", "qry_ac_state", "Read AC mode and target"},
            {"thermostat.get_temp", "qry_thermostat_temp", "Read measured temperature"}});

  // 5. Curtains / blinds.
  AddBlock(registry, DeviceCategory::kCurtains, InstructionKind::kControl,
           {{"curtain.open", "cmd_curtain_open", "Open the curtains"},
            {"curtain.close", "cmd_curtain_close", "Close the curtains"},
            {"curtain.set_position", "cmd_curtain_set_pos", "Move curtains to a position"},
            {"blind.tilt", "cmd_blind_tilt", "Tilt the blinds"}});
  AddBlock(registry, DeviceCategory::kCurtains, InstructionKind::kStatus,
           {{"curtain.get_position", "qry_curtain_pos", "Read curtain position"}});

  // 6. Lighting.
  AddBlock(registry, DeviceCategory::kLighting, InstructionKind::kControl,
           {{"light.on", "cmd_light_on", "Turn the light on"},
            {"light.off", "cmd_light_off", "Turn the light off"},
            {"light.set_brightness", "cmd_light_brightness", "Set brightness"},
            {"light.set_color", "cmd_light_color", "Set color temperature"},
            {"light.scene", "cmd_light_scene", "Activate a lighting scene"}});
  AddBlock(registry, DeviceCategory::kLighting, InstructionKind::kStatus,
           {{"light.get_state", "qry_light_state", "Read light power/brightness"}});

  // 7. Smart door locks, doors and windows.
  AddBlock(registry, DeviceCategory::kWindowAndLock, InstructionKind::kControl,
           {{"window.open", "cmd_window_open", "Open the window"},
            {"window.close", "cmd_window_close", "Close the window"},
            {"door.open", "cmd_door_open", "Open the door"},
            {"door.close", "cmd_door_close", "Close the door"},
            {"lock.lock", "cmd_lock_lock", "Engage the smart lock"},
            {"lock.unlock", "cmd_lock_unlock", "Release the smart lock"},
            {"backdoor.open", "cmd_backdoor_open", "Open the back door"}});
  AddBlock(registry, DeviceCategory::kWindowAndLock, InstructionKind::kStatus,
           {{"window.get_state", "qry_window_state", "Read window open/closed"},
            {"door.get_state", "qry_door_state", "Read door open/closed"},
            {"lock.get_state", "qry_lock_state", "Read lock engaged state"}});

  // 8. Vacuum / lawn mower.
  AddBlock(registry, DeviceCategory::kVacuum, InstructionKind::kControl,
           {{"vacuum.start", "cmd_vacuum_start", "Start cleaning"},
            {"vacuum.stop", "cmd_vacuum_stop", "Stop cleaning"},
            {"vacuum.dock", "cmd_vacuum_dock", "Return to dock"},
            {"mower.start", "cmd_mower_start", "Start mowing"},
            {"mower.stop", "cmd_mower_stop", "Stop mowing"}});
  AddBlock(registry, DeviceCategory::kVacuum, InstructionKind::kStatus,
           {{"vacuum.get_state", "qry_vacuum_state", "Read vacuum state"},
            {"mower.get_state", "qry_mower_state", "Read mower state"}});

  // 9. Security camera.
  AddBlock(registry, DeviceCategory::kSecurityCamera, InstructionKind::kControl,
           {{"camera.enable", "cmd_camera_enable", "Enable recording"},
            {"camera.disable", "cmd_camera_disable", "Disable recording"},
            {"camera.rotate", "cmd_camera_rotate", "Rotate the camera"},
            {"camera.alert", "cmd_camera_alert", "Push a warning to the user"}});
  AddBlock(registry, DeviceCategory::kSecurityCamera, InstructionKind::kStatus,
           {{"camera.get_state", "qry_camera_state", "Read camera enabled state"},
            {"camera.get_clip", "qry_camera_clip", "Fetch the latest clip metadata"}});

  return registry;
}

}  // namespace sidet
