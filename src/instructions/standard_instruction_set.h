// The standard instruction catalogue — our reconstruction of the instruction
// set the paper recovered from Xiaomi gateway firmware.
//
// Opcodes are organized in per-category blocks: the high byte is the device
// category ordinal + 1, the low byte enumerates instructions within the
// category. Control instructions occupy low bytes 0x00–0x7f, status
// acquisition instructions 0x80–0xff, mirroring the two instruction classes
// the paper's questionnaire rates separately.
#pragma once

#include "instructions/instruction.h"

namespace sidet {

// Builds the full catalogue (~90 instructions across the 9 categories of
// Table I). Deterministic; safe to call repeatedly.
InstructionRegistry BuildStandardInstructionSet();

// Opcode block helpers.
Opcode CategoryOpcodeBase(DeviceCategory category);
DeviceCategory CategoryOfOpcode(Opcode opcode);

}  // namespace sidet
