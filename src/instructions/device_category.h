// The nine smart-home device categories of Table I.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sidet {

enum class DeviceCategory : std::uint8_t {
  kAlarm = 0,        // smoke/fire alarms, flood sensor alarms, gas detectors
  kKitchen,          // rice cooker, dishwasher, oven, refrigerator
  kEntertainment,    // TVs, stereos
  kAirConditioning,  // air conditioner, thermostat
  kCurtains,         // curtains, blinds
  kLighting,         // lamps
  kWindowAndLock,    // smart door locks, doors and windows
  kVacuum,           // vacuum cleaner, lawn mower
  kSecurityCamera,   // security cameras
};

inline constexpr std::size_t kDeviceCategoryCount = 9;

// Stable snake_case identifier ("window_and_lock").
std::string_view ToString(DeviceCategory category);
// Table III row label ("Window equipment").
std::string_view DisplayName(DeviceCategory category);
Result<DeviceCategory> DeviceCategoryFromString(std::string_view name);
const std::vector<DeviceCategory>& AllDeviceCategories();

}  // namespace sidet
