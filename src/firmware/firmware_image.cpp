#include "firmware/firmware_image.h"

#include <cstring>

#include "crypto/aes.h"  // ConstantTimeEquals
#include "crypto/md5.h"
#include "util/rng.h"

namespace sidet {

namespace {

constexpr char kHeaderMagic[] = "SIDETFW1";  // 8 chars, no NUL in image
constexpr std::uint32_t kTableMagic = 0x4c425449;  // "ITBL" little-endian
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 4 + 4 + 16;

Bytes SerializeTable(const InstructionRegistry& registry, Rng& rng) {
  ByteWriter table;
  table.U32Le(kTableMagic);
  table.U32Le(static_cast<std::uint32_t>(registry.size()));
  for (const Instruction& instruction : registry.all()) {
    // Fake function pointer into the code region below the table.
    const auto address = static_cast<std::uint32_t>(
        rng.UniformInt(0x1000, static_cast<std::int64_t>(kFirmwareTableOffset) - 4));
    table.U32Le(address & ~3u);  // 4-byte aligned, like real thumb handlers
    table.U16Le(instruction.opcode);
    table.U8(static_cast<std::uint8_t>(instruction.kind));
    table.U8(static_cast<std::uint8_t>(instruction.category));
    table.FixedString(instruction.name, 32);
    table.FixedString(instruction.handler, 32);
    table.FixedString(instruction.description, 48);
  }
  return table.Take();
}

Result<std::vector<FirmwareRecord>> ParseTable(ByteReader& reader) {
  const Result<std::uint32_t> magic = reader.U32Le();
  if (!magic.ok()) return magic.error().context("table magic");
  if (magic.value() != kTableMagic) return Error("instruction table magic mismatch");

  const Result<std::uint32_t> count = reader.U32Le();
  if (!count.ok()) return count.error().context("record count");
  if (count.value() > 100000) return Error("implausible record count");

  std::vector<FirmwareRecord> records;
  records.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    FirmwareRecord record;
    const Result<std::uint32_t> address = reader.U32Le();
    const Result<std::uint16_t> opcode = reader.U16Le();
    const Result<std::uint8_t> kind = reader.U8();
    const Result<std::uint8_t> category = reader.U8();
    if (!address.ok() || !opcode.ok() || !kind.ok() || !category.ok()) {
      return Error("truncated record " + std::to_string(i));
    }
    if (kind.value() > 1) return Error("record " + std::to_string(i) + ": bad kind");
    if (category.value() >= kDeviceCategoryCount) {
      return Error("record " + std::to_string(i) + ": bad category");
    }
    Result<std::string> name = reader.FixedString(32);
    Result<std::string> handler = reader.FixedString(32);
    Result<std::string> description = reader.FixedString(48);
    if (!name.ok() || !handler.ok() || !description.ok()) {
      return Error("truncated strings in record " + std::to_string(i));
    }
    record.function_address = address.value();
    record.instruction.opcode = opcode.value();
    record.instruction.kind = static_cast<InstructionKind>(kind.value());
    record.instruction.category = static_cast<DeviceCategory>(category.value());
    record.instruction.name = std::move(name).value();
    record.instruction.handler = std::move(handler).value();
    record.instruction.description = std::move(description).value();
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace

Bytes BuildFirmwareImage(const InstructionRegistry& registry, std::uint64_t seed) {
  Rng rng(seed);
  const Bytes table = SerializeTable(registry, rng);
  const Md5Digest table_digest =
      Md5Sum(std::span<const std::uint8_t>(table.data(), table.size()));
  const std::size_t image_size = kFirmwareTableOffset + table.size() + 0x400;  // trailing pad

  ByteWriter image;
  image.Raw(std::string_view(kHeaderMagic, 8));
  image.U32Le(kFirmwareVersion);
  image.U32Le(static_cast<std::uint32_t>(image_size));
  image.U32Le(kFirmwareTableOffset);
  image.U32Le(static_cast<std::uint32_t>(table.size()));
  image.Raw(std::span<const std::uint8_t>(table_digest.data(), table_digest.size()));

  // Pseudo-random "code" section between the header and the table. Generated
  // in 8-byte strides for speed; the exact content only matters in that it is
  // incompressible noise a scanner has to skip over.
  ByteWriter filler;
  while (kHeaderSize + filler.size() + 8 <= kFirmwareTableOffset) filler.U64Le(rng.Next());
  while (kHeaderSize + filler.size() < kFirmwareTableOffset) {
    filler.U8(static_cast<std::uint8_t>(rng.Next()));
  }
  image.Raw(std::span<const std::uint8_t>(filler.data().data(), filler.data().size()));

  image.Raw(std::span<const std::uint8_t>(table.data(), table.size()));
  image.Pad(image_size - image.size(), 0xFF);  // erased-flash trailer
  return image.Take();
}

Result<std::vector<FirmwareRecord>> ExtractInstructionTable(
    std::span<const std::uint8_t> image) {
  ByteReader reader(image);
  Result<std::string> magic = reader.FixedString(8);
  if (!magic.ok()) return magic.error().context("header");
  if (magic.value() != kHeaderMagic) return Error("not a SIDETFW1 image");

  const Result<std::uint32_t> version = reader.U32Le();
  const Result<std::uint32_t> image_size = reader.U32Le();
  const Result<std::uint32_t> table_offset = reader.U32Le();
  const Result<std::uint32_t> table_size = reader.U32Le();
  Result<Bytes> expected_digest = reader.Raw(16);
  if (!version.ok() || !image_size.ok() || !table_offset.ok() || !table_size.ok() ||
      !expected_digest.ok()) {
    return Error("truncated firmware header");
  }
  if (static_cast<std::size_t>(table_offset.value()) + table_size.value() > image.size()) {
    return Error("instruction table extends beyond the image");
  }

  const std::span<const std::uint8_t> table =
      image.subspan(table_offset.value(), table_size.value());
  const Md5Digest actual_digest = Md5Sum(table);
  if (!ConstantTimeEquals(
          std::span<const std::uint8_t>(actual_digest.data(), actual_digest.size()),
          std::span<const std::uint8_t>(expected_digest.value().data(),
                                        expected_digest.value().size()))) {
    return Error("instruction table digest mismatch (corrupted image?)");
  }

  ByteReader table_reader(table);
  return ParseTable(table_reader);
}

Result<std::vector<FirmwareRecord>> ScanForInstructionTable(
    std::span<const std::uint8_t> image) {
  if (image.size() < 8) return Error("image too small to scan");
  const std::uint8_t magic_bytes[4] = {'I', 'T', 'B', 'L'};
  for (std::size_t offset = 0; offset + 8 <= image.size(); ++offset) {
    if (std::memcmp(image.data() + offset, magic_bytes, 4) != 0) continue;
    ByteReader reader(image.subspan(offset));
    Result<std::vector<FirmwareRecord>> candidate = ParseTable(reader);
    // A random 4-byte collision in the filler will fail structural checks
    // (kind/category bounds, record count plausibility); keep scanning.
    if (candidate.ok() && !candidate.value().empty()) return candidate;
  }
  return Error("no valid instruction table found in image");
}

Result<InstructionRegistry> RegistryFromFirmware(std::span<const std::uint8_t> image) {
  Result<std::vector<FirmwareRecord>> records = ExtractInstructionTable(image);
  if (!records.ok()) return records.error();
  InstructionRegistry registry;
  for (FirmwareRecord& record : records.value()) {
    const Status added = registry.Add(std::move(record.instruction));
    if (!added.ok()) return added.error().context("registry from firmware");
  }
  return registry;
}

}  // namespace sidet
