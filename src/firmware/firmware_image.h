// Synthetic gateway firmware image and its instruction-table extractor.
//
// The paper recovered the Xiaomi instruction set by reversing gateway
// firmware: "all instructions are stored at the address 0x102F80 specified in
// the firmware (a function + an instruction)" (§IV.A). We reproduce that
// pipeline end to end: BuildFirmwareImage serializes an instruction table —
// each record pairing a fake function address with an instruction — at
// exactly that flash offset inside an image of pseudo-random "code" bytes;
// ExtractInstructionTable plays the reverse engineer, recovering and
// validating the table. ScanForInstructionTable finds the table with no
// header at all, byte-scanning for the table magic the way a analyst would.
//
// Image layout (little-endian, matching ARM flash):
//   0x000000  magic "SIDETFW1" (8)           — header
//             version u32, image_size u32
//             table_offset u32 (0x102F80)
//             table_size u32
//             table_md5 (16)                 — digest of the table region
//   ........  pseudo-random filler ("code")
//   0x102F80  table magic "ITBL" (4)
//             record_count u32
//             records: function_addr u32 | opcode u16 | kind u8 | category u8
//                      name char[32] | handler char[32] | description char[48]
#pragma once

#include <cstdint>
#include <vector>

#include "instructions/instruction.h"
#include "util/bytes.h"
#include "util/result.h"

namespace sidet {

inline constexpr std::uint32_t kFirmwareTableOffset = 0x102F80;
inline constexpr std::uint32_t kFirmwareVersion = 0x0104;  // "1.4", like real gateways
inline constexpr std::size_t kFirmwareRecordSize = 4 + 2 + 1 + 1 + 32 + 32 + 48;

struct FirmwareRecord {
  std::uint32_t function_address = 0;  // the "function" half of each pair
  Instruction instruction;

  bool operator==(const FirmwareRecord&) const = default;
};

// Serializes the registry into a flashable image. `seed` drives the filler
// bytes (and the fake function addresses), so identical inputs produce
// identical images.
Bytes BuildFirmwareImage(const InstructionRegistry& registry, std::uint64_t seed = 0x51de7);

// Recovers the table via the header. Fails on: bad header magic, truncated
// image, table digest mismatch, malformed records.
Result<std::vector<FirmwareRecord>> ExtractInstructionTable(std::span<const std::uint8_t> image);

// Recovers the table without trusting the header: scans for the "ITBL" magic
// and validates candidate tables structurally. Returns the first valid table.
Result<std::vector<FirmwareRecord>> ScanForInstructionTable(std::span<const std::uint8_t> image);

// Convenience: extract + build a registry (duplicate records are an error).
Result<InstructionRegistry> RegistryFromFirmware(std::span<const std::uint8_t> image);

}  // namespace sidet
