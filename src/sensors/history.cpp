#include "sensors/history.h"

namespace sidet {

SnapshotHistory::SnapshotHistory(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SnapshotHistory::Push(SensorSnapshot snapshot) {
  if (!snapshots_.empty() && snapshot.time() == snapshots_.back().time()) {
    snapshots_.back() = std::move(snapshot);
    return;
  }
  snapshots_.push_back(std::move(snapshot));
  while (snapshots_.size() > capacity_) snapshots_.pop_front();
}

std::vector<const SensorSnapshot*> SnapshotHistory::Window(
    std::int64_t window_seconds) const {
  std::vector<const SensorSnapshot*> out;
  if (snapshots_.empty()) return out;
  const SimTime cutoff = latest().time() + (-window_seconds);
  for (const SensorSnapshot& snapshot : snapshots_) {
    if (snapshot.time() >= cutoff) out.push_back(&snapshot);
  }
  return out;
}

Result<double> SnapshotHistory::SlopePerHour(SensorType type,
                                             std::int64_t window_seconds) const {
  std::vector<double> times;  // hours relative to window start
  std::vector<double> values;
  for (const SensorSnapshot* snapshot : Window(window_seconds)) {
    const SensorValue* value = snapshot->FindByType(type);
    if (value == nullptr || value->kind != ValueKind::kContinuous) continue;
    times.push_back(static_cast<double>(snapshot->time().seconds()) / kSecondsPerHour);
    values.push_back(value->number);
  }
  if (times.size() < 2) {
    return Error("need at least two readings of " + std::string(ToString(type)) +
                 " for a slope");
  }
  // Least squares fit; guard against all samples at the same instant.
  double mean_t = 0.0;
  double mean_v = 0.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    mean_t += times[i];
    mean_v += values[i];
  }
  mean_t /= static_cast<double>(times.size());
  mean_v /= static_cast<double>(times.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    num += (times[i] - mean_t) * (values[i] - mean_v);
    den += (times[i] - mean_t) * (times[i] - mean_t);
  }
  if (den == 0.0) return Error("all readings share one timestamp");
  return num / den;
}

Result<double> SnapshotHistory::MeanOver(SensorType type, std::int64_t window_seconds) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const SensorSnapshot* snapshot : Window(window_seconds)) {
    const SensorValue* value = snapshot->FindByType(type);
    if (value == nullptr || value->kind != ValueKind::kContinuous) continue;
    sum += value->number;
    ++count;
  }
  if (count == 0) return Error("no readings of " + std::string(ToString(type)) + " in window");
  return sum / static_cast<double>(count);
}

int SnapshotHistory::RisingEdges(SensorType type, std::int64_t window_seconds) const {
  int edges = 0;
  bool previous = false;
  bool have_previous = false;
  for (const SensorSnapshot* snapshot : Window(window_seconds)) {
    const SensorValue* value = snapshot->FindByType(type);
    if (value == nullptr || value->kind != ValueKind::kBinary) continue;
    const bool current = value->as_bool();
    if (have_previous && current && !previous) ++edges;
    previous = current;
    have_previous = true;
  }
  return edges;
}

double SnapshotHistory::ActiveFraction(SensorType type, std::int64_t window_seconds) const {
  std::size_t active = 0;
  std::size_t total = 0;
  for (const SensorSnapshot* snapshot : Window(window_seconds)) {
    const SensorValue* value = snapshot->FindByType(type);
    if (value == nullptr || value->kind != ValueKind::kBinary) continue;
    ++total;
    if (value->as_bool()) ++active;
  }
  return total == 0 ? 0.0 : static_cast<double>(active) / static_cast<double>(total);
}

}  // namespace sidet
