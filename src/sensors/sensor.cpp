#include "sensors/sensor.h"

#include <algorithm>

namespace sidet {

Sensor::Sensor(SensorId id, std::string name, SensorType type, std::string room, Vendor vendor,
               NoiseModel noise)
    : id_(id),
      name_(std::move(name)),
      type_(type),
      room_(std::move(room)),
      vendor_(vendor),
      noise_(noise) {
  // Start from a sane default true value for the type.
  const SensorTraits& traits = TraitsOf(type_);
  switch (traits.kind) {
    case ValueKind::kBinary:
      true_value_ = SensorValue::Binary(false);
      break;
    case ValueKind::kContinuous:
      true_value_ = SensorValue::Continuous((traits.min_value + traits.max_value) / 2.0);
      break;
    case ValueKind::kCategorical:
      true_value_ = SensorValue::Categorical(traits.categories.front(), 0.0);
      break;
  }
}

void Sensor::SetTrueValue(SensorValue value, SimTime at) {
  true_value_ = std::move(value);
  last_update_ = at;
}

SensorValue Sensor::Read(Rng& rng) const {
  if (spoofed_value_.has_value()) return *spoofed_value_;

  const SensorTraits& traits = TraitsOf(type_);
  SensorValue reading = true_value_;
  switch (traits.kind) {
    case ValueKind::kBinary:
      if (noise_.flip_probability > 0.0 && rng.Bernoulli(noise_.flip_probability)) {
        reading = SensorValue::Binary(!reading.as_bool());
      }
      break;
    case ValueKind::kContinuous:
      if (noise_.gaussian_stddev > 0.0) {
        reading.number = std::clamp(reading.number + rng.Normal(0.0, noise_.gaussian_stddev),
                                    traits.min_value, traits.max_value);
      }
      break;
    case ValueKind::kCategorical:
      break;  // categorical sensors report exactly
  }
  return reading;
}

void Sensor::Spoof(SensorValue forged) { spoofed_value_ = std::move(forged); }

void Sensor::ClearSpoof() { spoofed_value_.reset(); }

}  // namespace sidet
