// SnapshotHistory — temporal sensor context.
//
// The paper's closest related work (Birnbach & Eberz's Peeves, §VII) verifies
// physical events from how sensor values *move*, not just where they are.
// This module keeps a bounded, time-ordered window of snapshots and derives
// the temporal features that distinguish a developing physical event from a
// spoofed level: rates of change, trailing means, activation edges and duty
// cycles. A genuine fire shows a positive air-quality slope over the last
// minutes; a forged smoke bit shows none.
#pragma once

#include <deque>

#include "sensors/snapshot.h"
#include "util/result.h"

namespace sidet {

class SnapshotHistory {
 public:
  explicit SnapshotHistory(std::size_t capacity = 512);

  // Snapshots must arrive in non-decreasing time order (same-time updates
  // replace the previous snapshot).
  void Push(SensorSnapshot snapshot);

  bool empty() const { return snapshots_.empty(); }
  std::size_t size() const { return snapshots_.size(); }
  const SensorSnapshot& latest() const { return snapshots_.back(); }

  // --- Derived temporal features over the trailing window ---------------------
  // Least-squares slope of a continuous sensor, in units per hour. Fails
  // with < 2 readings of the type inside the window.
  Result<double> SlopePerHour(SensorType type, std::int64_t window_seconds) const;

  // Mean of a continuous sensor over the window. Fails with no readings.
  Result<double> MeanOver(SensorType type, std::int64_t window_seconds) const;

  // Count of false->true transitions of a binary sensor inside the window.
  int RisingEdges(SensorType type, std::int64_t window_seconds) const;

  // Fraction of window samples in which the binary sensor read true.
  double ActiveFraction(SensorType type, std::int64_t window_seconds) const;

 private:
  // Snapshots within [latest.time - window, latest.time].
  std::vector<const SensorSnapshot*> Window(std::int64_t window_seconds) const;

  std::size_t capacity_;
  std::deque<SensorSnapshot> snapshots_;
};

}  // namespace sidet
