// Sensor taxonomy.
//
// The paper's window model (Fig 6) is built from nine context features:
// smoke sensor, combustible-gas sensor, user voice command, smart-door-lock
// state, temperature sensor, air-quality detector, outdoor weather, motion
// sensor and time of day. Other device models draw on the wider set below.
// Each type carries static traits: whether its reading is binary, continuous
// or categorical, its unit, and its plausible physical range.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/json.h"
#include "util/result.h"

namespace sidet {

enum class SensorType : std::uint8_t {
  kMotion = 0,        // binary: movement detected in the room
  kOccupancy,         // binary: somebody is home
  kDoorContact,       // binary: door open
  kWindowContact,     // binary: window open
  kSmoke,             // binary: smoke / fire detected
  kGasLeak,           // binary: combustible gas detected
  kWaterLeak,         // binary: flood sensor wet
  kLockState,         // binary: smart door lock locked
  kVoiceCommand,      // binary: user voice command heard recently
  kTemperature,       // continuous °C, indoor
  kOutdoorTemperature,// continuous °C, outdoor
  kHumidity,          // continuous %RH
  kIlluminance,       // continuous lux (log-scaled by convention)
  kAirQuality,        // continuous AQI-like index, higher is worse
  kNoiseLevel,        // continuous dB
  kWeatherCondition,  // categorical: clear / cloudy / rain / snow
};

inline constexpr std::size_t kSensorTypeCount = 16;

enum class ValueKind : std::uint8_t { kBinary = 0, kContinuous, kCategorical };

enum class Vendor : std::uint8_t { kXiaomi = 0, kSmartThings, kTuyaLike };

struct SensorTraits {
  SensorType type;
  std::string_view name;         // stable snake_case identifier
  ValueKind kind;
  std::string_view unit;         // empty for binary/categorical
  double min_value;              // range for continuous types
  double max_value;
  std::vector<std::string_view> categories;  // for categorical types
};

const SensorTraits& TraitsOf(SensorType type);
std::string_view ToString(SensorType type);
Result<SensorType> SensorTypeFromString(std::string_view name);
std::string_view ToString(Vendor vendor);
std::string_view ToString(ValueKind kind);

// All sensor types in declaration order.
const std::vector<SensorType>& AllSensorTypes();

// A single reading. Binary readings store 0/1 in `number`; categorical
// readings store the category index in `number` and the label in `label`.
struct SensorValue {
  ValueKind kind = ValueKind::kBinary;
  double number = 0.0;
  std::string label;

  static SensorValue Binary(bool on);
  static SensorValue Continuous(double v);
  static SensorValue Categorical(std::string_view category, double index);

  bool as_bool() const { return number != 0.0; }

  bool operator==(const SensorValue&) const = default;

  Json ToJson() const;
  static Result<SensorValue> FromJson(const Json& json);
};

// Builds a categorical SensorValue for `type`, resolving the index from the
// type's category list. Fails on unknown category.
Result<SensorValue> MakeCategorical(SensorType type, std::string_view category);

}  // namespace sidet
