// A deployed sensor instance: identity, placement, vendor, current true
// value, measurement noise, and a spoofing hook.
//
// The simulator owns the *true* environment value and pushes it into the
// sensor; collectors call Read(), which applies the noise model. The attack
// library uses Spoof() to model the paper's threat (§III.A): a malicious app
// forging a sensor's reported value without the physical state changing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sensors/sensor_types.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace sidet {

using SensorId = std::uint64_t;

struct NoiseModel {
  // Standard deviation of additive Gaussian noise for continuous readings,
  // in the sensor's unit.
  double gaussian_stddev = 0.0;
  // Probability that a binary reading flips (false trigger / missed event).
  double flip_probability = 0.0;
};

class Sensor {
 public:
  Sensor(SensorId id, std::string name, SensorType type, std::string room, Vendor vendor,
         NoiseModel noise = {});

  SensorId id() const { return id_; }
  const std::string& name() const { return name_; }
  SensorType type() const { return type_; }
  const std::string& room() const { return room_; }
  Vendor vendor() const { return vendor_; }

  // The physically true value (set by the simulator).
  void SetTrueValue(SensorValue value, SimTime at);
  const SensorValue& true_value() const { return true_value_; }
  SimTime last_update() const { return last_update_; }

  // Reported reading: spoofed value if a spoof is active, otherwise the true
  // value perturbed by the noise model and clamped to the type's range.
  SensorValue Read(Rng& rng) const;

  // --- Attack surface -------------------------------------------------------
  void Spoof(SensorValue forged);
  void ClearSpoof();
  bool spoofed() const { return spoofed_value_.has_value(); }

 private:
  SensorId id_;
  std::string name_;
  SensorType type_;
  std::string room_;
  Vendor vendor_;
  NoiseModel noise_;
  SensorValue true_value_;
  SimTime last_update_;
  std::optional<SensorValue> spoofed_value_;
};

}  // namespace sidet
