#include "sensors/snapshot.h"

namespace sidet {

std::int64_t SnapshotQuality::max_staleness_seconds() const {
  std::int64_t worst = 0;
  for (const VendorQuality* vendor : {&miio, &rest, &mqtt}) {
    if (vendor->served() && vendor->staleness_seconds > worst) {
      worst = vendor->staleness_seconds;
    }
  }
  return worst;
}

double SnapshotQuality::coverage() const {
  std::size_t present = 0;
  std::size_t served = 0;
  for (const VendorQuality* vendor : {&miio, &rest, &mqtt}) {
    if (!vendor->present) continue;
    ++present;
    if (vendor->served()) ++served;
  }
  return present == 0 ? 1.0 : static_cast<double>(served) / static_cast<double>(present);
}

Json SnapshotQuality::ToJson() const {
  const auto vendor_json = [](const VendorQuality& vendor) {
    Json out = Json::Object();
    out["present"] = vendor.present;
    out["fresh"] = vendor.fresh;
    out["from_cache"] = vendor.from_cache;
    out["staleness_seconds"] = vendor.staleness_seconds;
    out["readings"] = vendor.readings;
    return out;
  };
  Json out = Json::Object();
  out["miio"] = vendor_json(miio);
  out["rest"] = vendor_json(rest);
  out["mqtt"] = vendor_json(mqtt);
  out["fresh_readings"] = fresh_readings;
  out["stale_readings"] = stale_readings;
  out["missing_vendors"] = missing_vendors;
  out["degraded"] = degraded();
  out["coverage"] = coverage();
  return out;
}

void SensorSnapshot::Set(const std::string& key, SensorType type, SensorValue value) {
  for (Entry& entry : readings_) {
    if (entry.key == key) {
      entry.type = type;
      entry.value = std::move(value);
      return;
    }
  }
  readings_.push_back(Entry{key, type, std::move(value)});
}

bool SensorSnapshot::Has(const std::string& key) const { return Find(key) != nullptr; }

const SensorValue* SensorSnapshot::Find(const std::string& key) const {
  for (const Entry& entry : readings_) {
    if (entry.key == key) return &entry.value;
  }
  return nullptr;
}

std::optional<SensorType> SensorSnapshot::TypeOf(const std::string& key) const {
  for (const Entry& entry : readings_) {
    if (entry.key == key) return entry.type;
  }
  return std::nullopt;
}

const SensorValue* SensorSnapshot::FindByType(SensorType type) const {
  for (const Entry& entry : readings_) {
    if (entry.type == type) return &entry.value;
  }
  return nullptr;
}

Json SensorSnapshot::ToJson() const {
  Json out = Json::Object();
  out["time_seconds"] = time_.seconds();
  Json readings = Json::Object();
  for (const Entry& entry : readings_) {
    Json record = entry.value.ToJson();
    record["type"] = std::string(ToString(entry.type));
    readings[entry.key] = std::move(record);
  }
  out["readings"] = std::move(readings);
  return out;
}

Result<SensorSnapshot> SensorSnapshot::FromJson(const Json& json) {
  if (!json.is_object()) return Error("snapshot must be a JSON object");
  SensorSnapshot snapshot(SimTime(static_cast<std::int64_t>(json.number_or("time_seconds", 0))));
  const Json* readings = json.find("readings");
  if (readings == nullptr || !readings->is_object()) {
    return Error("snapshot needs a 'readings' object");
  }
  for (const auto& [key, record] : readings->as_object()) {
    const Json* type_field = record.find("type");
    if (type_field == nullptr || !type_field->is_string()) {
      return Error("reading '" + key + "' lacks a type");
    }
    Result<SensorType> type = SensorTypeFromString(type_field->as_string());
    if (!type.ok()) return type.error().context("reading '" + key + "'");
    Result<SensorValue> value = SensorValue::FromJson(record);
    if (!value.ok()) return value.error().context("reading '" + key + "'");
    snapshot.Set(key, type.value(), std::move(value).value());
  }
  return snapshot;
}

}  // namespace sidet
