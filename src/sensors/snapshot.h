// SensorSnapshot — the "unified JSON" sensor-context record of §IV.B.3.
//
// A snapshot is what the sensor data collector hands to the context feature
// memory: every relevant sensor's reading at one instant, plus the time. The
// ML layer featurizes snapshots; the judger classifies them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sensors/sensor_types.h"
#include "util/json.h"
#include "util/sim_clock.h"

namespace sidet {

// Provenance of one vendor's contribution to a collected snapshot: polled
// live, served from the collector's last-known-good cache, or absent.
struct VendorQuality {
  bool present = false;   // vendor configured on the collector
  bool fresh = false;     // live poll succeeded this collection
  bool from_cache = false;  // last-known-good readings served instead
  std::int64_t staleness_seconds = 0;  // age of served readings (0 when fresh)
  std::size_t readings = 0;

  bool served() const { return fresh || from_cache; }
};

// Coverage/staleness report attached to a snapshot by the resilient
// collector. A fault-free collection is all-fresh; degraded collections
// carry stale (cached) readings or miss vendors entirely.
struct SnapshotQuality {
  VendorQuality miio;
  VendorQuality rest;
  VendorQuality mqtt;
  std::size_t fresh_readings = 0;
  std::size_t stale_readings = 0;
  std::size_t missing_vendors = 0;  // present vendors that served nothing

  bool degraded() const { return stale_readings > 0 || missing_vendors > 0; }
  // Worst age across served vendors; 0 when everything is fresh.
  std::int64_t max_staleness_seconds() const;
  // Served vendors / present vendors; 1 when no vendor is configured.
  double coverage() const;
  Json ToJson() const;
};

class SensorSnapshot {
 public:
  SensorSnapshot() = default;
  explicit SensorSnapshot(SimTime at) : time_(at) {}

  SimTime time() const { return time_; }
  void set_time(SimTime t) { time_ = t; }

  // Keys are "<sensor name>" (unique per home, e.g. "kitchen_smoke").
  void Set(const std::string& key, SensorType type, SensorValue value);
  bool Has(const std::string& key) const;
  // nullptr when absent.
  const SensorValue* Find(const std::string& key) const;
  std::optional<SensorType> TypeOf(const std::string& key) const;

  // First reading of the given type, if any — convenient when a home has one
  // sensor per type (the common case in our generated scenes).
  const SensorValue* FindByType(SensorType type) const;

  std::size_t size() const { return readings_.size(); }
  bool empty() const { return readings_.empty(); }

  struct Entry {
    std::string key;
    SensorType type;
    SensorValue value;
  };
  const std::vector<Entry>& entries() const { return readings_; }

  // Collection provenance; defaults to an empty (non-degraded) report for
  // snapshots that never went through the collector. Not serialized.
  const SnapshotQuality& quality() const { return quality_; }
  void set_quality(SnapshotQuality quality) { quality_ = std::move(quality); }

  Json ToJson() const;
  static Result<SensorSnapshot> FromJson(const Json& json);

 private:
  SimTime time_;
  std::vector<Entry> readings_;  // insertion order preserved for stable output
  SnapshotQuality quality_;
};

}  // namespace sidet
