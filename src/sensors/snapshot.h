// SensorSnapshot — the "unified JSON" sensor-context record of §IV.B.3.
//
// A snapshot is what the sensor data collector hands to the context feature
// memory: every relevant sensor's reading at one instant, plus the time. The
// ML layer featurizes snapshots; the judger classifies them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sensors/sensor_types.h"
#include "util/json.h"
#include "util/sim_clock.h"

namespace sidet {

class SensorSnapshot {
 public:
  SensorSnapshot() = default;
  explicit SensorSnapshot(SimTime at) : time_(at) {}

  SimTime time() const { return time_; }
  void set_time(SimTime t) { time_ = t; }

  // Keys are "<sensor name>" (unique per home, e.g. "kitchen_smoke").
  void Set(const std::string& key, SensorType type, SensorValue value);
  bool Has(const std::string& key) const;
  // nullptr when absent.
  const SensorValue* Find(const std::string& key) const;
  std::optional<SensorType> TypeOf(const std::string& key) const;

  // First reading of the given type, if any — convenient when a home has one
  // sensor per type (the common case in our generated scenes).
  const SensorValue* FindByType(SensorType type) const;

  std::size_t size() const { return readings_.size(); }
  bool empty() const { return readings_.empty(); }

  struct Entry {
    std::string key;
    SensorType type;
    SensorValue value;
  };
  const std::vector<Entry>& entries() const { return readings_; }

  Json ToJson() const;
  static Result<SensorSnapshot> FromJson(const Json& json);

 private:
  SimTime time_;
  std::vector<Entry> readings_;  // insertion order preserved for stable output
};

}  // namespace sidet
