#include "sensors/sensor_types.h"

#include <array>
#include <cassert>

namespace sidet {

namespace {

const std::array<SensorTraits, kSensorTypeCount>& TraitsTable() {
  static const std::array<SensorTraits, kSensorTypeCount> kTable = {{
      {SensorType::kMotion, "motion", ValueKind::kBinary, "", 0, 1, {}},
      {SensorType::kOccupancy, "occupancy", ValueKind::kBinary, "", 0, 1, {}},
      {SensorType::kDoorContact, "door_contact", ValueKind::kBinary, "", 0, 1, {}},
      {SensorType::kWindowContact, "window_contact", ValueKind::kBinary, "", 0, 1, {}},
      {SensorType::kSmoke, "smoke", ValueKind::kBinary, "", 0, 1, {}},
      {SensorType::kGasLeak, "gas_leak", ValueKind::kBinary, "", 0, 1, {}},
      {SensorType::kWaterLeak, "water_leak", ValueKind::kBinary, "", 0, 1, {}},
      {SensorType::kLockState, "lock_state", ValueKind::kBinary, "", 0, 1, {}},
      {SensorType::kVoiceCommand, "voice_command", ValueKind::kBinary, "", 0, 1, {}},
      {SensorType::kTemperature, "temperature", ValueKind::kContinuous, "C", -10, 45, {}},
      {SensorType::kOutdoorTemperature, "outdoor_temperature", ValueKind::kContinuous, "C", -30,
       45, {}},
      {SensorType::kHumidity, "humidity", ValueKind::kContinuous, "%RH", 0, 100, {}},
      {SensorType::kIlluminance, "illuminance", ValueKind::kContinuous, "lux", 0, 100000, {}},
      {SensorType::kAirQuality, "air_quality", ValueKind::kContinuous, "AQI", 0, 500, {}},
      {SensorType::kNoiseLevel, "noise_level", ValueKind::kContinuous, "dB", 20, 120, {}},
      {SensorType::kWeatherCondition,
       "weather_condition",
       ValueKind::kCategorical,
       "",
       0,
       3,
       {"clear", "cloudy", "rain", "snow"}},
  }};
  return kTable;
}

}  // namespace

const SensorTraits& TraitsOf(SensorType type) {
  const auto index = static_cast<std::size_t>(type);
  assert(index < kSensorTypeCount);
  const SensorTraits& traits = TraitsTable()[index];
  assert(traits.type == type);  // table order must match the enum
  return traits;
}

std::string_view ToString(SensorType type) { return TraitsOf(type).name; }

Result<SensorType> SensorTypeFromString(std::string_view name) {
  for (const SensorTraits& traits : TraitsTable()) {
    if (traits.name == name) return traits.type;
  }
  return Error("unknown sensor type '" + std::string(name) + "'");
}

std::string_view ToString(Vendor vendor) {
  switch (vendor) {
    case Vendor::kXiaomi: return "xiaomi";
    case Vendor::kSmartThings: return "smartthings";
    case Vendor::kTuyaLike: return "tuya_like";
  }
  return "?";
}

std::string_view ToString(ValueKind kind) {
  switch (kind) {
    case ValueKind::kBinary: return "binary";
    case ValueKind::kContinuous: return "continuous";
    case ValueKind::kCategorical: return "categorical";
  }
  return "?";
}

const std::vector<SensorType>& AllSensorTypes() {
  static const std::vector<SensorType> kAll = [] {
    std::vector<SensorType> all;
    for (const SensorTraits& traits : TraitsTable()) all.push_back(traits.type);
    return all;
  }();
  return kAll;
}

SensorValue SensorValue::Binary(bool on) {
  SensorValue v;
  v.kind = ValueKind::kBinary;
  v.number = on ? 1.0 : 0.0;
  return v;
}

SensorValue SensorValue::Continuous(double value) {
  SensorValue v;
  v.kind = ValueKind::kContinuous;
  v.number = value;
  return v;
}

SensorValue SensorValue::Categorical(std::string_view category, double index) {
  SensorValue v;
  v.kind = ValueKind::kCategorical;
  v.number = index;
  v.label = std::string(category);
  return v;
}

Json SensorValue::ToJson() const {
  Json out = Json::Object();
  out["kind"] = std::string(sidet::ToString(kind));
  switch (kind) {
    case ValueKind::kBinary:
      out["value"] = as_bool();
      break;
    case ValueKind::kContinuous:
      out["value"] = number;
      break;
    case ValueKind::kCategorical:
      out["value"] = label;
      out["index"] = number;
      break;
  }
  return out;
}

Result<SensorValue> SensorValue::FromJson(const Json& json) {
  if (!json.is_object()) return Error("sensor value must be a JSON object");
  const Json* kind_field = json.find("kind");
  const Json* value_field = json.find("value");
  if (kind_field == nullptr || !kind_field->is_string() || value_field == nullptr) {
    return Error("sensor value needs 'kind' and 'value' fields");
  }
  const std::string& kind = kind_field->as_string();
  if (kind == "binary") {
    if (!value_field->is_bool()) return Error("binary sensor value must be a bool");
    return Binary(value_field->as_bool());
  }
  if (kind == "continuous") {
    if (!value_field->is_number()) return Error("continuous sensor value must be a number");
    return Continuous(value_field->as_number());
  }
  if (kind == "categorical") {
    if (!value_field->is_string()) return Error("categorical sensor value must be a string");
    return Categorical(value_field->as_string(), json.number_or("index", 0.0));
  }
  return Error("unknown sensor value kind '" + kind + "'");
}

Result<SensorValue> MakeCategorical(SensorType type, std::string_view category) {
  const SensorTraits& traits = TraitsOf(type);
  if (traits.kind != ValueKind::kCategorical) {
    return Error(std::string(traits.name) + " is not a categorical sensor");
  }
  for (std::size_t i = 0; i < traits.categories.size(); ++i) {
    if (traits.categories[i] == category) {
      return SensorValue::Categorical(category, static_cast<double>(i));
    }
  }
  return Error("unknown category '" + std::string(category) + "' for sensor " +
               std::string(traits.name));
}

}  // namespace sidet
