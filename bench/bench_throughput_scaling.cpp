// Throughput scaling of the parallel training + batch inference engine.
//
// Three measurements, emitted to BENCH_throughput.json:
//   1. forest fit-time at 1/2/4/8 worker lanes (same fitted model at every
//      count — the JSON also records the byte-identity check);
//   2. memory training determinism: TrainFromCorpus at 1 vs 4 lanes must
//      serialize to the same bytes;
//   3. end-to-end judge throughput (instructions/sec) over a replayed
//      instruction stream: per-row pointer-tree judging (the baseline) vs
//      per-row compiled vs JudgeBatch through the flat arrays at 1/2/4/8
//      lanes. The acceptance bar is batch@4 >= 2x pointer@1.
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/ids.h"
#include "datagen/corpus_generator.h"
#include "datagen/device_dataset.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "ml/random_forest.h"
#include "ml/sampling.h"
#include "util/json.h"

using namespace sidet;
using sidet::bench::GitDescribe;
using sidet::bench::MedianNs;

namespace {

constexpr int kRepetitions = 3;
const std::vector<int> kThreadCounts = {1, 2, 4, 8};

// ~hours of simulated home time the replayed stream spans.
constexpr std::size_t kSnapshots = 32;
// Replay multiplier: the same instruction stream re-judged (bulk audit).
constexpr std::size_t kReplays = 8;

struct Workload {
  InstructionRegistry registry;
  GeneratedCorpus corpus;
  ContextIds ids;
  SmartHome home;
  std::vector<SensorSnapshot> snapshots;
  std::vector<SimTime> times;
  std::vector<ContextIds::JudgeRequest> requests;

  Workload()
      : registry(BuildStandardInstructionSet()),
        corpus([this] {
          CorpusConfig config;
          Result<GeneratedCorpus> generated = GenerateCorpus(config, registry);
          if (!generated.ok()) std::abort();
          return std::move(generated).value();
        }()),
        ids([this] {
          Result<ContextIds> built = BuildIdsFromScratch(registry, 99);
          if (!built.ok()) std::abort();
          return std::move(built).value();
        }()),
        home(BuildDemoHome(42)) {
    snapshots.reserve(kSnapshots);
    times.reserve(kSnapshots);
    for (std::size_t s = 0; s < kSnapshots; ++s) {
      home.Step(kSecondsPerHour);
      snapshots.push_back(home.Snapshot());
      times.push_back(home.now());
    }
    for (std::size_t r = 0; r < kReplays; ++r) {
      for (std::size_t s = 0; s < kSnapshots; ++s) {
        for (const Instruction& instruction : registry.all()) {
          if (!ids.detector().IsSensitive(instruction)) continue;
          if (!ids.memory().HasModel(instruction.category)) continue;
          requests.push_back({&instruction, &snapshots[s], times[s]});
        }
      }
    }
  }
};

double InstructionsPerSecond(std::size_t rows, double ns) {
  return ns <= 0 ? 0.0 : static_cast<double>(rows) * 1e9 / ns;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_throughput.json";
  Workload workload;

  Json report = Json::Object();
  report["bench"] = "throughput_scaling";
  report["git_describe"] = GitDescribe();
  report["hardware_concurrency"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  report["repetitions"] = static_cast<std::int64_t>(kRepetitions);

  // --- 1. forest fit-time vs worker lanes -------------------------------
  Result<DeviceDataset> window = BuildDeviceDataset(
      workload.corpus.corpus, DefaultConfigFor(DeviceCategory::kWindowAndLock));
  if (!window.ok()) {
    std::fprintf(stderr, "dataset build failed: %s\n", window.error().message().c_str());
    return 1;
  }
  Rng rng(1);
  const Dataset train = RandomOversample(window.value().data, rng);

  Json fit = Json::Array();
  std::string fit_reference;
  bool fit_deterministic = true;
  for (const int threads : kThreadCounts) {
    RandomForestParams params;
    params.threads = threads;
    std::string serialized;
    const double ns = MedianNs(kRepetitions, [&] {
      RandomForest forest(params);
      if (!forest.Fit(train).ok()) std::abort();
      serialized = forest.ToJson().Dump();
    });
    if (fit_reference.empty()) fit_reference = serialized;
    fit_deterministic = fit_deterministic && serialized == fit_reference;
    Json row = Json::Object();
    row["threads"] = static_cast<std::int64_t>(threads);
    row["fit_ms_median"] = ns / 1e6;
    fit.as_array().push_back(std::move(row));
    std::printf("forest fit  threads=%d  %8.2f ms\n", threads, ns / 1e6);
  }
  report["forest_fit"] = std::move(fit);
  report["forest_fit_bit_identical"] = fit_deterministic;

  // --- 2. memory training determinism across lane counts ----------------
  std::string memory_reference;
  bool memory_deterministic = true;
  for (const int threads : {1, 4}) {
    ContextFeatureMemory memory;
    MemoryTrainingOptions options;
    options.threads = threads;
    if (!memory.TrainFromCorpus(workload.corpus.corpus, options).ok()) std::abort();
    const std::string serialized = memory.ToJson().Dump();
    if (memory_reference.empty()) memory_reference = serialized;
    memory_deterministic = memory_deterministic && serialized == memory_reference;
  }
  report["memory_train_bit_identical"] = memory_deterministic;
  std::printf("memory train 1 vs 4 lanes bit-identical: %s\n",
              memory_deterministic ? "yes" : "NO");

  // --- 3. judge throughput: pointer per-row vs compiled batch -----------
  const std::size_t rows = workload.requests.size();
  report["judge_rows"] = static_cast<std::int64_t>(rows);

  workload.ids.EnableCompiledInference(false);
  const double pointer_ns = MedianNs(kRepetitions, [&] {
    for (const ContextIds::JudgeRequest& request : workload.requests) {
      Result<Judgement> judgement =
          workload.ids.Judge(*request.instruction, *request.snapshot, request.time);
      if (!judgement.ok()) std::abort();
    }
  });
  const double pointer_ops = InstructionsPerSecond(rows, pointer_ns);
  std::printf("judge pointer per-row         %10.0f instr/s\n", pointer_ops);

  workload.ids.EnableCompiledInference(true);
  const double compiled_row_ns = MedianNs(kRepetitions, [&] {
    for (const ContextIds::JudgeRequest& request : workload.requests) {
      Result<Judgement> judgement =
          workload.ids.Judge(*request.instruction, *request.snapshot, request.time);
      if (!judgement.ok()) std::abort();
    }
  });
  const double compiled_row_ops = InstructionsPerSecond(rows, compiled_row_ns);
  std::printf("judge compiled per-row        %10.0f instr/s\n", compiled_row_ops);

  Json judge = Json::Object();
  judge["pointer_per_row_ns_median"] = pointer_ns / static_cast<double>(rows);
  judge["pointer_per_row_instr_per_sec"] = pointer_ops;
  judge["compiled_per_row_ns_median"] = compiled_row_ns / static_cast<double>(rows);
  judge["compiled_per_row_instr_per_sec"] = compiled_row_ops;

  Json batch = Json::Array();
  double batch4_ops = 0.0;
  for (const int threads : kThreadCounts) {
    const double ns = MedianNs(kRepetitions, [&] {
      const std::vector<Judgement> verdicts = workload.ids.JudgeBatch(workload.requests, threads);
      if (verdicts.size() != rows) std::abort();
    });
    const double ops = InstructionsPerSecond(rows, ns);
    if (threads == 4) batch4_ops = ops;
    Json row = Json::Object();
    row["threads"] = static_cast<std::int64_t>(threads);
    row["ns_per_instr_median"] = ns / static_cast<double>(rows);
    row["instr_per_sec"] = ops;
    batch.as_array().push_back(std::move(row));
    std::printf("judge compiled batch t=%d      %10.0f instr/s\n", threads, ops);
  }
  judge["compiled_batch"] = std::move(batch);
  const double speedup = pointer_ops <= 0 ? 0.0 : batch4_ops / pointer_ops;
  judge["speedup_batch4_vs_pointer1"] = speedup;
  report["judge"] = std::move(judge);
  std::printf("speedup batch@4 vs pointer@1: %.2fx\n", speedup);

  // Attach telemetry only after the timed sections (this bench measures the
  // engine, bench_observability measures the instrumentation) and replay one
  // batch so the stamped snapshot carries real pipeline counters.
  workload.ids.AttachTelemetry(&MetricsRegistry::Global());
  const std::vector<Judgement> verdicts = workload.ids.JudgeBatch(workload.requests, 4);
  if (verdicts.size() != rows) std::abort();
  sidet::bench::StampTelemetry(report);

  std::ofstream out(out_path);
  out << report.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return fit_deterministic && memory_deterministic ? 0 : 1;
}
