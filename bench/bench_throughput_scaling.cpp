// Throughput scaling of the parallel training + batch inference engine.
//
// Three measurements, emitted to BENCH_throughput.json:
//   1. forest fit-time at 1/2/4/8 worker lanes (same fitted model at every
//      count — the JSON also records the byte-identity check);
//   2. memory training determinism: TrainFromCorpus at 1 vs 4 lanes must
//      serialize to the same bytes;
//   3. end-to-end judge throughput (instructions/sec) over a replayed
//      instruction stream: per-row pointer-tree judging (the baseline) vs
//      per-row compiled vs JudgeBatch through the flat arrays at 1/2/4/8
//      lanes. The acceptance bar is batch@4 >= 2x pointer@1.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/ids.h"
#include "datagen/corpus_generator.h"
#include "datagen/device_dataset.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "ml/compiled_tree.h"
#include "ml/random_forest.h"
#include "ml/sampling.h"
#include "util/json.h"

using namespace sidet;
using sidet::bench::GitDescribe;
using sidet::bench::MedianNs;

namespace {

constexpr int kRepetitions = 3;
// Judge-batch samples are sub-millisecond, so the batch section can afford a
// much deeper interleaved sample set; its medians feed the CI perf gate and
// the thread-scaling comparison, where run-to-run drift matters most.
constexpr int kBatchRepetitions = 15;
const std::vector<int> kThreadCounts = {1, 2, 4, 8};

// ~hours of simulated home time the replayed stream spans.
constexpr std::size_t kSnapshots = 32;
// Replay multiplier: the same instruction stream re-judged (bulk audit).
constexpr std::size_t kReplays = 8;

struct Workload {
  InstructionRegistry registry;
  GeneratedCorpus corpus;
  ContextIds ids;
  SmartHome home;
  std::vector<SensorSnapshot> snapshots;
  std::vector<SimTime> times;
  std::vector<ContextIds::JudgeRequest> requests;

  Workload()
      : registry(BuildStandardInstructionSet()),
        corpus([this] {
          CorpusConfig config;
          Result<GeneratedCorpus> generated = GenerateCorpus(config, registry);
          if (!generated.ok()) std::abort();
          return std::move(generated).value();
        }()),
        ids([this] {
          Result<ContextIds> built = BuildIdsFromScratch(registry, 99);
          if (!built.ok()) std::abort();
          return std::move(built).value();
        }()),
        home(BuildDemoHome(42)) {
    snapshots.reserve(kSnapshots);
    times.reserve(kSnapshots);
    for (std::size_t s = 0; s < kSnapshots; ++s) {
      home.Step(kSecondsPerHour);
      snapshots.push_back(home.Snapshot());
      times.push_back(home.now());
    }
    for (std::size_t r = 0; r < kReplays; ++r) {
      for (std::size_t s = 0; s < kSnapshots; ++s) {
        for (const Instruction& instruction : registry.all()) {
          if (!ids.detector().IsSensitive(instruction)) continue;
          if (!ids.memory().HasModel(instruction.category)) continue;
          requests.push_back({&instruction, &snapshots[s], times[s]});
        }
      }
    }
  }
};

double InstructionsPerSecond(std::size_t rows, double ns) {
  return ns <= 0 ? 0.0 : static_cast<double>(rows) * 1e9 / ns;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_throughput.json";
  Workload workload;

  Json report = Json::Object();
  report["bench"] = "throughput_scaling";
  report["git_describe"] = GitDescribe();
  report["hardware_concurrency"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  report["repetitions"] = static_cast<std::int64_t>(kRepetitions);

  // --- 1. forest fit-time vs worker lanes -------------------------------
  Result<DeviceDataset> window = BuildDeviceDataset(
      workload.corpus.corpus, DefaultConfigFor(DeviceCategory::kWindowAndLock));
  if (!window.ok()) {
    std::fprintf(stderr, "dataset build failed: %s\n", window.error().message().c_str());
    return 1;
  }
  Rng rng(1);
  const Dataset train = RandomOversample(window.value().data, rng);

  Json fit = Json::Array();
  std::string fit_reference;
  bool fit_deterministic = true;
  for (const int threads : kThreadCounts) {
    RandomForestParams params;
    params.threads = threads;
    std::string serialized;
    const double ns = MedianNs(kRepetitions, [&] {
      RandomForest forest(params);
      if (!forest.Fit(train).ok()) std::abort();
      serialized = forest.ToJson().Dump();
    });
    if (fit_reference.empty()) fit_reference = serialized;
    fit_deterministic = fit_deterministic && serialized == fit_reference;
    Json row = Json::Object();
    row["threads"] = static_cast<std::int64_t>(threads);
    row["fit_ms_median"] = ns / 1e6;
    fit.as_array().push_back(std::move(row));
    std::printf("forest fit  threads=%d  %8.2f ms\n", threads, ns / 1e6);
  }
  report["forest_fit"] = std::move(fit);
  report["forest_fit_bit_identical"] = fit_deterministic;

  // --- 2. memory training determinism across lane counts ----------------
  std::string memory_reference;
  bool memory_deterministic = true;
  for (const int threads : {1, 4}) {
    ContextFeatureMemory memory;
    MemoryTrainingOptions options;
    options.threads = threads;
    if (!memory.TrainFromCorpus(workload.corpus.corpus, options).ok()) std::abort();
    const std::string serialized = memory.ToJson().Dump();
    if (memory_reference.empty()) memory_reference = serialized;
    memory_deterministic = memory_deterministic && serialized == memory_reference;
  }
  report["memory_train_bit_identical"] = memory_deterministic;
  std::printf("memory train 1 vs 4 lanes bit-identical: %s\n",
              memory_deterministic ? "yes" : "NO");

  // --- 3. traversal kernel: pointer walk vs scalar flat walk vs SIMD ----
  // Same compiled forest, same rows; isolates the node-traversal cost from
  // the judge pipeline (grouping, featurization, verdicts).
  {
    RandomForestParams kernel_params;
    RandomForest kernel_forest(kernel_params);
    if (!kernel_forest.Fit(train).ok()) std::abort();
    const CompiledForest kernel_compiled = CompiledForest::Compile(kernel_forest);

    constexpr std::size_t kKernelRows = 8192;
    std::vector<const double*> kernel_ptrs(kKernelRows);
    for (std::size_t i = 0; i < kKernelRows; ++i) {
      kernel_ptrs[i] = train.row(i % train.size()).data();
    }
    std::vector<double> kernel_out(kKernelRows, 0.0);
    const std::size_t width = train.num_features();

    const double walk_ns = MedianNs(kRepetitions, [&] {
      for (std::size_t i = 0; i < kKernelRows; ++i) {
        kernel_out[i] = kernel_forest.PredictProbability({kernel_ptrs[i], width});
      }
    });
    const double scalar_ns = MedianNs(kRepetitions, [&] {
      kernel_compiled.PredictRowsScalar(kernel_ptrs.data(), kKernelRows, kernel_out.data());
    });
    const double simd_ns = MedianNs(kRepetitions, [&] {
      kernel_compiled.PredictRows(kernel_ptrs.data(), kKernelRows, kernel_out.data());
    });

    Json kernel = Json::Object();
    kernel["rows"] = static_cast<std::int64_t>(kKernelRows);
    kernel["pointer_walk_rows_per_sec"] = InstructionsPerSecond(kKernelRows, walk_ns);
    kernel["scalar_rows_per_sec"] = InstructionsPerSecond(kKernelRows, scalar_ns);
    kernel["simd_rows_per_sec"] = InstructionsPerSecond(kKernelRows, simd_ns);
    kernel["simd_vs_scalar"] = simd_ns <= 0 ? 0.0 : scalar_ns / simd_ns;
    kernel["simd_vs_pointer"] = simd_ns <= 0 ? 0.0 : walk_ns / simd_ns;
    std::printf("kernel pointer walk           %10.0f rows/s\n",
                InstructionsPerSecond(kKernelRows, walk_ns));
    std::printf("kernel scalar flat walk       %10.0f rows/s\n",
                InstructionsPerSecond(kKernelRows, scalar_ns));
    std::printf("kernel SIMD block lanes       %10.0f rows/s  (%.2fx scalar)\n",
                InstructionsPerSecond(kKernelRows, simd_ns), scalar_ns / simd_ns);

    // Single-tree lane: the judge path traverses one CompiledTree per device
    // family, so this is the shape of the hot-path traversal unit.
    DecisionTree lane_tree;
    if (!lane_tree.Fit(train).ok()) std::abort();
    const CompiledTree lane_compiled = CompiledTree::Compile(lane_tree);
    const double lane_scalar_ns = MedianNs(kRepetitions, [&] {
      for (std::size_t i = 0; i < kKernelRows; ++i) {
        kernel_out[i] = lane_compiled.PredictProbability({kernel_ptrs[i], width});
      }
    });
    const double lane_simd_ns = MedianNs(kRepetitions, [&] {
      lane_compiled.PredictRows(kernel_ptrs.data(), kKernelRows, kernel_out.data());
    });
    kernel["tree_nodes"] = static_cast<std::int64_t>(lane_compiled.node_count());
    kernel["tree_depth"] = static_cast<std::int64_t>(lane_compiled.depth());
    kernel["tree_scalar_rows_per_sec"] = InstructionsPerSecond(kKernelRows, lane_scalar_ns);
    kernel["tree_simd_rows_per_sec"] = InstructionsPerSecond(kKernelRows, lane_simd_ns);
    std::printf("tree lane scalar walk         %10.0f rows/s\n",
                InstructionsPerSecond(kKernelRows, lane_scalar_ns));
    std::printf("tree lane SIMD block          %10.0f rows/s  (%.2fx scalar)\n",
                InstructionsPerSecond(kKernelRows, lane_simd_ns),
                lane_scalar_ns / lane_simd_ns);
    report["kernel"] = std::move(kernel);
  }

  // --- 4. judge throughput: pointer per-row vs compiled batch -----------
  const std::size_t rows = workload.requests.size();
  report["judge_rows"] = static_cast<std::int64_t>(rows);

  workload.ids.EnableCompiledInference(false);
  const double pointer_ns = MedianNs(kRepetitions, [&] {
    for (const ContextIds::JudgeRequest& request : workload.requests) {
      Result<Judgement> judgement =
          workload.ids.Judge(*request.instruction, *request.snapshot, request.time);
      if (!judgement.ok()) std::abort();
    }
  });
  const double pointer_ops = InstructionsPerSecond(rows, pointer_ns);
  std::printf("judge pointer per-row         %10.0f instr/s\n", pointer_ops);

  workload.ids.EnableCompiledInference(true);
  const double compiled_row_ns = MedianNs(kRepetitions, [&] {
    for (const ContextIds::JudgeRequest& request : workload.requests) {
      Result<Judgement> judgement =
          workload.ids.Judge(*request.instruction, *request.snapshot, request.time);
      if (!judgement.ok()) std::abort();
    }
  });
  const double compiled_row_ops = InstructionsPerSecond(rows, compiled_row_ns);
  std::printf("judge compiled per-row        %10.0f instr/s\n", compiled_row_ops);

  Json judge = Json::Object();
  judge["pointer_per_row_ns_median"] = pointer_ns / static_cast<double>(rows);
  judge["pointer_per_row_instr_per_sec"] = pointer_ops;
  judge["compiled_per_row_ns_median"] = compiled_row_ns / static_cast<double>(rows);
  judge["compiled_per_row_instr_per_sec"] = compiled_row_ops;

  // Old row-at-a-time batch partitioning vs the vectorized SoA engine, side
  // by side at every lane count (EnableVectorizedBatch toggles the engine;
  // verdicts are bit-identical either way — vectorized_equiv_test), plus the
  // probability-only serving lane (ScoreBatch — the gateway's unit of work).
  // Samples are interleaved round-robin across configurations so
  // machine-speed drift on shared CI hardware lands on every configuration
  // evenly instead of on whichever ran last.
  struct BatchConfig {
    const char* engine;  // "legacy" | "vectorized" | "score"
    int threads;
    std::vector<double> samples_ns;
  };
  std::vector<BatchConfig> configs;
  for (const int threads : kThreadCounts) configs.push_back({"legacy", threads, {}});
  for (const int threads : kThreadCounts) configs.push_back({"vectorized", threads, {}});
  configs.push_back({"score", 1, {}});

  std::vector<double> probabilities(rows, 0.0);
  // Warm every engine's scratch before the timed samples.
  workload.ids.EnableVectorizedBatch(false);
  (void)workload.ids.JudgeBatch(workload.requests, 1);
  workload.ids.EnableVectorizedBatch(true);
  (void)workload.ids.JudgeBatch(workload.requests, 1);
  if (!workload.ids.ScoreBatch(workload.requests, probabilities, 1).ok()) std::abort();

  for (int rep = 0; rep < kBatchRepetitions; ++rep) {
    for (BatchConfig& config : configs) {
      if (std::string_view(config.engine) == "score") {
        config.samples_ns.push_back(sidet::bench::TimeNs([&] {
          if (!workload.ids.ScoreBatch(workload.requests, probabilities, 1).ok()) {
            std::abort();
          }
        }));
        continue;
      }
      workload.ids.EnableVectorizedBatch(std::string_view(config.engine) == "vectorized");
      config.samples_ns.push_back(sidet::bench::TimeNs([&] {
        const std::vector<Judgement> verdicts =
            workload.ids.JudgeBatch(workload.requests, config.threads);
        if (verdicts.size() != rows) std::abort();
      }));
    }
  }
  workload.ids.EnableVectorizedBatch(true);

  const auto median_ns = [](std::vector<double>& samples) {
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };
  Json legacy_batch = Json::Array();
  Json batch = Json::Array();
  double legacy1_ops = 0.0;
  double batch1_ops = 0.0;
  double batch4_ops = 0.0;
  double score_ops = 0.0;
  for (BatchConfig& config : configs) {
    const double ns = median_ns(config.samples_ns);
    const double ops = InstructionsPerSecond(rows, ns);
    const std::string_view engine = config.engine;
    if (engine == "score") {
      score_ops = ops;
      std::printf("score lane (ScoreBatch) t=1   %10.0f instr/s\n", ops);
      continue;
    }
    Json row = Json::Object();
    row["threads"] = static_cast<std::int64_t>(config.threads);
    row["ns_per_instr_median"] = ns / static_cast<double>(rows);
    row["instr_per_sec"] = ops;
    if (engine == "legacy") {
      if (config.threads == 1) legacy1_ops = ops;
      legacy_batch.as_array().push_back(std::move(row));
      std::printf("judge legacy batch t=%d        %10.0f instr/s\n", config.threads, ops);
    } else {
      if (config.threads == 1) batch1_ops = ops;
      if (config.threads == 4) batch4_ops = ops;
      batch.as_array().push_back(std::move(row));
      std::printf("judge compiled batch t=%d      %10.0f instr/s\n", config.threads, ops);
    }
  }
  judge["legacy_batch"] = std::move(legacy_batch);
  judge["compiled_batch"] = std::move(batch);
  // The single-thread SIMD scoring lane: probability-only batch scoring
  // through the SoA kernel, no verdict/audit materialization.
  judge["simd_lane_instr_per_sec"] = score_ops;
  const double speedup = pointer_ops <= 0 ? 0.0 : batch4_ops / pointer_ops;
  judge["speedup_batch4_vs_pointer1"] = speedup;
  judge["speedup_vectorized1_vs_legacy1"] = legacy1_ops <= 0 ? 0.0 : batch1_ops / legacy1_ops;
  report["judge"] = std::move(judge);
  std::printf("speedup batch@4 vs pointer@1: %.2fx\n", speedup);
  std::printf("speedup vectorized@1 vs legacy@1: %.2fx\n",
              legacy1_ops <= 0 ? 0.0 : batch1_ops / legacy1_ops);

  // Attach telemetry only after the timed sections (this bench measures the
  // engine, bench_observability measures the instrumentation) and replay one
  // batch so the stamped snapshot carries real pipeline counters.
  workload.ids.AttachTelemetry(&MetricsRegistry::Global());
  const std::vector<Judgement> verdicts = workload.ids.JudgeBatch(workload.requests, 4);
  if (verdicts.size() != rows) std::abort();
  sidet::bench::StampCalibration(report);
  sidet::bench::StampTelemetry(report);

  std::ofstream out(out_path);
  out << report.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return fit_deterministic && memory_deterministic ? 0 : 1;
}
