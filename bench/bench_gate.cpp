// Perf-regression gate over committed BENCH_*.json baselines.
//
//   bench_gate <baseline.json> <candidate.json> [--tolerance 0.10]
//              [--report gate_report.json]
//
// Reads a committed baseline artefact and a freshly produced candidate of the
// same bench (matched on the "bench" field), compares a fixed set of hot-path
// medians, and exits non-zero when any metric regresses by more than the
// tolerance. CI runs it once per artefact and uploads the report JSON as the
// build's diff record.
//
// Two defenses against runner noise, without which a 10% gate on raw
// wall-clock flakes on every machine swap or noisy-neighbour phase:
//
//   * both artefacts carry "calibration_ops_per_sec" — a fixed deterministic
//     workload timed in the same process run (bench_json.h). Candidate
//     metrics are rescaled by baseline_cal / candidate_cal, so the gate
//     compares work per calibrated op, not seconds. Artefacts produced before
//     the stamp existed fall back to raw comparison.
//   * only medians of repeated samples are gated (the benches interleave
//     their samples round-robin across configurations to de-trend drift).
//
// The metric tables mirror DESIGN.md §15: the serving-lane throughputs that
// PR 7 optimized are exactly the ones the gate refuses to give back.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

namespace {

using sidet::Json;
using sidet::Result;

struct Metric {
  const char* path;  // dotted, array steps by integer ("judge.compiled_batch.0...")
  const char* label;
  bool higher_is_better;
};

// Hot-path medians gated per artefact. Throughput lanes regress when they
// drop; the batched gateway p50 regresses when it rises.
constexpr Metric kThroughputMetrics[] = {
    {"judge.compiled_batch.0.instr_per_sec", "judge compiled batch t=1", true},
    {"judge.compiled_batch.1.instr_per_sec", "judge compiled batch t=2", true},
    {"judge.legacy_batch.0.instr_per_sec", "judge legacy batch t=1", true},
    {"judge.simd_lane_instr_per_sec", "score lane t=1", true},
    {"judge.compiled_per_row_instr_per_sec", "judge compiled per-row", true},
    {"kernel.tree_simd_rows_per_sec", "tree block kernel", true},
    {"kernel.simd_rows_per_sec", "forest block kernel", true},
};

constexpr Metric kGatewayMetrics[] = {
    {"batching.batch1.throughput_rps", "gateway rps batch=1", true},
    {"batching.batched.throughput_rps", "gateway rps batched", true},
    {"batching.lane.batched_rps", "gateway judge lane batched", true},
    {"batching.batched.latency_ms.p50", "gateway batched p50 ms", false},
};

// Observability-path throughputs and micro-cost medians: the interleaved
// IqMean lanes of bench_observability (the recorder lane is the PR 8
// satellite — a flight-recorder staging regression shows up here before it
// shows up as an overhead-budget breach) plus the hottest primitive medians.
constexpr Metric kObservabilityMetrics[] = {
    {"judge_batch.detached_instr_per_sec", "judge batch detached", true},
    {"judge_batch.metrics_instr_per_sec", "judge batch metrics", true},
    {"judge_batch.traced_instr_per_sec", "judge batch traced", true},
    {"judge_batch.recorder_instr_per_sec", "judge batch recorder", true},
    {"micro_ns_per_op.counter_increment_ns", "counter increment ns", false},
    {"micro_ns_per_op.histogram_observe_ns", "histogram observe ns", false},
    {"gateway_e2e.traced_rps", "gateway e2e traced rps", true},
};

// Fleet serving medians: the coverage sweep and Zipf steady-state rates are
// throughputs; the cold-start tail is a latency (regresses when it rises).
constexpr Metric kFleetMetrics[] = {
    {"coverage.sweep_rps", "fleet coverage sweep rps", true},
    {"zipf.aggregate_rps", "fleet zipf aggregate rps", true},
    {"cold_start.p99_ms", "fleet cold-start p99 ms", false},
};

Result<Json> LoadJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) return sidet::Error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Json::Parse(buffer.str());
}

// Dotted-path lookup; an all-digit step indexes into an array.
const Json* Lookup(const Json& root, const char* path) {
  const Json* node = &root;
  const char* p = path;
  while (*p != '\0') {
    const char* dot = std::strchr(p, '.');
    const std::size_t len = dot == nullptr ? std::strlen(p) : static_cast<std::size_t>(dot - p);
    const std::string step(p, len);
    if (node->is_array()) {
      char* end = nullptr;
      const long index = std::strtol(step.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || index < 0 ||
          static_cast<std::size_t>(index) >= node->as_array().size()) {
        return nullptr;
      }
      node = &node->as_array()[static_cast<std::size_t>(index)];
    } else {
      node = node->find(step);
      if (node == nullptr) return nullptr;
    }
    p = dot == nullptr ? p + len : dot + 1;
  }
  return node->is_number() ? node : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  double tolerance = 0.10;
  std::string report_path = "gate_report.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_gate <baseline.json> <candidate.json>"
                 " [--tolerance 0.10] [--report gate_report.json]\n");
    return 2;
  }

  Result<Json> baseline = LoadJson(baseline_path);
  Result<Json> candidate = LoadJson(candidate_path);
  if (!baseline.ok() || !candidate.ok()) {
    std::fprintf(stderr, "failed to load artefacts: %s / %s\n",
                 baseline.ok() ? "ok" : baseline.error().message().c_str(),
                 candidate.ok() ? "ok" : candidate.error().message().c_str());
    return 2;
  }
  const Json base = std::move(baseline).value();
  const Json cand = std::move(candidate).value();

  const std::string bench = base.string_or("bench", "");
  if (bench != cand.string_or("bench", "")) {
    std::fprintf(stderr, "artefact mismatch: baseline is '%s', candidate is '%s'\n",
                 bench.c_str(), cand.string_or("bench", "?").c_str());
    return 2;
  }
  const Metric* metrics = nullptr;
  std::size_t metric_count = 0;
  if (bench == "throughput_scaling") {
    metrics = kThroughputMetrics;
    metric_count = std::size(kThroughputMetrics);
  } else if (bench == "gateway") {
    metrics = kGatewayMetrics;
    metric_count = std::size(kGatewayMetrics);
  } else if (bench == "observability") {
    metrics = kObservabilityMetrics;
    metric_count = std::size(kObservabilityMetrics);
  } else if (bench == "fleet") {
    metrics = kFleetMetrics;
    metric_count = std::size(kFleetMetrics);
  } else {
    std::fprintf(stderr, "no gate table for bench '%s'\n", bench.c_str());
    return 2;
  }

  // Scale the candidate into the baseline machine's frame. A candidate run on
  // a machine measured 2x faster on the calibration workload must also be 2x
  // faster on the hot paths just to tie.
  const double base_cal = base.number_or("calibration_ops_per_sec", 0.0);
  const double cand_cal = cand.number_or("calibration_ops_per_sec", 0.0);
  const bool calibrated = base_cal > 0.0 && cand_cal > 0.0;
  const double speed_ratio = calibrated ? base_cal / cand_cal : 1.0;

  Json report = Json::Object();
  report["bench"] = bench;
  report["baseline"] = baseline_path;
  report["candidate"] = candidate_path;
  report["tolerance"] = tolerance;
  report["calibrated"] = calibrated;
  report["machine_speed_ratio"] = calibrated ? cand_cal / base_cal : 1.0;
  Json rows = Json::Array();

  int failures = 0;
  std::printf("bench_gate: %s, tolerance %.0f%%, %s\n", bench.c_str(), tolerance * 100.0,
              calibrated ? "calibration-normalized" : "raw (no calibration stamp)");
  for (std::size_t m = 0; m < metric_count; ++m) {
    const Metric& metric = metrics[m];
    const Json* base_value = Lookup(base, metric.path);
    const Json* cand_value = Lookup(cand, metric.path);
    Json row = Json::Object();
    row["metric"] = metric.label;
    row["path"] = metric.path;
    if (base_value == nullptr) {
      // Baseline predates the metric: record, never fail — new metrics must
      // be addable without invalidating committed artefacts.
      row["status"] = "missing_in_baseline";
      rows.as_array().push_back(std::move(row));
      std::printf("  skip %-28s (not in baseline)\n", metric.label);
      continue;
    }
    if (cand_value == nullptr) {
      row["status"] = "missing_in_candidate";
      rows.as_array().push_back(std::move(row));
      std::printf("  FAIL %-28s missing from candidate\n", metric.label);
      ++failures;
      continue;
    }
    const double expected = base_value->as_number();
    // Throughputs scale with machine speed; latencies scale inversely.
    const double normalized =
        cand_value->as_number() * (metric.higher_is_better ? speed_ratio : 1.0 / speed_ratio);
    const double change = metric.higher_is_better ? normalized / expected - 1.0
                                                  : expected / normalized - 1.0;
    const bool pass = change >= -tolerance;
    row["baseline_value"] = expected;
    row["candidate_value"] = cand_value->as_number();
    row["candidate_normalized"] = normalized;
    row["change"] = change;
    row["status"] = pass ? "pass" : "fail";
    rows.as_array().push_back(std::move(row));
    std::printf("  %s %-28s base %12.1f  cand %12.1f (norm %12.1f)  %+6.1f%%\n",
                pass ? "ok  " : "FAIL", metric.label, expected, cand_value->as_number(),
                normalized, change * 100.0);
    if (!pass) ++failures;
  }
  report["metrics"] = std::move(rows);
  report["failures"] = static_cast<double>(failures);

  std::ofstream out(report_path);
  out << report.Dump() << "\n";
  std::printf("bench_gate: %d failure(s), report %s\n", failures, report_path.c_str());
  return failures == 0 ? 0 : 1;
}
