// Ablation A5 — cross-home generalization (the §VI future-work question:
// does a model trained once transfer beyond the single lab deployment?).
//
// Trains the IDS once from the strategy corpus, then evaluates attack
// interception and false blocks on a fleet of randomized homes — different
// room counts, climates, occupant schedules, device sets and vendor splits.
// Per home: interception rate over the attack library, false-block rate over
// the home's own legitimate automations, and the audit log's block rate.
#include <cstdio>

#include "attacks/attack_generator.h"
#include "automation/engine.h"
#include "core/audit.h"
#include "core/ids.h"
#include "datagen/corpus_generator.h"
#include "home/home_builder.h"
#include "instructions/standard_instruction_set.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sidet;

int main(int argc, char** argv) {
  ArgParser args;
  args.AddFlag("homes", "8", "fleet size");
  args.AddFlag("days", "7", "simulated days per home");
  args.AddFlag("seed", "2021", "training/corpus seed");
  if (const Status parsed = args.Parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.error().message().c_str(),
                 args.Help("bench_fleet_generalization").c_str());
    return 1;
  }

  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> ids =
      BuildIdsFromScratch(registry, static_cast<std::uint64_t>(args.GetInt("seed")));
  if (!ids.ok()) {
    std::fprintf(stderr, "ids: %s\n", ids.error().message().c_str());
    return 1;
  }
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  if (!corpus.ok()) return 1;

  AuditLog audit;
  ids.value().SetAuditLog(&audit);

  std::printf("FLEET GENERALIZATION — one trained IDS across %lld randomized homes\n\n",
              static_cast<long long>(args.GetInt("homes")));
  TextTable table({"Home", "Rooms", "Occupants", "Season C", "Attacks intercepted",
                   "Legit firings", "Falsely blocked"});

  int fleet_attacks = 0;
  int fleet_intercepted = 0;
  std::size_t fleet_legit = 0;
  std::size_t fleet_blocked = 0;

  const int homes = static_cast<int>(args.GetInt("homes"));
  const int minutes = static_cast<int>(args.GetInt("days")) * 24 * 60;
  for (int h = 0; h < homes; ++h) {
    SmartHome home = BuildRandomHome(HomeConfig{}, 9000 + static_cast<std::uint64_t>(h));
    AttackGenerator attacker(home, registry, 77 + static_cast<std::uint64_t>(h));

    RuleEngine engine(registry, home);
    std::size_t installed = 0;
    for (const Rule* rule : corpus.value().corpus.ByPopularity()) {
      if (installed >= 20) break;
      engine.AddRule(*rule);
      ++installed;
    }
    engine.SetGuard(ids.value().AsGuard());

    Rng rng(31337 + static_cast<std::uint64_t>(h));
    std::size_t legit = 0;
    std::size_t blocked = 0;
    int attacks = 0;
    int intercepted = 0;
    for (int minute = 0; minute < minutes; ++minute) {
      home.Step(kSecondsPerMinute);
      for (const FiredAction& action : engine.Poll()) {
        if (action.execute_failed) continue;
        ++legit;
        if (action.blocked) ++blocked;
      }
      if (rng.Bernoulli(1.0 / 180.0)) {  // an attack every ~3 hours
        const AttackKind kind = AllAttackKinds()[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(kAttackKindCount) - 1))];
        Result<AttackAttempt> attempt = attacker.Launch(kind);
        if (!attempt.ok()) continue;
        Result<Judgement> judgement =
            ids.value().Judge(*attempt.value().instruction, home.Snapshot(), home.now());
        ++attacks;
        if (!judgement.ok() || !judgement.value().allowed) ++intercepted;
        attacker.Cleanup(attempt.value());
      }
    }

    fleet_attacks += attacks;
    fleet_intercepted += intercepted;
    fleet_legit += legit;
    fleet_blocked += blocked;
    table.AddRow({Format("home_%d", h), std::to_string(home.rooms().size()),
                  std::to_string(home.occupants().size()),
                  Format("%.1f", home.outdoor().temperature_c),
                  Format("%d/%d", intercepted, attacks), std::to_string(legit),
                  std::to_string(blocked)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("fleet totals: %d/%d attacks intercepted (%.1f%%), %zu/%zu legitimate "
              "firings falsely blocked (%.2f%%)\n",
              fleet_intercepted, fleet_attacks,
              fleet_attacks == 0 ? 0.0 : 100.0 * fleet_intercepted / fleet_attacks,
              fleet_blocked, fleet_legit,
              fleet_legit == 0 ? 0.0
                               : 100.0 * static_cast<double>(fleet_blocked) /
                                     static_cast<double>(fleet_legit));
  std::printf("audit log: %zu judgements recorded, sensitive block rate %.3f\n\n",
              audit.size(), audit.BlockRate());
  std::printf("Shape check: interception stays high across homes the models never saw,\n"
              "and the false-block rate stays inside the models' Table VI FNR band\n"
              "(<= ~7%%) — the context features are device-family properties, not\n"
              "single-home artifacts.\n");
  return 0;
}
