// Regenerates Fig 7 — "Camera warning statistics": the census of the 319
// camera-warning automation strategies by trigger kind (§V, Security
// camera).
#include <cstdio>

#include "datagen/corpus_generator.h"
#include "instructions/standard_instruction_set.h"
#include "util/table.h"

using namespace sidet;

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CorpusConfig config;
  Result<GeneratedCorpus> generated = GenerateCorpus(config, registry);
  if (!generated.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n", generated.error().message().c_str());
    return 1;
  }

  int total = 0;
  for (const auto& [trigger, count] : generated.value().camera_census) total += count;

  std::printf("FIG 7 — Camera warning statistics (reproduction)\n\n");
  std::printf("camera-warning strategies analyzed: %d (paper: 319)\n\n", total);

  BarChart chart("Warning linkage by trigger kind");
  for (const auto& [trigger, count] : generated.value().camera_census) {
    chart.Add(trigger, static_cast<double>(count));
  }
  std::printf("%s\n", chart.Render().c_str());

  std::printf("Paper shape check: door/window openings dominate the warning linkages,\n"
              "followed by smoke/fire, water and combustible-gas detections — exactly the\n"
              "hazard set the paper proactively forwards to the user.\n");
  return 0;
}
