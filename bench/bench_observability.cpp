// Instrumentation overhead of the telemetry substrate, emitted to
// BENCH_observability.json.
//
// Three JudgeBatch configurations over the same replayed instruction stream:
//   1. detached  — no registry, no tracer: instrumentation is a pointer test
//                  (the "registry absent" mode);
//   2. metrics   — registry attached, no exporter polling: the production
//                  configuration. Acceptance: < 2% throughput regression vs
//                  detached;
//   3. traced    — registry + span tracer: full pipeline tracing on.
//
// Plus micro-costs of the primitives (counter increment, histogram observe,
// gauge set, span record, and the null-gated no-op) and of the three
// exporters over the populated registry/tracer.
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/ids.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/json.h"

using namespace sidet;
using sidet::bench::GitDescribe;
using sidet::bench::MedianNs;

namespace {

constexpr int kRepetitions = 7;
constexpr std::size_t kSnapshots = 32;
constexpr std::size_t kReplays = 8;
constexpr int kMicroOps = 1'000'000;

struct Workload {
  InstructionRegistry registry;
  ContextIds ids;
  SmartHome home;
  std::vector<SensorSnapshot> snapshots;
  std::vector<SimTime> times;
  std::vector<ContextIds::JudgeRequest> requests;

  Workload()
      : registry(BuildStandardInstructionSet()),
        ids([this] {
          Result<ContextIds> built = BuildIdsFromScratch(registry, 99);
          if (!built.ok()) std::abort();
          return std::move(built).value();
        }()),
        home(BuildDemoHome(42)) {
    for (std::size_t s = 0; s < kSnapshots; ++s) {
      home.Step(kSecondsPerHour);
      snapshots.push_back(home.Snapshot());
      times.push_back(home.now());
    }
    for (std::size_t r = 0; r < kReplays; ++r) {
      for (std::size_t s = 0; s < kSnapshots; ++s) {
        for (const Instruction& instruction : registry.all()) {
          if (!ids.detector().IsSensitive(instruction)) continue;
          if (!ids.memory().HasModel(instruction.category)) continue;
          requests.push_back({&instruction, &snapshots[s], times[s]});
        }
      }
    }
  }
};

double InstructionsPerSecond(std::size_t rows, double ns) {
  return ns <= 0 ? 0.0 : static_cast<double>(rows) * 1e9 / ns;
}

// Median JudgeBatch wall time for the current telemetry attachment.
double BatchNs(Workload& workload) {
  const std::size_t rows = workload.requests.size();
  return MedianNs(kRepetitions, [&] {
    const std::vector<Judgement> verdicts = workload.ids.JudgeBatch(workload.requests, 1);
    if (verdicts.size() != rows) std::abort();
  });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_observability.json";
  Workload workload;
  const std::size_t rows = workload.requests.size();

  Json report = Json::Object();
  report["bench"] = "observability";
  report["git_describe"] = GitDescribe();
  report["hardware_concurrency"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  report["repetitions"] = static_cast<std::int64_t>(kRepetitions);
  report["judge_rows"] = static_cast<std::int64_t>(rows);

  // --- JudgeBatch throughput across the three attachment modes ----------
  workload.ids.AttachTelemetry(nullptr);
  const double detached_ns = BatchNs(workload);
  const double detached_ops = InstructionsPerSecond(rows, detached_ns);
  std::printf("judge batch, telemetry detached   %10.0f instr/s\n", detached_ops);

  MetricsRegistry& registry = MetricsRegistry::Global();
  workload.ids.AttachTelemetry(&registry);
  const double metrics_ns = BatchNs(workload);
  const double metrics_ops = InstructionsPerSecond(rows, metrics_ns);
  std::printf("judge batch, metrics attached     %10.0f instr/s\n", metrics_ops);

  SpanTracer tracer({}, /*capacity=*/1 << 20);
  workload.ids.AttachTelemetry(&registry, &tracer);
  const double traced_ns = BatchNs(workload);
  const double traced_ops = InstructionsPerSecond(rows, traced_ns);
  std::printf("judge batch, metrics + tracer     %10.0f instr/s\n", traced_ops);
  workload.ids.AttachTelemetry(&registry);  // keep metrics on for the stamp

  const double metrics_overhead_pct = (metrics_ns - detached_ns) / detached_ns * 100.0;
  const double traced_overhead_pct = (traced_ns - detached_ns) / detached_ns * 100.0;
  std::printf("overhead: metrics %+.2f%%, metrics+tracer %+.2f%%\n", metrics_overhead_pct,
              traced_overhead_pct);

  Json batch = Json::Object();
  batch["detached_instr_per_sec"] = detached_ops;
  batch["metrics_instr_per_sec"] = metrics_ops;
  batch["traced_instr_per_sec"] = traced_ops;
  batch["metrics_overhead_pct"] = metrics_overhead_pct;
  batch["traced_overhead_pct"] = traced_overhead_pct;
  batch["acceptance_metrics_overhead_below_pct"] = 2.0;
  report["judge_batch"] = std::move(batch);

  // --- micro-costs of the primitives ------------------------------------
  Counter* counter = registry.GetCounter("sidet_bench_micro_total");
  Gauge* gauge = registry.GetGauge("sidet_bench_micro_gauge");
  Histogram* histogram = registry.GetHistogram("sidet_bench_micro_seconds");
  SpanTracer micro_tracer({}, /*capacity=*/16);  // saturates: measures the drop path too

  Json micro = Json::Object();
  const auto per_op_ns = [](double total_ns) { return total_ns / kMicroOps; };
  micro["counter_increment_ns"] = per_op_ns(MedianNs(3, [&] {
    for (int i = 0; i < kMicroOps; ++i) counter->Increment();
  }));
  micro["gauge_set_ns"] = per_op_ns(MedianNs(3, [&] {
    for (int i = 0; i < kMicroOps; ++i) gauge->Set(static_cast<double>(i));
  }));
  micro["histogram_observe_ns"] = per_op_ns(MedianNs(3, [&] {
    for (int i = 0; i < kMicroOps; ++i) histogram->Observe(1e-4);
  }));
  micro["trace_span_ns"] = per_op_ns(MedianNs(3, [&] {
    for (int i = 0; i < kMicroOps; ++i) {
      TraceSpan span(&micro_tracer, "micro");
    }
  }));
  micro["null_gated_span_ns"] = per_op_ns(MedianNs(3, [&] {
    for (int i = 0; i < kMicroOps; ++i) {
      TraceSpan span(nullptr, "micro");
    }
  }));
  report["micro_ns_per_op"] = std::move(micro);

  // --- exporter costs over the populated registry/tracer -----------------
  Json exporters = Json::Object();
  exporters["prometheus_text_us"] = MedianNs(5, [&] {
    const std::string text = PrometheusText(registry);
    if (text.empty()) std::abort();
  }) / 1e3;
  exporters["metrics_snapshot_json_us"] = MedianNs(5, [&] {
    const Json snapshot = MetricsSnapshotJson(registry);
    if (!snapshot.is_object()) std::abort();
  }) / 1e3;
  exporters["chrome_trace_json_us"] = MedianNs(5, [&] {
    const Json trace = ChromeTraceJson(tracer);
    if (!trace.is_object()) std::abort();
  }) / 1e3;
  exporters["trace_spans"] = static_cast<std::int64_t>(tracer.size());
  report["exporters"] = std::move(exporters);

  sidet::bench::StampTelemetry(report);
  std::ofstream out(out_path);
  out << report.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (metrics_overhead_pct >= 2.0) {
    std::fprintf(stderr, "FAIL: metrics overhead %.2f%% exceeds the 2%% budget\n",
                 metrics_overhead_pct);
    return 1;
  }
  return 0;
}
