// Instrumentation overhead of the telemetry substrate, emitted to
// BENCH_observability.json.
//
// Four JudgeBatch configurations over the same replayed instruction stream:
//   1. detached  — no registry, no tracer: instrumentation is a pointer test
//                  (the "registry absent" mode);
//   2. metrics   — registry attached, no exporter polling: the production
//                  configuration. Acceptance: < 2% throughput regression vs
//                  detached;
//   3. traced    — registry + span tracer: full pipeline tracing on;
//   4. recorder  — flight recorder attached, background flusher idle during
//                  the timed pass, ring drained between repetitions exactly
//                  as the production flush cadence would. Acceptance: < 2%
//                  regression vs detached.
//
// Measurement design: a single JudgeBatch pass lasts ~1 ms, and on a shared
// box the wall clock carries ±25% noise at that scale — far above the 2%
// budget. The modes are therefore sampled interleaved (one pass per mode per
// repetition, many repetitions) so every mode sees the same machine phases,
// and reduced with an interquartile mean, which discards the scheduler
// outliers a median-of-few cannot.
//
// Plus micro-costs of the primitives (counter increment, histogram observe,
// gauge set, span record, and the null-gated no-op), the three exporters
// over the populated registry/tracer, and the gateway end-to-end cost of
// request tracing: the same loopback serving stack measured with
// RequestTracing attached vs detached (paired bursts, interquartile mean),
// gated at < 2% throughput overhead. The traced stack also exports one
// tail-sampled exemplar as a Chrome trace_event document so CI can archive a
// loadable span tree next to the numbers.
//
// DESIGN.md §17 additions, measured and gated the same way:
//   * attribution path — per-row ExplainBatch cost (informational: it is a
//     second deliberate tree walk), attribution-capture cost with a recorder
//     attached (informational), and the *armed* cost: capture enabled but no
//     observer — the only thing the serving hot path ever pays for the
//     explain machinery existing — gated < 2% vs detached;
//   * time-series sampler — JudgeBatch throughput with a TimeSeriesStore
//     sampling the registry at 10 ms (100x the production 1 s cadence) vs
//     sampler off, paired per repetition, gated < 2%; plus the direct
//     SampleNow cost over the populated registry.
//
// Finally the ops surface end to end: a gateway with AttachOps'd store, SLO
// engine and drift monitor serves a burst, gets sampled, and its `health`
// per-home scorecard is archived as a JSON artifact next to the numbers.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/ids.h"
#include "core/model_store.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "replay/drift_monitor.h"
#include "replay/flight_recorder.h"
#include "server/client.h"
#include "server/gateway.h"
#include "server/loadgen.h"
#include "server/router.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "telemetry/slo.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "telemetry/tracing.h"
#include "util/json.h"

using namespace sidet;
using sidet::bench::GitDescribe;
using sidet::bench::MedianNs;

namespace {

constexpr int kRepetitions = 100;
constexpr std::size_t kSnapshots = 32;
constexpr std::size_t kReplays = 8;
constexpr int kMicroOps = 1'000'000;

struct Workload {
  InstructionRegistry registry;
  ContextIds ids;
  SmartHome home;
  std::vector<SensorSnapshot> snapshots;
  std::vector<SimTime> times;
  std::vector<ContextIds::JudgeRequest> requests;

  Workload()
      : registry(BuildStandardInstructionSet()),
        ids([this] {
          Result<ContextIds> built = BuildIdsFromScratch(registry, 99);
          if (!built.ok()) std::abort();
          return std::move(built).value();
        }()),
        home(BuildDemoHome(42)) {
    for (std::size_t s = 0; s < kSnapshots; ++s) {
      home.Step(kSecondsPerHour);
      snapshots.push_back(home.Snapshot());
      times.push_back(home.now());
    }
    for (std::size_t r = 0; r < kReplays; ++r) {
      for (std::size_t s = 0; s < kSnapshots; ++s) {
        for (const Instruction& instruction : registry.all()) {
          if (!ids.detector().IsSensitive(instruction)) continue;
          if (!ids.memory().HasModel(instruction.category)) continue;
          requests.push_back({&instruction, &snapshots[s], times[s]});
        }
      }
    }
  }
};

double InstructionsPerSecond(std::size_t rows, double ns) {
  return ns <= 0 ? 0.0 : static_cast<double>(rows) * 1e9 / ns;
}

// One timed JudgeBatch pass under whatever attachment the caller set up.
double OneBatchNs(Workload& workload) {
  const std::size_t rows = workload.requests.size();
  return sidet::bench::TimeNs([&] {
    const std::vector<Judgement> verdicts = workload.ids.JudgeBatch(workload.requests, 1);
    if (verdicts.size() != rows) std::abort();
  });
}

// Mean of the middle half of the samples: robust to the one-sided scheduler
// spikes of a shared box, and converges ~2x faster than a median.
double IqMean(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t lo = samples.size() / 4;
  const std::size_t hi = samples.size() - lo;
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += samples[i];
  return sum / static_cast<double>(hi - lo);
}

// One full serving stack over loopback TCP, with or without request tracing
// attached. Everything else (no metrics registry, default batch policy) is
// identical between the two configurations so the delta is the tracing cost
// alone: id assignment at admission, per-stage stamps through the batcher,
// and finalization into the tail store at writeback.
struct GatewayUnderTest {
  RequestTracing tracing;
  GatewayRouter router;
  Gateway gateway;

  GatewayUnderTest(const InstructionRegistry& registry, const std::string& model_path,
                   const SensorSnapshot& context, bool traced)
      : tracing(RequestTracingOptions{}, nullptr),
        router(BatchPolicy{}, nullptr, nullptr, traced ? &tracing : nullptr),
        gateway(router, registry, GatewayConfig{}, nullptr, nullptr,
                traced ? &tracing : nullptr) {
    if (!router.AddHomeFromModel("default", model_path).ok()) std::abort();
    if (!router.SetContext("default", context).ok()) std::abort();
    if (!gateway.Start().ok()) std::abort();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_observability.json";
  const std::string exemplar_path =
      argc > 2 ? argv[2] : "BENCH_observability_exemplar.json";
  Workload workload;
  const std::size_t rows = workload.requests.size();

  Json report = Json::Object();
  report["bench"] = "observability";
  report["git_describe"] = GitDescribe();
  report["hardware_concurrency"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  report["repetitions"] = static_cast<std::int64_t>(kRepetitions);
  report["judge_rows"] = static_cast<std::int64_t>(rows);

  // --- JudgeBatch throughput across the four attachment modes -----------
  //
  // The four modes are interleaved within each repetition (paired sampling)
  // instead of measured as four back-to-back blocks: on a busy single-core
  // box the clock drifts by far more than the 2% budget over the course of a
  // block, so a sequential layout systematically charges whichever mode runs
  // last with the drift. Pairing puts every mode's k-th sample under the
  // same machine conditions; the per-mode median then cancels the drift.
  MetricsRegistry& registry = MetricsRegistry::Global();
  SpanTracer tracer({}, /*capacity=*/1 << 20);

  // Recorder: telemetry stays detached during its samples so the measurement
  // isolates the observer staging cost. The flusher interval is parked far
  // beyond the run so the background thread sleeps while a batch is timed;
  // the explicit (untimed) Flush after each repetition then drains the ring
  // the way the production 50 ms cadence would, keeping the staging working
  // set at its steady-state depth instead of accumulating every repetition.
  FlightRecorderOptions recorder_options;
  recorder_options.path = out_path + ".session.ndjson";
  recorder_options.ring_capacity = rows * 4;
  recorder_options.flush_interval_ms = 600'000;
  FlightRecorder recorder(recorder_options);
  if (!recorder.StartSession(workload.ids.memory().Fingerprint()).ok()) std::abort();

  workload.ids.AttachTelemetry(nullptr);
  (void)OneBatchNs(workload);  // warm-up: page in the model + workload

  // Mode order rotates each repetition so no mode systematically inherits a
  // fixed neighbour's after-effects (the recorder drain's writeback, the
  // tracer's cache footprint, ...).
  enum { kDetached = 0, kMetrics, kTraced, kRecorder, kModes };
  std::vector<double> samples[kModes];
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (int slot = 0; slot < kModes; ++slot) {
      const int mode = (rep + slot) % kModes;
      switch (mode) {
        case kDetached: workload.ids.AttachTelemetry(nullptr); break;
        case kMetrics: workload.ids.AttachTelemetry(&registry); break;
        case kTraced: workload.ids.AttachTelemetry(&registry, &tracer); break;
        case kRecorder:
          workload.ids.AttachTelemetry(nullptr);
          workload.ids.SetVerdictObserver(&recorder);
          break;
      }
      samples[mode].push_back(OneBatchNs(workload));
      if (mode == kRecorder) {
        workload.ids.SetVerdictObserver(nullptr);
        // Drain outside the clock; the last repetition is left staged so the
        // timed Flush below serializes one repetition's rows.
        if (rep + 1 < kRepetitions) recorder.Flush();
      }
    }
  }

  const double detached_ns = IqMean(samples[kDetached]);
  const double metrics_ns = IqMean(samples[kMetrics]);
  const double traced_ns = IqMean(samples[kTraced]);
  const double recorder_ns = IqMean(samples[kRecorder]);
  const double detached_ops = InstructionsPerSecond(rows, detached_ns);
  const double metrics_ops = InstructionsPerSecond(rows, metrics_ns);
  const double traced_ops = InstructionsPerSecond(rows, traced_ns);
  const double recorder_ops = InstructionsPerSecond(rows, recorder_ns);
  std::printf("judge batch, telemetry detached   %10.0f instr/s\n", detached_ops);
  std::printf("judge batch, metrics attached     %10.0f instr/s\n", metrics_ops);
  std::printf("judge batch, metrics + tracer     %10.0f instr/s\n", traced_ops);
  std::printf("judge batch, flight recorder      %10.0f instr/s\n", recorder_ops);

  const double flush_ns = sidet::bench::TimeNs([&] { recorder.Flush(); });
  recorder.Close();
  const FlightRecorderStats recorder_stats = recorder.stats();
  if (recorder_stats.dropped != 0) std::abort();  // drained every repetition
  std::remove(recorder_options.path.c_str());

  workload.ids.AttachTelemetry(&registry);  // keep metrics on for the stamp

  const double metrics_overhead_pct = (metrics_ns - detached_ns) / detached_ns * 100.0;
  const double traced_overhead_pct = (traced_ns - detached_ns) / detached_ns * 100.0;
  const double recorder_overhead_pct = (recorder_ns - detached_ns) / detached_ns * 100.0;
  std::printf("overhead: metrics %+.2f%%, metrics+tracer %+.2f%%, recorder %+.2f%%\n",
              metrics_overhead_pct, traced_overhead_pct, recorder_overhead_pct);

  Json batch = Json::Object();
  batch["detached_instr_per_sec"] = detached_ops;
  batch["metrics_instr_per_sec"] = metrics_ops;
  batch["traced_instr_per_sec"] = traced_ops;
  batch["recorder_instr_per_sec"] = recorder_ops;
  batch["metrics_overhead_pct"] = metrics_overhead_pct;
  batch["traced_overhead_pct"] = traced_overhead_pct;
  batch["recorder_overhead_pct"] = recorder_overhead_pct;
  batch["acceptance_metrics_overhead_below_pct"] = 2.0;
  batch["acceptance_recorder_overhead_below_pct"] = 2.0;
  report["judge_batch"] = std::move(batch);

  Json recorder_json = recorder_stats.ToJson();
  recorder_json["flush_ms"] = flush_ns / 1e6;
  recorder_json["staged_bytes_per_verdict"] =
      recorder_stats.recorded == 0
          ? 0.0
          : static_cast<double>(recorder_stats.bytes_written) /
                static_cast<double>(recorder_stats.recorded);
  report["flight_recorder"] = std::move(recorder_json);

  // --- micro-costs of the primitives ------------------------------------
  Counter* counter = registry.GetCounter("sidet_bench_micro_total");
  Gauge* gauge = registry.GetGauge("sidet_bench_micro_gauge");
  Histogram* histogram = registry.GetHistogram("sidet_bench_micro_seconds");
  SpanTracer micro_tracer({}, /*capacity=*/16);  // saturates: measures the drop path too

  Json micro = Json::Object();
  const auto per_op_ns = [](double total_ns) { return total_ns / kMicroOps; };
  micro["counter_increment_ns"] = per_op_ns(MedianNs(3, [&] {
    for (int i = 0; i < kMicroOps; ++i) counter->Increment();
  }));
  micro["gauge_set_ns"] = per_op_ns(MedianNs(3, [&] {
    for (int i = 0; i < kMicroOps; ++i) gauge->Set(static_cast<double>(i));
  }));
  micro["histogram_observe_ns"] = per_op_ns(MedianNs(3, [&] {
    for (int i = 0; i < kMicroOps; ++i) histogram->Observe(1e-4);
  }));
  micro["trace_span_ns"] = per_op_ns(MedianNs(3, [&] {
    for (int i = 0; i < kMicroOps; ++i) {
      TraceSpan span(&micro_tracer, "micro");
    }
  }));
  micro["null_gated_span_ns"] = per_op_ns(MedianNs(3, [&] {
    for (int i = 0; i < kMicroOps; ++i) {
      TraceSpan span(nullptr, "micro");
    }
  }));
  report["micro_ns_per_op"] = std::move(micro);

  // --- exporter costs over the populated registry/tracer -----------------
  Json exporters = Json::Object();
  exporters["prometheus_text_us"] = MedianNs(5, [&] {
    const std::string text = PrometheusText(registry);
    if (text.empty()) std::abort();
  }) / 1e3;
  exporters["metrics_snapshot_json_us"] = MedianNs(5, [&] {
    const Json snapshot = MetricsSnapshotJson(registry);
    if (!snapshot.is_object()) std::abort();
  }) / 1e3;
  exporters["chrome_trace_json_us"] = MedianNs(5, [&] {
    const Json trace = ChromeTraceJson(tracer);
    if (!trace.is_object()) std::abort();
  }) / 1e3;
  exporters["trace_spans"] = static_cast<std::int64_t>(tracer.size());
  report["exporters"] = std::move(exporters);

  // --- drift/alert evaluation costs --------------------------------------
  DriftMonitor drift(BaselineFromMemory(workload.ids.memory()));
  drift.AttachTelemetry(&registry);
  for (const ContextIds::JudgeRequest& request : workload.requests) {
    drift.ObserveVerdict(request.instruction->category, true);
  }
  for (const SensorSnapshot& snapshot : workload.snapshots) drift.ObserveSnapshot(snapshot);
  AlertEvaluator alerts;
  for (AlertRule& rule : DefaultIdsAlerts()) alerts.AddRule(std::move(rule));
  Json monitors = Json::Object();
  monitors["drift_evaluate_us"] = MedianNs(5, [&] {
    const DriftReport drift_report = drift.Evaluate();
    if (drift_report.verdicts == 0) std::abort();
  }) / 1e3;
  monitors["alert_evaluate_us"] = MedianNs(5, [&] {
    const std::vector<AlertState> states = alerts.Evaluate(registry);
    if (states.empty()) std::abort();
  }) / 1e3;
  report["monitors"] = std::move(monitors);

  // --- attribution path: Explain cost, capture cost, armed cost ----------
  //
  // ExplainBatch is a deliberate second walk (featurize + attribution
  // traversal per scored row), so its absolute cost is reported, not gated.
  // What IS gated is the armed configuration: attribution capture enabled
  // with no observer attached — the exact state a serving gateway is in when
  // the ops surface *could* be asked to explain — which must cost the batch
  // path nothing beyond the flag test.
  workload.ids.AttachTelemetry(nullptr);
  std::vector<double> explain_ns_samples;
  for (int rep = 0; rep < 16; ++rep) {
    explain_ns_samples.push_back(sidet::bench::TimeNs([&] {
      const std::vector<ExplainResult> explained = workload.ids.ExplainBatch(workload.requests, 5);
      if (explained.size() != rows) std::abort();
    }));
  }
  const double explain_batch_ns = IqMean(explain_ns_samples);
  const double explain_row_ns = explain_batch_ns / static_cast<double>(rows);

  enum { kArmedOff = 0, kArmedOn, kArmedModes };
  std::vector<double> armed_ratio;  // armed / off, paired per repetition
  std::vector<double> armed_ns[kArmedModes];
  for (int rep = 0; rep < kRepetitions; ++rep) {
    double rep_ns[kArmedModes] = {0.0, 0.0};
    for (int slot = 0; slot < kArmedModes; ++slot) {
      const int mode = (rep + slot) % kArmedModes;
      workload.ids.EnableAttributionCapture(mode == kArmedOn);
      rep_ns[mode] = OneBatchNs(workload);
      armed_ns[mode].push_back(rep_ns[mode]);
    }
    if (rep_ns[kArmedOff] > 0.0) armed_ratio.push_back(rep_ns[kArmedOn] / rep_ns[kArmedOff]);
  }
  const double armed_overhead_pct =
      armed_ratio.empty() ? 0.0 : (IqMean(armed_ratio) - 1.0) * 100.0;

  // Capture cost with a recorder actually consuming the notes: every scored
  // row re-walks through the attribution arrays and its top-k lands in the
  // session NDJSON. Informational — this is the price of *using* the
  // feature, paid only when a recorder opts in.
  FlightRecorderOptions capture_options;
  capture_options.path = out_path + ".capture.ndjson";
  capture_options.ring_capacity = rows * 2;
  capture_options.flush_interval_ms = 600'000;
  FlightRecorder capture_recorder(capture_options);
  if (!capture_recorder.StartSession(workload.ids.memory().Fingerprint()).ok()) std::abort();
  workload.ids.SetVerdictObserver(&capture_recorder);
  workload.ids.EnableAttributionCapture(true);
  std::vector<double> capture_samples;
  for (int rep = 0; rep < 16; ++rep) {
    capture_samples.push_back(OneBatchNs(workload));
    capture_recorder.Flush();
  }
  workload.ids.EnableAttributionCapture(false);
  workload.ids.SetVerdictObserver(nullptr);
  capture_recorder.Close();
  const std::uint64_t captured_notes = capture_recorder.stats().attributions;
  if (captured_notes == 0) std::abort();  // capture must actually have run
  std::remove(capture_options.path.c_str());
  const double capture_ns = IqMean(capture_samples);
  const double capture_overhead_pct = (capture_ns - detached_ns) / detached_ns * 100.0;

  std::printf("attribution: explain %.0f ns/row, armed %+.2f%%, capture %+.2f%% "
              "(%llu notes)\n",
              explain_row_ns, armed_overhead_pct, capture_overhead_pct,
              static_cast<unsigned long long>(captured_notes));
  Json attribution = Json::Object();
  attribution["explain_batch_instr_per_sec"] = InstructionsPerSecond(rows, explain_batch_ns);
  attribution["explain_row_ns"] = explain_row_ns;
  attribution["explain_vs_judge_ratio"] =
      detached_ns > 0 ? explain_batch_ns / detached_ns : 0.0;
  attribution["armed_overhead_pct"] = armed_overhead_pct;
  attribution["capture_overhead_pct"] = capture_overhead_pct;
  attribution["captured_notes"] = captured_notes;
  attribution["acceptance_armed_overhead_below_pct"] = 2.0;
  report["attribution"] = std::move(attribution);

  // --- time-series sampler riding the judge path -------------------------
  //
  // The store samples the *global* registry — the same one the metrics mode
  // above populates, so every snapshot walks a realistic series population.
  // 10 ms cadence is 100x the production default: if the gate holds here it
  // holds at 1 s with two orders of magnitude to spare.
  TimeSeriesStore sampler_store(TimeSeriesOptions{
      .sample_interval_ms = 10, .levels = {{1, 4096}}, .now_ms = {}});
  workload.ids.AttachTelemetry(&registry);
  enum { kSamplerOff = 0, kSamplerOn, kSamplerModes };
  // One batch finishes well inside a single 10 ms tick, so a slot must span
  // several ticks or the sampler never actually fires during the timed
  // window; size the slot to ~30 ms (≥3 ticks) from the detached baseline
  // and run the identical batch count in both modes.
  const int sampler_inner =
      detached_ns > 0.0 ? static_cast<int>(30e6 / detached_ns) + 1 : 1;
  constexpr int kSamplerReps = 40;
  std::vector<double> sampler_ratio;
  for (int rep = 0; rep < kSamplerReps; ++rep) {
    double rep_ns[kSamplerModes] = {0.0, 0.0};
    for (int slot = 0; slot < kSamplerModes; ++slot) {
      const int mode = (rep + slot) % kSamplerModes;
      if (mode == kSamplerOn) sampler_store.StartSampler(&registry);
      rep_ns[mode] = sidet::bench::TimeNs([&] {
        for (int i = 0; i < sampler_inner; ++i) (void)OneBatchNs(workload);
      });
      if (mode == kSamplerOn) sampler_store.StopSampler();
    }
    if (rep_ns[kSamplerOff] > 0.0) {
      sampler_ratio.push_back(rep_ns[kSamplerOn] / rep_ns[kSamplerOff]);
    }
  }
  if (sampler_store.samples_taken() == 0) std::abort();  // sampler never fired
  const double sampler_overhead_pct =
      sampler_ratio.empty() ? 0.0 : (IqMean(sampler_ratio) - 1.0) * 100.0;
  // Direct cost of one registry snapshot, on the population the judge modes
  // built up — what the production sampler pays once per second.
  TimeSeriesStore manual_store;
  std::int64_t manual_stamp = 0;
  const double sample_now_us = MedianNs(5, [&] {
    manual_store.SampleNow(registry, manual_stamp += 1000);
  }) / 1e3;
  std::printf("sampler: %+.2f%% at 10 ms cadence, SampleNow %.1f us, %llu samples\n",
              sampler_overhead_pct, sample_now_us,
              static_cast<unsigned long long>(sampler_store.samples_taken()));
  Json sampler = Json::Object();
  sampler["overhead_pct_at_10ms"] = sampler_overhead_pct;
  sampler["sample_now_us"] = sample_now_us;
  sampler["samples_taken"] = sampler_store.samples_taken();
  sampler["retained_series"] = static_cast<std::int64_t>(manual_store.SeriesNames().size());
  sampler["acceptance_sampler_overhead_below_pct"] = 2.0;
  report["timeseries_sampler"] = std::move(sampler);

  // --- gateway end-to-end: request tracing attached vs detached ----------
  //
  // Both stacks listen simultaneously and the load alternates between them
  // in short paired bursts (same interleaving rationale as the judge modes
  // above: both configurations sample every machine phase). Throughput is
  // reduced with the same interquartile mean.
  const std::string model_path = out_path + ".model.json";
  if (!SaveMemory(workload.ids.memory(), model_path).ok()) std::abort();
  SmartHome serving_home = BuildDemoHome(7);
  // Late-evening context, mostly-allowed mix: every request still takes the
  // full featurize+score path (all four instructions are sensitive and
  // modelled; at this hour the trained model *allows* the first three), with
  // one blocked window.open per 16 requests keeping the always-retain ring
  // in the steady state at a realistic rate. A mix where every verdict is
  // blocked — these same instructions at 3am — retains and materializes an
  // exemplar for 100% of traffic, a retention rate no production gateway
  // runs at, which triples the measured overhead and turns the budget gate
  // into a worst-case test instead of a common-case one.
  serving_home.Step(23 * kSecondsPerHour);
  const SensorSnapshot serving_context = serving_home.Snapshot();
  std::vector<std::string> tails;
  const char* allowed_mix[] = {"lock.unlock", "light.on", "ac.heat"};
  for (int i = 0; i < 15; ++i) {
    tails.push_back(JudgeRequestTail("default", allowed_mix[i % 3], serving_home.now()));
  }
  tails.push_back(JudgeRequestTail("default", "window.open", serving_home.now()));

  GatewayUnderTest detached_stack(workload.registry, model_path, serving_context,
                                  /*traced=*/false);
  GatewayUnderTest traced_stack(workload.registry, model_path, serving_context,
                                /*traced=*/true);
  LoadOptions burst;
  burst.connections = 2;
  burst.pipeline = 16;
  burst.duration_ms = 60;
  burst.request_tails = tails;

  constexpr int kE2eReps = 64;
  enum { kPlain = 0, kTracedGateway, kGatewayModes };
  std::uint16_t ports[kGatewayModes] = {detached_stack.gateway.port(),
                                        traced_stack.gateway.port()};
  for (int mode = 0; mode < kGatewayModes; ++mode) {
    (void)RunLoad("127.0.0.1", ports[mode], burst);  // warm-up: connections, model pages
  }
  std::vector<double> e2e_rps[kGatewayModes];
  // The overhead estimate is computed from per-rep paired ratios, not from
  // the two IqMean'd rps series: both modes run back-to-back inside each rep,
  // so the within-rep ratio cancels whatever machine phase that rep landed
  // on. Reducing the ratios (rather than the throughputs) is what keeps a
  // hard 2% budget from flaking on a shared box.
  std::vector<double> rep_traced_over_detached;
  std::uint64_t traced_responses = 0;
  std::uint64_t traced_ok = 0;
  for (int rep = 0; rep < kE2eReps; ++rep) {
    double rep_rps[kGatewayModes] = {0.0, 0.0};
    for (int slot = 0; slot < kGatewayModes; ++slot) {
      const int mode = (rep + slot) % kGatewayModes;
      const LoadReport run = RunLoad("127.0.0.1", ports[mode], burst);
      if (run.errors != 0) std::abort();
      e2e_rps[mode].push_back(run.throughput_rps);
      rep_rps[mode] = run.throughput_rps;
      if (mode == kTracedGateway) {
        traced_responses += run.traced;
        traced_ok += run.ok;
      }
    }
    if (rep_rps[kPlain] > 0.0) {
      rep_traced_over_detached.push_back(rep_rps[kTracedGateway] / rep_rps[kPlain]);
    }
  }
  const double detached_rps = IqMean(e2e_rps[kPlain]);
  const double traced_rps = IqMean(e2e_rps[kTracedGateway]);
  const double tracing_overhead_pct =
      rep_traced_over_detached.empty()
          ? 0.0
          : (1.0 - IqMean(rep_traced_over_detached)) * 100.0;
  // Every successful response from the traced stack must carry a trace id —
  // the overhead number is meaningless if tracing silently detached.
  if (traced_responses != traced_ok) std::abort();
  std::printf("gateway e2e: detached %.0f rps, traced %.0f rps (overhead %+.2f%%)\n",
              detached_rps, traced_rps, tracing_overhead_pct);

  // One forced exemplar, exported as a Chrome trace_event document: the
  // artefact CI archives so a span tree from this exact build can be dropped
  // into chrome://tracing.
  std::size_t exemplar_spans = 0;
  {
    Result<GatewayClient> client =
        GatewayClient::Connect("127.0.0.1", traced_stack.gateway.port());
    if (!client.ok()) std::abort();
    Json sampled = Json::Object();
    sampled["op"] = "judge";
    sampled["id"] = 1;
    sampled["instruction"] = "window.open";
    sampled["time"] = serving_home.now().seconds();
    sampled["sampled"] = true;
    Result<Json> verdict = client.value().Call(sampled);
    if (!verdict.ok() || !verdict.value().bool_or("ok", false)) std::abort();
    Result<Json> chrome = client.value().FetchTrace(/*chrome=*/true);
    if (!chrome.ok()) std::abort();
    const Json* doc = chrome.value().find("trace");
    if (doc == nullptr || doc->find("traceEvents") == nullptr) std::abort();
    exemplar_spans = doc->find("traceEvents")->as_array().size();
    std::ofstream exemplar_out(exemplar_path);
    exemplar_out << doc->Dump() << "\n";
    std::printf("wrote %s (%zu trace events)\n", exemplar_path.c_str(), exemplar_spans);
  }
  detached_stack.gateway.Shutdown();
  traced_stack.gateway.Shutdown();

  // --- ops surface end to end: the health scorecard artifact --------------
  //
  // A gateway with the full ops surface attached (store + SLO engine + drift
  // monitor) serves two bursts with a registry sample after each; the
  // `health` wire command then renders the per-home scorecard this exact
  // build produces, archived as a JSON artifact beside the numbers.
  const std::string scorecard_path =
      argc > 3 ? argv[3] : "BENCH_observability_scorecard.json";
  {
    TimeSeriesStore ops_store;
    SloEngine ops_slo;
    for (SloObjective& objective : DefaultGatewaySlos("default")) {
      ops_slo.AddObjective(std::move(objective));
    }
    GatewayRouter ops_router(BatchPolicy{}, &registry);
    Gateway ops_gateway(ops_router, workload.registry, GatewayConfig{}, &registry);
    ops_gateway.AttachOps({&ops_store, &ops_slo, &drift});
    if (!ops_router.AddHomeFromModel("default", model_path).ok()) std::abort();
    if (!ops_router.SetContext("default", serving_context).ok()) std::abort();
    if (!ops_gateway.Start().ok()) std::abort();

    LoadOptions ops_burst = burst;
    ops_burst.duration_ms = 200;
    (void)RunLoad("127.0.0.1", ops_gateway.port(), ops_burst);
    (void)drift.Evaluate();  // refresh the drift gauges the store retains
    ops_store.SampleNow(registry, 1000);
    (void)RunLoad("127.0.0.1", ops_gateway.port(), ops_burst);
    (void)drift.Evaluate();
    ops_store.SampleNow(registry, 2000);

    Result<GatewayClient> ops_client =
        GatewayClient::Connect("127.0.0.1", ops_gateway.port());
    if (!ops_client.ok()) std::abort();
    Result<Json> explained =
        ops_client.value().Explain("default", "window.open", serving_home.now().seconds());
    if (!explained.ok()) std::abort();
    Result<Json> health = ops_client.value().FetchHealth(/*window_seconds=*/60);
    if (!health.ok() || health.value().find("scorecard") == nullptr) std::abort();
    std::ofstream scorecard_out(scorecard_path);
    scorecard_out << health.value().Dump() << "\n";
    std::printf("wrote %s\n", scorecard_path.c_str());
    ops_gateway.Shutdown();
  }
  std::remove(model_path.c_str());

  Json gateway_e2e = Json::Object();
  gateway_e2e["detached_rps"] = detached_rps;
  gateway_e2e["traced_rps"] = traced_rps;
  gateway_e2e["tracing_overhead_pct"] = tracing_overhead_pct;
  gateway_e2e["acceptance_tracing_overhead_below_pct"] = 2.0;
  gateway_e2e["traced_responses"] = traced_responses;
  gateway_e2e["exemplar_trace_events"] = static_cast<std::int64_t>(exemplar_spans);
  gateway_e2e["tail_store"] = traced_stack.tracing.exemplars().stats().ToJson();
  report["gateway_e2e"] = std::move(gateway_e2e);

  sidet::bench::StampCalibration(report);
  sidet::bench::StampTelemetry(report);
  std::ofstream out(out_path);
  out << report.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (metrics_overhead_pct >= 2.0) {
    std::fprintf(stderr, "FAIL: metrics overhead %.2f%% exceeds the 2%% budget\n",
                 metrics_overhead_pct);
    return 1;
  }
  if (recorder_overhead_pct >= 2.0) {
    std::fprintf(stderr, "FAIL: recorder overhead %.2f%% exceeds the 2%% budget\n",
                 recorder_overhead_pct);
    return 1;
  }
  if (tracing_overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: gateway tracing overhead %.2f%% exceeds the 2%% budget\n",
                 tracing_overhead_pct);
    return 1;
  }
  if (armed_overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: attribution-armed overhead %.2f%% exceeds the 2%% budget\n",
                 armed_overhead_pct);
    return 1;
  }
  if (sampler_overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: time-series sampler overhead %.2f%% exceeds the 2%% budget\n",
                 sampler_overhead_pct);
    return 1;
  }
  return 0;
}
