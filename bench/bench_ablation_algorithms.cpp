// Ablation A1 — the §IV.C algorithm selection, made measurable: decision
// tree vs KNN vs naive Bayes vs linear SVM on every evaluated device
// family's dataset (same 7:3 split and oversampling for all).
//
// The paper's narrative: "We study the classification algorithms in machine
// learning, such as KNN, support vector machine, Naive Bayes, and decision
// tree … considering various factors, we finally choose decision tree."
// This bench regenerates the evidence behind that choice on mixed
// numeric/categorical, small-sample data.
#include <cstdio>
#include <functional>
#include <memory>

#include "datagen/corpus_generator.h"
#include "datagen/device_dataset.h"
#include "instructions/standard_instruction_set.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/linear_svm.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml/sampling.h"
#include "ml/validation.h"
#include "util/table.h"

using namespace sidet;

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n", corpus.error().message().c_str());
    return 1;
  }

  struct Algorithm {
    const char* name;
    std::function<std::unique_ptr<Classifier>()> make;
  };
  const std::vector<Algorithm> algorithms = {
      {"decision_tree", [] { return std::make_unique<DecisionTree>(); }},
      {"knn(k=5)", [] { return std::make_unique<KnnClassifier>(); }},
      {"naive_bayes", [] { return std::make_unique<NaiveBayesClassifier>(); }},
      {"linear_svm", [] { return std::make_unique<LinearSvm>(); }},
      {"random_forest", [] { return std::make_unique<RandomForest>(); }},
  };

  std::printf("ABLATION — classifier choice across device families (test accuracy / FNR)\n");
  std::printf("(random_forest is this repo's §VI extension, not a paper candidate)\n\n");
  TextTable table({"Equipment model", "decision_tree", "knn(k=5)", "naive_bayes",
                   "linear_svm", "random_forest", "best"});

  Rng rng(9090);
  for (const DeviceCategory category : EvaluatedCategories()) {
    Result<DeviceDataset> built =
        BuildDeviceDataset(corpus.value().corpus, DefaultConfigFor(category));
    if (!built.ok()) {
      std::fprintf(stderr, "dataset failed: %s\n", built.error().message().c_str());
      return 1;
    }
    const TrainTestSplit split = StratifiedSplit(built.value().data, 0.3, rng);
    Dataset train = RandomOversample(split.train, rng);
    train.Shuffle(rng);

    std::vector<std::string> cells = {std::string(EvaluationRowName(category))};
    double best_accuracy = -1.0;
    std::string best_name = "-";
    for (const Algorithm& algorithm : algorithms) {
      const std::unique_ptr<Classifier> model = algorithm.make();
      const Status fitted = model->Fit(train);
      if (!fitted.ok()) {
        cells.push_back("fit-error");
        continue;
      }
      const BinaryMetrics metrics =
          ComputeMetrics(split.test.labels(), model->PredictAll(split.test));
      cells.push_back(TextTable::Cell(metrics.accuracy) + " / " +
                      TextTable::Cell(metrics.fnr, 3));
      if (metrics.accuracy > best_accuracy) {
        best_accuracy = metrics.accuracy;
        best_name = algorithm.name;
      }
    }
    cells.push_back(best_name);
    table.AddRow(std::move(cells));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper shape check: the decision tree is consistently at or near the top on\n"
              "this small, mixed-type data — and is the only one of the four that also\n"
              "yields the feature weights the framework stores (Fig 6).\n");
  return 0;
}
