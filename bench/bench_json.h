// Shared helpers for the machine-readable benchmark artefacts
// (BENCH_overhead.json / BENCH_throughput.json): git provenance, wall-clock
// timing and median-of-repetitions reduction.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace sidet::bench {

// `git describe --always --dirty` of the working tree, or "unknown" when git
// is unavailable (e.g. running from an exported tarball).
inline std::string GitDescribe() {
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::string out;
  char buffer[128];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) out += buffer;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out.empty() ? "unknown" : out;
}

// Wall-clock of one call, in nanoseconds.
template <typename Fn>
double TimeNs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
}

// Median wall-clock over `repetitions` calls, in nanoseconds.
template <typename Fn>
double MedianNs(int repetitions, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) samples.push_back(TimeNs(fn));
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace sidet::bench
