// Shared helpers for the machine-readable benchmark artefacts
// (BENCH_overhead.json / BENCH_throughput.json / BENCH_observability.json):
// git provenance, wall-clock timing, median-of-repetitions reduction, and
// the telemetry stamp every committed BENCH_*.json carries.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "util/json.h"

namespace sidet::bench {

// `git describe --always --dirty` of the working tree, or "unknown" when git
// is unavailable (e.g. running from an exported tarball).
inline std::string GitDescribe() {
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::string out;
  char buffer[128];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) out += buffer;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out.empty() ? "unknown" : out;
}

// Full `git rev-parse HEAD` SHA, or "unknown" outside a git checkout.
inline std::string GitSha() {
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::string out;
  char buffer[128];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) out += buffer;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out.empty() ? "unknown" : out;
}

// Current UTC wall time as ISO-8601 ("2026-08-07T12:34:56Z").
inline std::string UtcTimestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

// Attribution block for every BENCH_*.json: which commit produced the
// artefact and when. `git_describe` keeps the human-readable tag the older
// artefacts carried; `git_sha` pins the exact commit.
inline void StampProvenance(Json& report) {
  report["git_describe"] = GitDescribe();
  report["git_sha"] = GitSha();
  report["generated_at_utc"] = UtcTimestamp();
}

// Wall-clock of one call, in nanoseconds.
template <typename Fn>
double TimeNs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
}

// Median wall-clock over `repetitions` calls, in nanoseconds.
template <typename Fn>
double MedianNs(int repetitions, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) samples.push_back(TimeNs(fn));
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Machine-speed calibration: a fixed, deterministic mix of integer and
// floating-point work (xorshift64 feeding a compare/select chain — the same
// shape as a tree-walk step) timed on the machine that produced the report.
// Committed BENCH_*.json baselines and fresh CI runs come from different
// hardware in different load states; bench_gate divides hot-path medians by
// this rate so the regression check compares work-per-calibrated-op rather
// than raw wall-clock, which would flake on every runner swap.
inline double CalibrationOpsPerSec() {
  constexpr std::uint64_t kOps = 1 << 24;
  volatile double sink = 0.0;
  const double ns = MedianNs(5, [&] {
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    double acc = 0.0;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      const double v = static_cast<double>(x >> 11) * 0x1.0p-53;
      acc = v <= 0.5 ? acc + v : acc - v;
    }
    sink = acc;
  });
  (void)sink;
  return static_cast<double>(kOps) / (ns / 1e9);
}

inline void StampCalibration(Json& report) {
  report["calibration_ops_per_sec"] = CalibrationOpsPerSec();
}

// Stamps the process-wide metrics snapshot into a report under "telemetry".
// Call after the workload has run against MetricsRegistry::Global() so the
// committed artefact records what the instrumented run actually observed.
inline void StampTelemetry(Json& report) {
  report["telemetry"] = MetricsSnapshotJson(MetricsRegistry::Global());
  StampProvenance(report);
}

// Same stamp for artefacts written by an external serializer (the
// google-benchmark JSON of bench_overhead): re-parses the file, inserts the
// snapshot, rewrites. Returns false (and leaves the file alone) when the
// file is missing or not valid JSON.
inline bool StampTelemetryFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<Json> parsed = Json::Parse(buffer.str());
  if (!parsed.ok() || !parsed.value().is_object()) return false;
  Json report = std::move(parsed).value();
  StampTelemetry(report);
  std::ofstream out(path);
  if (!out) return false;
  out << report.Dump() << "\n";
  return true;
}

}  // namespace sidet::bench
