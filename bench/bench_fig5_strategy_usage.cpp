// Regenerates Fig 5 — "User usage of different strategies": the popularity
// skew of the strategy corpus. Prints the top strategies by platform user
// count plus head/tail concentration statistics, and the dataset-expansion
// arithmetic of §IV.C.1 (804 rules -> rules × users samples).
#include <cstdio>

#include "datagen/corpus_generator.h"
#include "instructions/standard_instruction_set.h"
#include "util/table.h"

using namespace sidet;

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CorpusConfig config;
  Result<GeneratedCorpus> generated = GenerateCorpus(config, registry);
  if (!generated.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 generated.error().message().c_str());
    return 1;
  }
  const RuleCorpus& corpus = generated.value().corpus;

  std::printf("FIG 5 — User usage of different strategies (reproduction)\n\n");
  std::printf("corpus: %zu distinct strategies (%zu core + %zu camera-warning)\n",
              corpus.size(), config.core_rules, config.camera_rules);
  std::printf("total platform users across strategies: %llu\n\n",
              static_cast<unsigned long long>(corpus.TotalUsers()));

  const std::vector<const Rule*> by_popularity = corpus.ByPopularity();
  BarChart chart("Top 15 strategies by user count");
  for (std::size_t i = 0; i < 15 && i < by_popularity.size(); ++i) {
    const Rule* rule = by_popularity[i];
    std::string label = rule->action + " <- " + rule->condition_source;
    if (label.size() > 48) label = label.substr(0, 45) + "...";
    chart.Add(std::move(label), static_cast<double>(rule->user_count));
  }
  std::printf("%s\n", chart.Render().c_str());

  // Concentration: how much of all usage sits in the head.
  const std::uint64_t total = corpus.TotalUsers();
  std::uint64_t running = 0;
  std::size_t rules_for_half = 0;
  for (const Rule* rule : by_popularity) {
    running += rule->user_count;
    ++rules_for_half;
    if (running * 2 >= total) break;
  }
  std::uint64_t top_decile_users = 0;
  const std::size_t decile = by_popularity.size() / 10;
  for (std::size_t i = 0; i < decile; ++i) top_decile_users += by_popularity[i]->user_count;

  std::printf("%zu strategies (%.1f%%) account for half of all usage\n", rules_for_half,
              100.0 * static_cast<double>(rules_for_half) /
                  static_cast<double>(by_popularity.size()));
  std::printf("top 10%% of strategies hold %.1f%% of all usage\n",
              100.0 * static_cast<double>(top_decile_users) / static_cast<double>(total));
  std::printf("median strategy user count: %u; maximum: %u\n",
              by_popularity[by_popularity.size() / 2]->user_count,
              by_popularity.front()->user_count);
  std::printf("\nPaper shape check: heavy-tailed rank-size law — a small head of very\n"
              "popular strategies (IFTTT-style), a long tail of single-digit adopters;\n"
              "expansion by user counts turns ~800 rules into a training-scale corpus.\n");
  return 0;
}
