// Regenerates Fig 6 — "Window related attribute feature weight map": the
// normalized decision-tree feature importances of the window model over its
// nine context features.
//
// Paper ordering (descending): smoke sensor, combustible gas sensor, user
// voice command, smart door lock status, temperature sensor, air quality
// detector, outdoor weather, motion sensor, specific time — with the first
// four carrying most of the weight.
#include <cstdio>

#include "datagen/corpus_generator.h"
#include "datagen/device_dataset.h"
#include "instructions/standard_instruction_set.h"
#include "ml/decision_tree.h"
#include "ml/sampling.h"
#include "ml/validation.h"
#include "util/table.h"

using namespace sidet;

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n", corpus.error().message().c_str());
    return 1;
  }

  DeviceDatasetConfig config = DefaultConfigFor(DeviceCategory::kWindowAndLock);
  // The paper's dataset is strategies × users with out-of-context negatives —
  // it contains no crafted sensor-spoof rows (those are this repo's
  // operational extension). With spoof negatives present, the physical
  // consequence channels (air quality, temperature) would rightly absorb the
  // hazard bits' weight, because the spoofed bit itself no longer separates
  // the classes. Reproduce the paper's configuration here.
  config.spoof_negative_fraction = 0.0;
  config.hazard_coherence = false;
  Result<DeviceDataset> built = BuildDeviceDataset(corpus.value().corpus, config);
  if (!built.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n", built.error().message().c_str());
    return 1;
  }

  Rng rng(660066);
  const TrainTestSplit split = StratifiedSplit(built.value().data, 0.3, rng);
  Dataset train = RandomOversample(split.train, rng);
  train.Shuffle(rng);

  DecisionTree tree;
  if (const Status fitted = tree.Fit(train); !fitted.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fitted.error().message().c_str());
    return 1;
  }

  std::printf("FIG 6 — Window related attribute feature weight map (reproduction)\n\n");
  std::printf("model: CART/gini, %zu nodes, depth %d, trained on %zu rows (oversampled)\n\n",
              tree.node_count(), tree.depth(), train.size());

  // The paper's figure plots the nine sensor-context features; the model's
  // action feature (which instruction is being judged) is reported
  // separately below, then the nine renormalized.
  double action_weight = 0.0;
  double context_sum = 0.0;
  for (const auto& [name, weight] : tree.RankedImportances()) {
    if (name == "action") action_weight = weight;
    else context_sum += weight;
  }
  BarChart chart("Normalized sensor-context feature importances (window model)");
  for (const auto& [name, weight] : tree.RankedImportances()) {
    if (name != "action") chart.Add(name, context_sum > 0 ? weight / context_sum : 0.0);
  }
  std::printf("%s\n", chart.Render().c_str());
  std::printf("(instruction/action feature weight, reported separately: %.4f)\n\n",
              action_weight);

  std::printf("Paper shape check: hazard and identity context (smoke, combustible gas,\n"
              "voice command, lock state) dominates; environmental context (temperature,\n"
              "air quality, weather, motion, time) carries the remainder.\n");
  return 0;
}
