// Serving-layer benchmark, emitted to BENCH_gateway.json:
//
//   1. batching amortization, measured twice with identical traffic and
//      accounting:
//        a. end-to-end over loopback TCP (closed loop, pipelined) — the
//           product number, but on a shared-core host it is transport-bound:
//           client, kernel, and server time-share one CPU, and the
//           parse/copy/syscall floor (measured separately against a raw echo
//           server at ~3 us/request) is identical for both configurations,
//           so it compresses the visible ratio;
//        b. serving-lane capacity — the same GatewayRouter/MicroBatcher
//           stack driven by in-process closed-loop submission, which is the
//           batching subsystem itself with the shared transport floor
//           removed. The >= 2x acceptance bar applies here: JudgeBatch
//           featurizes once per (category, snapshot, time) group and the
//           worker wakes once per batch instead of once per request;
//   2. open-loop overload sweep — offered rates calibrated against the
//      measured closed-loop capacity (0.25x .. 2x), recording shed rate and
//      p50/p99 e2e latency at each rate, with a deliberately small intake
//      queue so admission control (not the socket) is the limiting policy;
//   3. hot reload under load — the model is reloaded every 50 ms while a
//      closed-loop run is in flight; the run must lose zero in-flight
//      requests (responses == sent, no transport errors);
//   4. batch-size distribution — mean rows per JudgeBatch call from the lane
//      stats, plus the full sidet_gateway_* histograms via the telemetry
//      stamp (the batched runs attach to MetricsRegistry::Global()).
//
// All traffic is real loopback TCP through the wire protocol: the numbers
// include framing, parsing, queueing, judging, and response writeback.
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench_json.h"
#include "telemetry/trace.h"
#include "core/model_store.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "replay/replay_engine.h"
#include "server/gateway.h"
#include "server/loadgen.h"
#include "server/router.h"
#include "telemetry/slo.h"

using namespace sidet;
using namespace sidet::bench;

namespace {

constexpr const char* kModelPath = "/tmp/sidet_bench_gateway_model.json";

struct ServingStack {
  GatewayRouter router;
  Gateway gateway;

  ServingStack(const InstructionRegistry& registry, const BatchPolicy& policy,
               const SensorSnapshot& context, MetricsRegistry* metrics)
      : router(policy, metrics), gateway(router, registry, GatewayConfig{}, metrics) {
    if (!router.AddHomeFromModel("default", kModelPath).ok()) std::abort();
    if (!router.SetContext("default", context).ok()) std::abort();
    if (!gateway.Start().ok()) std::abort();
  }
};

Json ReportRun(const LoadReport& run) {
  Json out = run.ToJson();
  return out;
}

// Closed-loop capacity of one serving lane (router + micro-batcher + judge)
// without the TCP transport: the producer submits judge tasks against the
// ambient context and the block policy applies backpressure, so the lane
// runs flat out at whatever its batch policy sustains.
double LaneCapacityRps(const InstructionRegistry& registry, const SensorSnapshot& context,
                       SimTime time, BatchPolicy policy, int duration_ms) {
  policy.overflow = OverflowPolicy::kBlock;
  GatewayRouter router(policy);
  if (!router.AddHomeFromModel("default", kModelPath).ok()) std::abort();
  if (!router.SetContext("default", context).ok()) std::abort();
  const Instruction* window_open = registry.FindByName("window.open");
  const Instruction* lock_unlock = registry.FindByName("lock.unlock");
  if (window_open == nullptr || lock_unlock == nullptr) std::abort();

  std::atomic<std::uint64_t> completed{0};
  const std::int64_t start_us = MonotonicMicros();
  const std::int64_t deadline_us = start_us + static_cast<std::int64_t>(duration_ms) * 1000;
  std::uint64_t submitted = 0;
  while (MonotonicMicros() < deadline_us) {
    JudgeTask task;
    task.instruction = (submitted & 1) != 0 ? lock_unlock : window_open;
    task.time = time;
    task.done = [&completed](const Judgement&) {
      completed.fetch_add(1, std::memory_order_relaxed);
    };
    if (router.SubmitJudge("default", std::move(task)) != Admission::kAccepted) std::abort();
    ++submitted;
  }
  router.DrainAll();  // every accepted task completes before the clock stops
  const double wall_seconds = static_cast<double>(MonotonicMicros() - start_us) * 1e-6;
  if (completed.load() != submitted) std::abort();
  return static_cast<double>(completed.load()) / std::max(wall_seconds, 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_gateway.json";

  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> built = BuildIdsFromScratch(registry, 99);
  if (!built.ok()) {
    std::fprintf(stderr, "build ids: %s\n", built.error().message().c_str());
    return 1;
  }
  if (!SaveMemory(built.value().memory(), kModelPath).ok()) {
    std::fprintf(stderr, "persist model failed\n");
    return 1;
  }

  SmartHome home = BuildDemoHome(42);
  home.Step(3 * kSecondsPerHour);
  const SensorSnapshot context = home.Snapshot();

  // Sensitive, modelled instructions: the traffic that actually exercises
  // featurization + tree scoring rather than the non-sensitive fast path.
  const std::vector<std::string> tails = {
      JudgeRequestTail("default", "window.open", home.now()),
      JudgeRequestTail("default", "lock.unlock", home.now()),
  };

  Json report = Json::Object();
  report["bench"] = "gateway";
  report["hardware_concurrency"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());

  // --- 1. batching amortization: max_batch=1 vs adaptive max_batch=64 -----
  LoadOptions closed;
  closed.connections = 4;
  closed.pipeline = 32;
  closed.duration_ms = 1500;
  closed.timeline = true;  // per-second progression rides along in the JSON
  closed.request_tails = tails;

  BatchPolicy unbatched;
  unbatched.max_batch = 1;
  unbatched.min_delay_us = unbatched.max_delay_us = 0;
  LoadReport run_unbatched;
  {
    ServingStack stack(registry, unbatched, context, nullptr);
    run_unbatched = RunLoad("127.0.0.1", stack.gateway.port(), closed);
    stack.gateway.Shutdown();
  }

  BatchPolicy batched;
  batched.max_batch = 64;
  batched.min_delay_us = 0;
  batched.max_delay_us = 2000;
  LoadReport run_batched;
  double mean_batch_rows = 0.0;
  {
    // Same telemetry attachment as the batch1 stack (none): the comparison
    // isolates batching, not metrics overhead. Sections 2 and 3 attach to
    // the global registry so the stamped telemetry still carries the
    // sidet_gateway_* series.
    ServingStack stack(registry, batched, context, nullptr);
    run_batched = RunLoad("127.0.0.1", stack.gateway.port(), closed);
    const Json stats = stack.router.StatsJson();
    const Json* lane = stats.find("homes")->find("default");
    const double batches = lane->number_or("batches", 0);
    if (batches > 0) mean_batch_rows = lane->number_or("completed", 0) / batches;
    stack.gateway.Shutdown();
  }

  const double speedup =
      run_unbatched.throughput_rps > 0
          ? run_batched.throughput_rps / run_unbatched.throughput_rps
          : 0.0;
  Json batching = Json::Object();
  batching["batch1"] = ReportRun(run_unbatched);
  batching["batched"] = ReportRun(run_batched);
  batching["speedup_end_to_end"] = speedup;
  batching["mean_batch_rows"] = mean_batch_rows;
  std::printf("closed loop: batch1 %.0f rps, batched %.0f rps (%.2fx, %.1f rows/batch)\n",
              run_unbatched.throughput_rps, run_batched.throughput_rps, speedup,
              mean_batch_rows);

  // --- 1b. serving-lane capacity: the batching subsystem without the shared
  // transport floor. The >= 2x acceptance gate applies to this ratio.
  const double lane_batch1 =
      LaneCapacityRps(registry, context, home.now(), unbatched, 1000);
  const double lane_batched =
      LaneCapacityRps(registry, context, home.now(), batched, 1000);
  const double lane_speedup = lane_batch1 > 0 ? lane_batched / lane_batch1 : 0.0;
  Json lane = Json::Object();
  lane["batch1_rps"] = lane_batch1;
  lane["batched_rps"] = lane_batched;
  lane["speedup"] = lane_speedup;
  batching["lane"] = std::move(lane);
  report["batching"] = std::move(batching);
  std::printf("serving lane: batch1 %.0f rps, batched %.0f rps (%.2fx)\n", lane_batch1,
              lane_batched, lane_speedup);

  // --- 2. open-loop overload sweep, rates relative to measured capacity ---
  //
  // The SLO engine rides the sweep: one engine over the global registry,
  // evaluated after each phase, so each evaluation's window delta covers
  // exactly the traffic since the previous phase. The stock gateway
  // objectives must stay silent at the nominal 0.25x point (first phase, so
  // its delta is uncontaminated) and fire their burn-rate gauges by the 2x
  // overload point — both enforced as acceptance gates below.
  BatchPolicy overload = batched;
  overload.queue_capacity = 256;  // admission control is the story, not the socket
  const double capacity = run_batched.throughput_rps;
  SloEngine slo_engine;
  for (SloObjective& objective : DefaultGatewaySlos("default")) {
    slo_engine.AddObjective(std::move(objective));
  }
  // Pre-register the objectives' total/latency instruments (same names and
  // bounds the gateway uses) so the baseline evaluation resolves before the
  // first sweep stack attaches; bad-event counters may stay lazy.
  MetricsRegistry::Global().GetCounter("sidet_gateway_requests_total", "",
                                       "Parsed request lines");
  MetricsRegistry::Global().GetHistogram("sidet_gateway_judge_e2e_seconds");
  (void)slo_engine.Evaluate(MetricsRegistry::Global());  // baseline sample
  bool slo_silent_nominal = false;
  bool slo_fired_overload = false;
  Json sweep = Json::Array();
  for (const double fraction : {0.25, 0.5, 1.0, 2.0}) {
    LoadOptions open;
    open.connections = 4;
    open.offered_rps = capacity * fraction;
    open.duration_ms = 600;
    open.read_timeout_ms = 10000;
    open.timeline = true;
    open.request_tails = tails;
    ServingStack stack(registry, overload, context, &MetricsRegistry::Global());
    const LoadReport run = RunLoad("127.0.0.1", stack.gateway.port(), open);
    stack.gateway.Shutdown();
    const std::vector<SloState> slo_states = slo_engine.Evaluate(MetricsRegistry::Global());
    bool shed_slos_firing = false;
    bool any_firing = false;
    for (const SloState& state : slo_states) {
      any_firing = any_firing || state.firing;
      if (state.name == "availability" || state.name == "lane_shed_rate") {
        shed_slos_firing = shed_slos_firing || state.firing;
      }
    }
    // Nominal silence is judged on the shed-driven objectives — and only
    // when the measured traffic was actually within the 0.1% shed budget: on
    // a loaded shared box even the 0.25x point can legitimately shed, and
    // then firing is the engine being right, not noisy. The latency
    // objective is excluded outright (its 2 ms bound is machine-dependent at
    // this duty cycle).
    if (fraction == 0.25) {
      slo_silent_nominal = !shed_slos_firing || run.shed_rate > 0.001;
    }
    if (fraction == 2.0) slo_fired_overload = any_firing;
    Json point = ReportRun(run);
    point["capacity_fraction"] = fraction;
    point["slo"] = SloEngine::StatesJson(slo_states);
    std::printf(
        "open loop %.2fx capacity (%.0f rps): shed %.3f, p50 %.2f ms, p99 %.2f ms, "
        "slo %s\n",
        fraction, open.offered_rps, run.shed_rate, run.p50_ms, run.p99_ms,
        any_firing ? "FIRING" : "quiet");
    sweep.as_array().push_back(std::move(point));
  }
  report["overload_sweep"] = std::move(sweep);

  // --- 3. hot reload under load: zero dropped in-flight requests ----------
  LoadReport run_reload;
  std::uint64_t reloads = 0;
  {
    ServingStack stack(registry, batched, context, &MetricsRegistry::Global());
    std::atomic<bool> stop{false};
    std::thread reloader([&] {
      while (!stop.load()) {
        if (!stack.router.ReloadModel("default", kModelPath).ok()) std::abort();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
    run_reload = RunLoad("127.0.0.1", stack.gateway.port(), closed);
    stop.store(true);
    reloader.join();
    reloads = stack.router.reloads();
    stack.gateway.Shutdown();
  }
  const bool reload_zero_drop =
      run_reload.responses == run_reload.sent && run_reload.errors == 0;
  Json hot_reload = ReportRun(run_reload);
  hot_reload["reloads"] = reloads;
  hot_reload["zero_dropped"] = reload_zero_drop;
  report["hot_reload"] = std::move(hot_reload);
  std::printf("hot reload: %llu reloads mid-run, %llu/%llu responses, p99 %.2f ms\n",
              static_cast<unsigned long long>(reloads),
              static_cast<unsigned long long>(run_reload.responses),
              static_cast<unsigned long long>(run_reload.sent), run_reload.p99_ms);

  StampCalibration(report);
  StampTelemetry(report);
  std::ofstream out(out_path);
  out << report.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());

  // Self-checking acceptance gates: coalescing must pay for itself and a hot
  // reload must never eat an in-flight request. The batching gate is checked
  // on the lane ratio — on a shared-core host the end-to-end ratio is floored
  // by transport costs identical to both configurations (see header note).
  if (lane_speedup < 2.0) {
    std::fprintf(stderr, "FAIL: batched lane speedup %.2fx < 2x\n", lane_speedup);
    return 1;
  }
  if (!reload_zero_drop) {
    std::fprintf(stderr, "FAIL: hot reload dropped in-flight requests\n");
    return 1;
  }
  if (!slo_silent_nominal) {
    std::fprintf(stderr, "FAIL: shed-driven SLOs fired at 0.25x nominal load\n");
    return 1;
  }
  if (!slo_fired_overload) {
    std::fprintf(stderr, "FAIL: no SLO burn-rate gauge fired at 2x overload\n");
    return 1;
  }
  return 0;
}
