// Regenerates Table VI — "Smart home device model effect".
//
// For each of the six evaluated device families: build the labelled dataset
// from the strategy corpus, split 7:3, oversample the training side, train
// the decision tree, and report training-set accuracy, test-set accuracy,
// recall, precision ("Accuracy" column in the paper's table is precision),
// false-alarm rate (FPR) and false-negative rate — the paper's exact
// columns. 5-fold cross-validation accuracy is printed alongside, mirroring
// "we divide the data set by 7:3 … then use the cross-validation method".
//
// Paper reference rows (DSN'21 Table VI):
//   window              train .9901  test .9385  recall .9369  prec .9905  fpr .0526  fnr .0631
//   Air conditioning    train 1.0    test .9481  recall .9333  prec 1.0    fpr 0      fnr .0667
//   light               train .9075  test .8923  recall .9375  prec 1.0    fpr 0      fnr .0625
//   Curtains, blinds    train .9796  test .9545  recall .9412  prec 1.0    fpr 0      fnr .0588
//   TV, stereo          train 1.0    test .9473  recall .9444  prec 1.0    fpr 0      fnr .0556
//   Kitchen appliances  train 1.0    test .9643  recall .9630  prec 1.0    fpr 0      fnr .0370
#include <cstdio>

#include "datagen/corpus_generator.h"
#include "datagen/device_dataset.h"
#include "instructions/standard_instruction_set.h"
#include "ml/decision_tree.h"
#include "ml/sampling.h"
#include "ml/validation.h"
#include "util/table.h"

using namespace sidet;

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CorpusConfig corpus_config;
  Result<GeneratedCorpus> corpus = GenerateCorpus(corpus_config, registry);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n", corpus.error().message().c_str());
    return 1;
  }

  std::printf("TABLE VI — Smart home device model effect (reproduction)\n");
  std::printf("corpus: %zu strategies, %llu total platform users\n\n",
              corpus.value().corpus.size(),
              static_cast<unsigned long long>(corpus.value().corpus.TotalUsers()));

  TextTable table({"Equipment model", "Training set accuracy", "Test set accuracy",
                   "Recall rate", "Accuracy (precision)", "False alarm rate",
                   "False negative rate", "5-fold CV accuracy"});

  Rng rng(424242);
  for (const DeviceCategory category : EvaluatedCategories()) {
    const DeviceDatasetConfig config = DefaultConfigFor(category);
    Result<DeviceDataset> built = BuildDeviceDataset(corpus.value().corpus, config);
    if (!built.ok()) {
      std::fprintf(stderr, "dataset build failed: %s\n", built.error().message().c_str());
      return 1;
    }
    const Dataset& data = built.value().data;

    const TrainTestSplit split = StratifiedSplit(data, 0.3, rng);
    Dataset train = RandomOversample(split.train, rng);
    train.Shuffle(rng);

    DecisionTree tree;
    if (const Status fitted = tree.Fit(train); !fitted.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", fitted.error().message().c_str());
      return 1;
    }

    const BinaryMetrics train_metrics = ComputeMetrics(train.labels(), tree.PredictAll(train));
    const BinaryMetrics test_metrics =
        ComputeMetrics(split.test.labels(), tree.PredictAll(split.test));

    const CrossValidationResult cv = CrossValidate(
        data, [] { return std::make_unique<DecisionTree>(); }, 5, rng,
        [](const Dataset& d, Rng& r) { return RandomOversample(d, r); });

    table.AddRow({std::string(EvaluationRowName(category)),
                  TextTable::Cell(train_metrics.accuracy),
                  TextTable::Cell(test_metrics.accuracy),
                  TextTable::Cell(test_metrics.recall),
                  TextTable::Cell(test_metrics.precision),
                  TextTable::Cell(test_metrics.fpr),
                  TextTable::Cell(test_metrics.fnr),
                  TextTable::Cell(cv.mean_accuracy)});
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper shape checks: every test accuracy >= ~0.89; kitchen appliances the\n"
              "best-fitting model; training accuracy >= test accuracy; FPR ~0 for most\n"
              "families; FNR <= ~0.07.\n");
  return 0;
}
