// Headline end-to-end experiment (§V / §III.A): live attack interception.
//
// Builds the demo home, trains the full IDS from scratch (survey -> corpus ->
// feature memory), then over a simulated fortnight repeatedly (a) drives the
// legitimate trigger-action engine with the IDS installed as its guard, and
// (b) launches the attack library's scenarios (spoofed smoke sensor ->
// backdoor.open, raw night-time window.open injection, ...), judging each
// attack instruction against the live sensor snapshot.
//
// Reported per attack kind: interception rate. Reported for legitimate
// traffic: false-block rate. The paper's claim is that high-threat
// instructions issued outside their legal activity scenario are actively
// intercepted while normal user operations rarely are (FNR <= 6.67%).
#include <cstdio>

#include "attacks/attack_generator.h"
#include "automation/engine.h"
#include "core/camera_warning.h"
#include "core/ids.h"
#include "datagen/corpus_generator.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "util/table.h"

using namespace sidet;

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> ids = BuildIdsFromScratch(registry, /*seed=*/1717);
  if (!ids.ok()) {
    std::fprintf(stderr, "ids build failed: %s\n", ids.error().message().c_str());
    return 1;
  }

  SmartHome home = BuildDemoHome(/*seed=*/88, /*seasonal_mean_c=*/16.0);
  AttackGenerator attacker(home, registry, /*seed=*/13);

  // Legitimate traffic: the corpus' most popular rules for the demo home.
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n", corpus.error().message().c_str());
    return 1;
  }
  RuleEngine engine(registry, home);
  std::size_t installed = 0;
  for (const Rule* rule : corpus.value().corpus.ByPopularity()) {
    if (installed >= 24) break;
    engine.AddRule(*rule);
    ++installed;
  }
  engine.SetGuard(ids.value().AsGuard());

  CameraWarningService camera;

  // --- Simulate a fortnight ----------------------------------------------------
  std::size_t legit_fired = 0;
  std::size_t legit_blocked = 0;
  std::map<AttackKind, std::pair<int, int>> attack_results;  // kind -> (intercepted, total)

  Rng rng(5150);
  const int minutes = 14 * 24 * 60;
  for (int minute = 0; minute < minutes; ++minute) {
    home.Step(kSecondsPerMinute);
    (void)camera.Observe(home.Snapshot(), home.now());
    for (const FiredAction& action : engine.Poll()) {
      if (action.execute_failed) continue;
      ++legit_fired;
      if (action.blocked) ++legit_blocked;
    }

    // An attack attempt roughly every four hours.
    if (rng.Bernoulli(1.0 / 240.0)) {
      const AttackKind kind = AllAttackKinds()[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(kAttackKindCount) - 1))];
      Result<AttackAttempt> attempt = attacker.Launch(kind);
      if (!attempt.ok()) continue;

      const SensorSnapshot context = home.Snapshot();  // spoofs included
      Result<Judgement> judgement =
          ids.value().Judge(*attempt.value().instruction, context, home.now());
      auto& [intercepted, attempts] = attack_results[kind];
      ++attempts;
      const bool blocked = judgement.ok() ? !judgement.value().allowed : true;
      if (blocked) ++intercepted;
      attacker.Cleanup(attempt.value());
    }
  }

  std::printf("ATTACK INTERCEPTION — end-to-end IDS evaluation (14 simulated days)\n\n");
  TextTable table({"Attack scenario", "Attempts", "Intercepted", "Interception rate"});
  int total_attempts = 0;
  int total_intercepted = 0;
  for (const auto& [kind, counts] : attack_results) {
    const auto& [intercepted, attempts] = counts;
    total_attempts += attempts;
    total_intercepted += intercepted;
    table.AddRow({std::string(ToString(kind)), std::to_string(attempts),
                  std::to_string(intercepted),
                  TextTable::Percent(attempts == 0
                                         ? 0.0
                                         : static_cast<double>(intercepted) / attempts)});
  }
  table.AddRow({"TOTAL", std::to_string(total_attempts), std::to_string(total_intercepted),
                TextTable::Percent(total_attempts == 0 ? 0.0
                                                       : static_cast<double>(total_intercepted) /
                                                             total_attempts)});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Camera warnings raised over the fortnight (Fig 7 triggers, §V):\n");
  for (const auto& [trigger, count] : camera.CountsByTrigger()) {
    std::printf("  %-18s %d\n", std::string(ToString(trigger)).c_str(), count);
  }
  std::printf("\nLegitimate automation firings: %zu, falsely blocked: %zu (%.2f%%)\n",
              legit_fired, legit_blocked,
              legit_fired == 0 ? 0.0
                               : 100.0 * static_cast<double>(legit_blocked) /
                                     static_cast<double>(legit_fired));
  std::printf("\nPaper shape check: sensor-spoof and out-of-context injections are\n"
              "intercepted at high rate while legitimate automations pass (the paper's\n"
              "FNR-like false-block rate stays in single digits).\n");
  return 0;
}
