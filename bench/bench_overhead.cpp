// Ablation A3 — system overhead (the measurement §VI lists as future work):
// google-benchmark timings for every stage of the live judgement path.
//
//   - miio packet encode/decode (MD5 + AES-CBC round trip)
//   - REST request round trip through the in-memory bridge
//   - full two-vendor sensor collection
//   - featurize + decision-tree inference (the judger), pointer vs compiled
//   - batched judgement through the flat-array engine
//   - end-to-end: collect + judge one sensitive instruction
//   - model training (per-device tree fit), for re-training cost
//
// Results stream to the console and to BENCH_overhead.json (google-benchmark
// JSON schema plus git_describe/hardware_concurrency context keys).
#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/collector.h"
#include "core/ids.h"
#include "datagen/corpus_generator.h"
#include "datagen/device_dataset.h"
#include "instructions/standard_instruction_set.h"
#include "ml/sampling.h"
#include "ml/validation.h"
#include "protocol/miio_gateway.h"
#include "protocol/rest_bridge.h"

using namespace sidet;

namespace {

struct Fixture {
  InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome home = BuildDemoHome(42);
  InMemoryTransport transport{7};
  MiioGateway gateway{0x1234, home};
  RestBridge bridge{home, "long-lived-token"};
  ContextIds ids;

  Fixture()
      : ids([this] {
          Result<ContextIds> built = BuildIdsFromScratch(registry, 99);
          if (!built.ok()) std::abort();
          return std::move(built).value();
        }()) {
    gateway.BindTo(transport, "udp://gateway");
    bridge.BindTo(transport, "http://ha");
    home.Step(kSecondsPerHour);
    // Benchmarks run the production configuration: telemetry compiled in and
    // attached (no exporter polling). The metrics the run accumulates are
    // stamped into BENCH_overhead.json at exit.
    ids.AttachTelemetry(&MetricsRegistry::Global());
  }

  std::unique_ptr<SensorDataCollector> MakeCollector() {
    auto miio = std::make_unique<MiioClient>(transport, "udp://gateway");
    if (!miio->HandshakeForToken().ok()) std::abort();
    auto rest = std::make_unique<RestClient>(transport, "http://ha", "long-lived-token");
    auto collector = std::make_unique<SensorDataCollector>(std::move(miio), std::move(rest));
    collector->AttachTelemetry(&MetricsRegistry::Global());
    return collector;
  }
};

Fixture& GetFixture() {
  static Fixture fixture;
  return fixture;
}

void BM_MiioEncodeDecode(benchmark::State& state) {
  const MiioToken token = TokenForDevice(77);
  MiioMessage message;
  message.device_id = 77;
  message.payload_json =
      R"({"id":1,"method":"get_prop","params":["kitchen_smoke","living_temperature"]})";
  std::uint32_t stamp = 1;
  for (auto _ : state) {
    message.stamp = ++stamp;
    const Bytes packet = EncodeMiioPacket(token, message);
    Result<MiioMessage> decoded =
        DecodeMiioPacket(token, std::span<const std::uint8_t>(packet));
    benchmark::DoNotOptimize(decoded.ok());
  }
}
BENCHMARK(BM_MiioEncodeDecode)->Repetitions(5)->ReportAggregatesOnly(true);

void BM_RestRoundTrip(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  RestClient client(fixture.transport, "http://ha", "long-lived-token");
  for (auto _ : state) {
    Result<SensorSnapshot> snapshot = client.PollAll();
    if (!snapshot.ok()) state.SkipWithError("rest poll failed");
    benchmark::DoNotOptimize(snapshot.ok());
  }
}
BENCHMARK(BM_RestRoundTrip)->Repetitions(5)->ReportAggregatesOnly(true);

void BM_CollectBothVendors(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const std::unique_ptr<SensorDataCollector> collector = fixture.MakeCollector();
  for (auto _ : state) {
    Result<SensorSnapshot> snapshot = collector->Collect(fixture.home.now());
    if (!snapshot.ok()) state.SkipWithError("collect failed");
    benchmark::DoNotOptimize(snapshot.ok());
  }
}
BENCHMARK(BM_CollectBothVendors)->Repetitions(5)->ReportAggregatesOnly(true);

void BM_JudgeOnly(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const Instruction* window_open = fixture.registry.FindByName("window.open");
  const SensorSnapshot snapshot = fixture.home.Snapshot();
  for (auto _ : state) {
    Result<Judgement> judgement =
        fixture.ids.Judge(*window_open, snapshot, fixture.home.now());
    benchmark::DoNotOptimize(judgement.ok());
  }
}
BENCHMARK(BM_JudgeOnly)->Repetitions(5)->ReportAggregatesOnly(true);

// Same judgement routed through the pointer tree: the pre-compilation
// baseline the flat-array engine is compared against.
void BM_JudgeOnlyPointerTree(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const Instruction* window_open = fixture.registry.FindByName("window.open");
  const SensorSnapshot snapshot = fixture.home.Snapshot();
  fixture.ids.EnableCompiledInference(false);
  for (auto _ : state) {
    Result<Judgement> judgement =
        fixture.ids.Judge(*window_open, snapshot, fixture.home.now());
    benchmark::DoNotOptimize(judgement.ok());
  }
  fixture.ids.EnableCompiledInference(true);
}
BENCHMARK(BM_JudgeOnlyPointerTree)->Repetitions(5)->ReportAggregatesOnly(true);

// Bulk judgement through JudgeBatch: featurization amortized per context
// group, scoring through the compiled flat arrays. items_per_second is the
// end-to-end instruction throughput.
void BM_JudgeBatchCompiled(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const SensorSnapshot snapshot = fixture.home.Snapshot();
  std::vector<ContextIds::JudgeRequest> requests;
  for (const Instruction& instruction : fixture.registry.all()) {
    if (!fixture.ids.detector().IsSensitive(instruction)) continue;
    if (!fixture.ids.memory().HasModel(instruction.category)) continue;
    requests.push_back({&instruction, &snapshot, fixture.home.now()});
  }
  while (requests.size() < static_cast<std::size_t>(state.range(0))) {
    requests.push_back(requests[requests.size() % 16]);
  }
  requests.resize(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const std::vector<Judgement> verdicts = fixture.ids.JudgeBatch(requests, /*threads=*/1);
    benchmark::DoNotOptimize(verdicts.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JudgeBatchCompiled)->Arg(64)->Arg(512)->Repetitions(5)->ReportAggregatesOnly(true);

void BM_EndToEndCollectAndJudge(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const std::unique_ptr<SensorDataCollector> collector = fixture.MakeCollector();
  const Instruction* window_open = fixture.registry.FindByName("window.open");
  for (auto _ : state) {
    Result<SensorSnapshot> snapshot = collector->Collect(fixture.home.now());
    if (!snapshot.ok()) state.SkipWithError("collect failed");
    Result<Judgement> judgement =
        fixture.ids.Judge(*window_open, snapshot.value(), fixture.home.now());
    benchmark::DoNotOptimize(judgement.ok());
  }
}
BENCHMARK(BM_EndToEndCollectAndJudge)->Repetitions(5)->ReportAggregatesOnly(true);

void BM_TrainWindowModel(benchmark::State& state) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  if (!corpus.ok()) std::abort();
  Result<DeviceDataset> built = BuildDeviceDataset(
      corpus.value().corpus, DefaultConfigFor(DeviceCategory::kWindowAndLock));
  if (!built.ok()) std::abort();
  Rng rng(1);
  Dataset train = RandomOversample(built.value().data, rng);
  for (auto _ : state) {
    DecisionTree tree;
    (void)tree.Fit(train);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TrainWindowModel)->Unit(benchmark::kMillisecond)->Repetitions(3)->ReportAggregatesOnly(true);

}  // namespace

int main(int argc, char** argv) {
  // Default the machine-readable artefact on: console output as usual, plus
  // google-benchmark's JSON schema in BENCH_overhead.json (override with an
  // explicit --benchmark_out=...).
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_overhead.json";
  std::string format_flag = "--benchmark_out_format=json";
  std::string out_path = "BENCH_overhead.json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
      out_path = arg.substr(16);
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) return 1;
  benchmark::AddCustomContext("git_describe", sidet::bench::GitDescribe());
  benchmark::AddCustomContext("hardware_concurrency",
                              std::to_string(std::thread::hardware_concurrency()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // google-benchmark owns the JSON writer, so the telemetry snapshot is
  // patched into the artefact after the file is closed.
  sidet::bench::StampTelemetryFile(out_path);
  return 0;
}
