// Ablation A2 — two design choices of §IV.C:
//  (1) class-imbalance handling: none vs random oversampling (the paper's
//      choice) vs SMOTE vs random undersampling, on the most imbalanced
//      configuration (positives dominate the crawled corpus);
//  (2) split criterion: Gini vs information gain vs gain ratio ("Generally,
//      decision trees involve three standard methods…").
#include <cstdio>

#include "datagen/corpus_generator.h"
#include "datagen/device_dataset.h"
#include "instructions/standard_instruction_set.h"
#include "ml/decision_tree.h"
#include "ml/sampling.h"
#include "ml/validation.h"
#include "util/table.h"

using namespace sidet;

namespace {

BinaryMetrics RunOnce(const Dataset& data, Rng& rng,
                      const std::function<Dataset(const Dataset&, Rng&)>& rebalance,
                      DecisionTreeParams params = {}) {
  const TrainTestSplit split = StratifiedSplit(data, 0.3, rng);
  Dataset train = rebalance ? rebalance(split.train, rng) : split.train;
  train.Shuffle(rng);
  DecisionTree tree(params);
  (void)tree.Fit(train);
  return ComputeMetrics(split.test.labels(), tree.PredictAll(split.test));
}

}  // namespace

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n", corpus.error().message().c_str());
    return 1;
  }

  // Exaggerate the imbalance beyond the default to make the sampling choice
  // visible: 92% positive.
  DeviceDatasetConfig config = DefaultConfigFor(DeviceCategory::kWindowAndLock);
  config.positive_fraction = 0.92;
  config.samples = 4000;
  Result<DeviceDataset> built = BuildDeviceDataset(corpus.value().corpus, config);
  if (!built.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n", built.error().message().c_str());
    return 1;
  }
  const Dataset& data = built.value().data;

  std::printf("ABLATION — imbalance handling (window dataset, 92%% positive)\n\n");
  TextTable sampling_table(
      {"Strategy", "Test accuracy", "Recall", "Precision", "FPR", "FNR"});
  struct Strategy {
    const char* name;
    std::function<Dataset(const Dataset&, Rng&)> rebalance;
  };
  const std::vector<Strategy> strategies = {
      {"none", nullptr},
      {"random oversample (paper)", [](const Dataset& d, Rng& r) { return RandomOversample(d, r); }},
      {"smote", [](const Dataset& d, Rng& r) { return SmoteOversample(d, r); }},
      {"random undersample", [](const Dataset& d, Rng& r) { return RandomUndersample(d, r); }},
  };
  Rng rng(777);
  for (const Strategy& strategy : strategies) {
    const BinaryMetrics metrics = RunOnce(data, rng, strategy.rebalance);
    sampling_table.AddRow({strategy.name, TextTable::Cell(metrics.accuracy),
                           TextTable::Cell(metrics.recall), TextTable::Cell(metrics.precision),
                           TextTable::Cell(metrics.fpr), TextTable::Cell(metrics.fnr)});
  }
  std::printf("%s\n", sampling_table.Render().c_str());
  std::printf("Shape check: without rebalancing the minority (attack) class is\n"
              "under-served — higher FPR; oversampling restores it at equal accuracy.\n\n");

  std::printf("ABLATION — split criterion (window dataset, default balance)\n\n");
  Result<DeviceDataset> standard = BuildDeviceDataset(
      corpus.value().corpus, DefaultConfigFor(DeviceCategory::kWindowAndLock));
  if (!standard.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n", standard.error().message().c_str());
    return 1;
  }
  TextTable criterion_table({"Criterion", "Test accuracy", "FPR", "FNR", "Tree nodes"});
  for (const SplitCriterion criterion :
       {SplitCriterion::kGini, SplitCriterion::kInfoGain, SplitCriterion::kGainRatio}) {
    DecisionTreeParams params;
    params.criterion = criterion;
    Rng criterion_rng(criterion == SplitCriterion::kGini ? 101 : 101);  // same split each time
    const TrainTestSplit split = StratifiedSplit(standard.value().data, 0.3, criterion_rng);
    Dataset train = RandomOversample(split.train, criterion_rng);
    train.Shuffle(criterion_rng);
    DecisionTree tree(params);
    (void)tree.Fit(train);
    const BinaryMetrics metrics =
        ComputeMetrics(split.test.labels(), tree.PredictAll(split.test));
    criterion_table.AddRow({std::string(ToString(criterion)),
                            TextTable::Cell(metrics.accuracy), TextTable::Cell(metrics.fpr),
                            TextTable::Cell(metrics.fnr), std::to_string(tree.node_count())});
  }
  std::printf("%s\n", criterion_table.Render().c_str());
  std::printf("Shape check: the three criteria land within noise of each other on this\n"
              "data — consistent with the paper treating the choice as free.\n");
  return 0;
}
