// Regenerates Table III — "Threat situation of control instructions for
// smart home devices" — by running the calibrated questionnaire simulator
// over 340 respondents, alongside the coverage and control-vs-status
// headline statistics of §IV.A.
#include <cstdio>

#include "survey/survey.h"
#include "util/table.h"

using namespace sidet;

int main() {
  SurveySimulator simulator(SurveyCalibration{}, /*seed=*/340340);
  const SurveyResults results = simulator.Run(340);
  const ThreatProfile paper = PaperTableThree();

  std::printf("TABLE III — Threat situation of control instructions (reproduction, n=%d)\n\n",
              results.respondents);

  TextTable table({"Equipment category", "High threat", "Low threat", "No threat",
                   "Paper high", "Sensitive?"});
  for (const DeviceCategory category : AllDeviceCategories()) {
    const CategoryTally& tally = results.control[static_cast<std::size_t>(category)];
    table.AddRow({std::string(DisplayName(category)),
                  TextTable::Percent(tally.fraction(ThreatLevel::kHigh)),
                  TextTable::Percent(tally.fraction(ThreatLevel::kLow)),
                  TextTable::Percent(tally.fraction(ThreatLevel::kNone)),
                  TextTable::Percent(paper.Of(category).high),
                  results.ToThreatProfile().IsSensitive(category) ? "yes" : "no"});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("Control instructions rated more threatening than status acquisition: %s "
              "(paper: 85.29%%)\n",
              TextTable::Percent(results.control_more_threatening_fraction).c_str());
  std::printf("Owned devices covered by the Table I catalogue: %s (paper: 91.18%%)\n",
              TextTable::Percent(results.coverage_fraction).c_str());

  const std::vector<DeviceCategory> sensitive =
      results.ToThreatProfile().SensitiveCategories();
  std::printf("\nSensitive (high-threat > 50%%) categories (%zu):\n", sensitive.size());
  for (const DeviceCategory category : sensitive) {
    std::printf("  - %s\n", std::string(DisplayName(category)).c_str());
  }
  std::printf("\nPaper shape checks: window & camera ~94%% high threat; TV/audio and\n"
              "sweeping robots below the 50%% sensitivity line; all others above it.\n");
  return 0;
}
