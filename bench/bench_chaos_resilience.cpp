// Chaos harness: graceful degradation of the live IDS under scheduled
// transport faults.
//
// Replays the attack-interception workload (bench_attack_interception) with
// judgements routed through the *live* collector path — encrypted miio poll +
// REST poll over the in-memory transport — while a FaultSchedule degrades the
// network: packet loss with latency, a flapping gateway, a hard gateway
// outage, a stuck (stale-replaying) bridge. Every scenario runs the identical
// seeded workload, so verdict drift against the fault-free baseline isolates
// the effect of the faults. Emits JSON: interception/false-block accuracy,
// probe-verdict drift, p50/p99 simulated collection latency, breaker state
// transitions, collector degradation counters.
//
// Usage: bench_chaos_resilience [--seed N] [--days N]
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/attack_generator.h"
#include "core/ids.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "protocol/fault_schedule.h"
#include "protocol/miio_gateway.h"
#include "protocol/rest_bridge.h"
#include "util/args.h"
#include "util/stats.h"

using namespace sidet;

namespace {

constexpr const char* kGatewayAddress = "udp://gw";
constexpr const char* kBridgeAddress = "http://ha";

// Sensitive control instructions probed on a fixed cadence; their verdicts
// are compared slot-by-slot against the fault-free run.
const std::vector<std::string> kProbes = {"window.open", "curtain.open", "light.on"};

struct Scenario {
  std::string name;
  FaultSchedule schedule;
};

std::vector<Scenario> BuildScenarios() {
  std::vector<Scenario> scenarios;
  scenarios.push_back({"fault_free", FaultSchedule{}});

  {  // Lossy link: drops, latency jitter, duplicate datagrams on every host.
    FaultSpec spec;
    spec.drop_probability = 0.15;
    spec.duplicate_probability = 0.05;
    spec.latency_seconds = 1;
    spec.latency_jitter_seconds = 2;
    FaultSchedule schedule;
    schedule.SetDefault(spec);
    scenarios.push_back({"lossy_latency", std::move(schedule)});
  }
  {  // Flapping gateway: from day 1, up 7 minutes / down 4 minutes. The 11
     // minute period is coprime with the 30 minute probe cadence, so probes
     // sweep through every phase of the flap cycle.
    FaultSpec spec;
    spec.flap_start = SimTime::FromDayTime(1, 0);
    spec.flap_up_seconds = 7 * kSecondsPerMinute;
    spec.flap_down_seconds = 4 * kSecondsPerMinute;
    FaultSchedule schedule;
    schedule.Set(kGatewayAddress, spec);
    scenarios.push_back({"flapping_gateway", std::move(schedule)});
  }
  {  // Hard outage: the gateway is down from day 2 until day 5.
    FaultSpec spec;
    spec.outages.push_back(
        {SimTime::FromDayTime(2, 0), SimTime::FromDayTime(5, 0)});
    FaultSchedule schedule;
    schedule.Set(kGatewayAddress, spec);
    scenarios.push_back({"gateway_outage", std::move(schedule)});
  }
  {  // Stuck bridge: from day 2 the REST bridge replays its last reply.
    FaultSpec spec;
    spec.stuck_after = SimTime::FromDayTime(2, 0);
    FaultSchedule schedule;
    schedule.Set(kBridgeAddress, spec);
    scenarios.push_back({"stuck_bridge", std::move(schedule)});
  }
  return scenarios;
}

struct ScenarioRun {
  std::string name;
  // One entry per probe slot: 1 allowed, 0 blocked, 2 judgement error.
  std::vector<int> probe_verdicts;
  std::size_t probe_blocked = 0;
  std::size_t attack_attempts = 0;
  std::size_t attack_intercepted = 0;
  std::vector<double> collect_latency_seconds;
  CollectorStats collector_stats;
  IdsStats ids_stats;
  std::size_t audit_degraded_records = 0;
  std::size_t breaker_transitions = 0;
  std::size_t breaker_opened = 0;
  std::string miio_breaker_state;
  std::size_t transport_outage_rejections = 0;
  std::size_t transport_stuck_replays = 0;
  std::size_t transport_duplicates = 0;
};

ScenarioRun RunScenario(const Scenario& scenario, const InstructionRegistry& registry,
                        const ContextFeatureMemory& trained_memory, std::uint64_t seed,
                        int days) {
  ScenarioRun run;
  run.name = scenario.name;

  SmartHome home = BuildDemoHome(seed & 0xffff);
  SimClock net_clock(home.now());
  InMemoryTransport transport(seed ^ 0xc0ffee);
  MiioGateway gateway(0x99, home);
  gateway.BindTo(transport, kGatewayAddress);
  RestBridge bridge(home, "chaos-token");
  bridge.BindTo(transport, kBridgeAddress);

  auto miio = std::make_unique<MiioClient>(transport, kGatewayAddress);
  if (!miio->HandshakeForToken().ok()) {
    std::fprintf(stderr, "handshake failed in scenario %s\n", scenario.name.c_str());
    return run;
  }
  auto rest = std::make_unique<RestClient>(transport, kBridgeAddress, "chaos-token");

  // Faults start only after the (fault-free) provisioning handshake, like a
  // deployment that degrades after setup.
  transport.SetFaultSchedule(scenario.schedule);
  transport.AttachClock(&net_clock);

  CollectorConfig config;
  config.max_retries = 4;
  config.backoff = {.initial_seconds = 1, .multiplier = 2.0, .max_seconds = 30, .jitter = 0.25};
  config.breaker = {.failure_threshold = 4, .open_seconds = 10 * kSecondsPerMinute};
  config.deadline_budget_seconds = 60;
  auto collector = std::make_unique<SensorDataCollector>(std::move(miio), std::move(rest),
                                                         config);
  collector->AttachClock(&net_clock);
  SensorDataCollector* collector_ptr = collector.get();

  Result<ContextFeatureMemory> memory = ContextFeatureMemory::FromJson(trained_memory.ToJson());
  if (!memory.ok()) {
    std::fprintf(stderr, "memory clone failed: %s\n", memory.error().message().c_str());
    return run;
  }
  ContextIds ids(SensitiveInstructionDetector(PaperTableThree()), std::move(memory).value(),
                 std::move(collector));
  AuditLog audit;
  ids.SetAuditLog(&audit);

  AttackGenerator attacker(home, registry, seed ^ 0xa77ac);
  Rng workload_rng(seed ^ 0x5ced);  // same across scenarios: identical workload

  const auto judge_live = [&](const Instruction& instruction) -> Result<Judgement> {
    const SimTime before = net_clock.now();
    Result<Judgement> verdict = ids.JudgeLive(instruction, home.now());
    run.collect_latency_seconds.push_back(static_cast<double>(net_clock.now() - before));
    return verdict;
  };

  const int minutes = days * 24 * 60;
  for (int minute = 0; minute < minutes; ++minute) {
    home.Step(kSecondsPerMinute);
    net_clock.AdvanceTo(home.now());

    if (minute % 30 == 0) {
      for (const std::string& name : kProbes) {
        const Instruction* probe = registry.FindByName(name);
        Result<Judgement> verdict = judge_live(*probe);
        int coded = 2;
        if (verdict.ok()) coded = verdict.value().allowed ? 1 : 0;
        if (coded == 0) ++run.probe_blocked;
        run.probe_verdicts.push_back(coded);
      }
    }

    // An attack attempt roughly every four hours, at seeded times shared by
    // every scenario.
    if (workload_rng.Bernoulli(1.0 / 240.0)) {
      const AttackKind kind = AllAttackKinds()[static_cast<std::size_t>(
          workload_rng.UniformInt(0, static_cast<std::int64_t>(kAttackKindCount) - 1))];
      Result<AttackAttempt> attempt = attacker.Launch(kind);
      if (!attempt.ok()) continue;
      Result<Judgement> verdict = judge_live(*attempt.value().instruction);
      ++run.attack_attempts;
      const bool blocked = verdict.ok() ? !verdict.value().allowed : true;
      if (blocked) ++run.attack_intercepted;
      attacker.Cleanup(attempt.value());
    }
  }

  run.collector_stats = collector_ptr->stats();
  run.ids_stats = ids.stats();
  run.breaker_transitions =
      collector_ptr->miio_breaker().transitions() + collector_ptr->rest_breaker().transitions();
  run.breaker_opened =
      collector_ptr->miio_breaker().times_opened() + collector_ptr->rest_breaker().times_opened();
  run.miio_breaker_state = ToString(collector_ptr->miio_breaker().state());
  run.transport_outage_rejections = transport.outage_rejections();
  run.transport_stuck_replays = transport.stuck_replays();
  run.transport_duplicates = transport.duplicates_delivered();
  for (const AuditRecord& record : audit.records()) {
    if (record.degraded) ++run.audit_degraded_records;
  }
  return run;
}

Json ToJson(const ScenarioRun& run, const ScenarioRun& baseline) {
  Json out = Json::Object();
  out["name"] = run.name;

  Json attacks = Json::Object();
  attacks["attempts"] = run.attack_attempts;
  attacks["intercepted"] = run.attack_intercepted;
  const double rate = run.attack_attempts == 0
                          ? 0.0
                          : static_cast<double>(run.attack_intercepted) /
                                static_cast<double>(run.attack_attempts);
  const double baseline_rate = baseline.attack_attempts == 0
                                   ? 0.0
                                   : static_cast<double>(baseline.attack_intercepted) /
                                         static_cast<double>(baseline.attack_attempts);
  attacks["interception_rate"] = rate;
  attacks["rate_drift_vs_baseline"] = rate - baseline_rate;
  out["attacks"] = std::move(attacks);

  Json probes = Json::Object();
  probes["slots"] = run.probe_verdicts.size();
  probes["blocked"] = run.probe_blocked;
  std::size_t comparable = std::min(run.probe_verdicts.size(), baseline.probe_verdicts.size());
  std::size_t drifted = 0;
  for (std::size_t i = 0; i < comparable; ++i) {
    if (run.probe_verdicts[i] != baseline.probe_verdicts[i]) ++drifted;
  }
  probes["verdicts_drifted"] = drifted;
  probes["drift_fraction"] =
      comparable == 0 ? 0.0 : static_cast<double>(drifted) / static_cast<double>(comparable);
  out["probes"] = std::move(probes);

  Json latency = Json::Object();
  latency["collections"] = run.collect_latency_seconds.size();
  const bool have_latency = !run.collect_latency_seconds.empty();
  latency["p50_seconds"] = have_latency ? Percentile(run.collect_latency_seconds, 50.0) : 0.0;
  latency["p99_seconds"] = have_latency ? Percentile(run.collect_latency_seconds, 99.0) : 0.0;
  latency["max_seconds"] = have_latency ? Max(run.collect_latency_seconds) : 0.0;
  out["latency"] = std::move(latency);

  Json collector = Json::Object();
  collector["miio_retries"] = run.collector_stats.miio_retries;
  collector["rest_retries"] = run.collector_stats.rest_retries;
  collector["failures"] = run.collector_stats.failures;
  collector["vendor_failures"] = run.collector_stats.vendor_failures;
  collector["stale_serves"] = run.collector_stats.stale_serves;
  collector["breaker_skips"] = run.collector_stats.breaker_skips;
  collector["deadline_stops"] = run.collector_stats.deadline_stops;
  collector["backoff_wait_seconds"] = run.collector_stats.backoff_wait_seconds;
  collector["breaker_transitions"] = run.breaker_transitions;
  collector["breaker_opened"] = run.breaker_opened;
  collector["miio_breaker_final_state"] = run.miio_breaker_state;
  out["collector"] = std::move(collector);

  Json ids = Json::Object();
  ids["judged"] = run.ids_stats.judged;
  ids["judged_degraded"] = run.ids_stats.judged_degraded;
  ids["blocked_on_outage"] = run.ids_stats.blocked_on_outage;
  ids["allowed_degraded"] = run.ids_stats.allowed_degraded;
  ids["audit_degraded_records"] = run.audit_degraded_records;
  out["ids"] = std::move(ids);

  Json transport = Json::Object();
  transport["outage_rejections"] = run.transport_outage_rejections;
  transport["stuck_replays"] = run.transport_stuck_replays;
  transport["duplicates_delivered"] = run.transport_duplicates;
  out["transport"] = std::move(transport);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.AddFlag("seed", "4242", "workload + fault seed (same seed => same run)");
  args.AddFlag("days", "7", "simulated days per scenario");
  const Status parsed = args.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.error().message().c_str(),
                 args.Help("bench_chaos_resilience").c_str());
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed"));
  const int days = static_cast<int>(args.GetInt("days"));

  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> trained = BuildIdsFromScratch(registry, seed);
  if (!trained.ok()) {
    std::fprintf(stderr, "ids build failed: %s\n", trained.error().message().c_str());
    return 1;
  }

  std::vector<ScenarioRun> runs;
  for (const Scenario& scenario : BuildScenarios()) {
    std::fprintf(stderr, "running scenario %s...\n", scenario.name.c_str());
    runs.push_back(RunScenario(scenario, registry, trained.value().memory(), seed, days));
  }

  Json out = Json::Object();
  out["seed"] = seed;
  out["days"] = days;
  Json scenarios = Json::Array();
  for (const ScenarioRun& run : runs) {
    scenarios.as_array().push_back(ToJson(run, runs.front()));
  }
  out["scenarios"] = std::move(scenarios);
  std::printf("%s\n", out.Dump().c_str());
  return 0;
}
