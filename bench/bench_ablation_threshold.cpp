// Ablation A4 — judger decision threshold.
//
// The paper's instruction judger allows when the tree's leaf probability
// clears 0.5. This bench sweeps the threshold on the window model's held-out
// scores, prints the FPR/FNR trade-off curve and AUC, and shows the
// conservative operating point (threshold with FPR <= 1%) a deployment that
// never wants to block a legitimate user would pick.
#include <cstdio>

#include "datagen/corpus_generator.h"
#include "datagen/device_dataset.h"
#include "instructions/standard_instruction_set.h"
#include "ml/decision_tree.h"
#include "ml/roc.h"
#include "ml/sampling.h"
#include "ml/validation.h"
#include "util/table.h"

using namespace sidet;

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n", corpus.error().message().c_str());
    return 1;
  }
  Result<DeviceDataset> built = BuildDeviceDataset(
      corpus.value().corpus, DefaultConfigFor(DeviceCategory::kWindowAndLock));
  if (!built.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n", built.error().message().c_str());
    return 1;
  }

  Rng rng(4321);
  const TrainTestSplit split = StratifiedSplit(built.value().data, 0.3, rng);
  Dataset train = RandomOversample(split.train, rng);
  train.Shuffle(rng);
  DecisionTree tree;
  if (const Status fitted = tree.Fit(train); !fitted.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fitted.error().message().c_str());
    return 1;
  }

  std::vector<double> scores;
  scores.reserve(split.test.size());
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    scores.push_back(tree.PredictProbability(split.test.row(i)));
  }
  const std::vector<int>& labels = split.test.labels();

  std::printf("ABLATION — judger decision threshold (window model, held-out scores)\n\n");
  const RocCurve curve = ComputeRoc(scores, labels);
  std::printf("ROC AUC: %.4f over %zu held-out samples\n\n", curve.auc, scores.size());

  TextTable table({"Threshold", "Accuracy", "Recall", "FPR (false alarm)",
                   "FNR (blocked legit)"});
  for (const double threshold : {0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9}) {
    const BinaryMetrics metrics = MetricsAtThreshold(scores, labels, threshold);
    table.AddRow({TextTable::Cell(threshold, 2), TextTable::Cell(metrics.accuracy),
                  TextTable::Cell(metrics.recall), TextTable::Cell(metrics.fpr),
                  TextTable::Cell(metrics.fnr)});
  }
  std::printf("%s\n", table.Render().c_str());

  const double conservative = ThresholdForFpr(scores, labels, 0.03);
  const BinaryMetrics at_conservative = MetricsAtThreshold(scores, labels, conservative);
  std::printf("conservative operating point (FPR <= 3%%): threshold %.3f -> "
              "FPR %.4f, FNR %.4f\n\n",
              conservative, at_conservative.fpr, at_conservative.fnr);

  std::printf("Shape check: the paper's fixed 0.5 sits on the knee of the curve — raising\n"
              "the threshold trades blocked-legitimate-user rate (FNR) for attack leakage\n"
              "(FPR) smoothly; AUC >> 0.9 confirms the context signal is strong.\n");
  return 0;
}
