// Regenerates Fig 4 — "Threat investigation statistics of different
// instruction categories": per device category, the fraction of respondents
// rating control vs status-acquisition instructions high-threat.
#include <cstdio>

#include "survey/survey.h"
#include "util/table.h"

using namespace sidet;

int main() {
  SurveySimulator simulator(SurveyCalibration{}, /*seed=*/40404);
  const SurveyResults results = simulator.Run(340);

  std::printf("FIG 4 — Threat investigation statistics (reproduction, n=%d)\n\n",
              results.respondents);

  BarChart control_chart("High-threat fraction, CONTROL instructions");
  BarChart status_chart("High-threat fraction, STATUS acquisition instructions");
  for (const DeviceCategory category : AllDeviceCategories()) {
    const auto index = static_cast<std::size_t>(category);
    control_chart.Add(std::string(DisplayName(category)),
                      results.control[index].fraction(ThreatLevel::kHigh));
    status_chart.Add(std::string(DisplayName(category)),
                     results.status[index].fraction(ThreatLevel::kHigh));
  }
  std::printf("%s\n", control_chart.Render().c_str());
  std::printf("%s\n", status_chart.Render().c_str());

  std::printf("Users rating control the greater threat: %s (paper headline: 85.29%%)\n",
              TextTable::Percent(results.control_more_threatening_fraction).c_str());
  std::printf("Catalogue coverage of owned devices:     %s (paper headline: 91.18%%)\n",
              TextTable::Percent(results.coverage_fraction).c_str());
  std::printf("\nPaper shape check: every category's control bar dominates its status bar;\n"
              "security cameras keep the highest status-threat (video privacy).\n");
  return 0;
}
