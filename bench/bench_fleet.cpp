// Fleet-scale serving benchmark, emitted to BENCH_fleet.json (DESIGN.md §18):
//
//   1. coverage sweep — 100k simulated homes judged once each through 4 real
//      TCP gateway shards (rendezvous-placed), every judge cold-starting its
//      lane from the shared compact model blob through the tiered store
//      (ModelCache hit → lane install, LRU eviction holding residents at the
//      cap). Proves homes-served >> homes-resident: the fleet serves 100k
//      homes with ≤10% of them materialized at any instant;
//   2. Zipf steady state — closed-loop Zipf(s=1.1) traffic per shard over a
//      key set wider than the lane cap, so the head stays resident while the
//      tail churns through eviction + cold start; reports aggregate RPS
//      across shards;
//   3. cold-start latency — the per-shard sidet_gateway_model_cold_load
//      histogram (compact-blob load + lane install + any eviction it forced),
//      gated on a stated p99 budget;
//   4. remap accounting — DiffPlacements over the full home population for
//      one shard leaving and one joining: moved fraction ≈ 1/N and ≈ 1/(N+1),
//      with zero homes moved between surviving shards (the rendezvous
//      property, asserted);
//   5. determinism — placement and the Zipf request stream are digested
//      twice from the same seeds; the digests must match exactly.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/model_store.h"
#include "fleet/directory.h"
#include "fleet/model_cache.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "server/client.h"
#include "server/gateway.h"
#include "server/loadgen.h"
#include "server/router.h"
#include "telemetry/metrics.h"

using namespace sidet;
using namespace sidet::bench;

namespace {

constexpr const char* kModelPath = "/tmp/sidet_bench_fleet_model.sidm";
constexpr int kShards = 4;
constexpr std::size_t kHomes = 100'000;
// ≤10% of the fleet resident: 4 shards x 2500 lanes = 10000 of 100000 homes.
constexpr std::size_t kLaneCap = 2'500;
constexpr double kColdStartBudgetMs = 50.0;  // stated p99 budget (gate 3)
constexpr double kZipfS = 1.1;
constexpr std::uint64_t kZipfSeed = 7;
// Wider than the lane cap so the Zipf tail keeps the eviction path hot.
constexpr std::size_t kZipfKeysPerShard = 5'000;

std::string HomeName(std::size_t index) { return "home-" + std::to_string(index); }

std::uint64_t Fnv1a64(std::uint64_t hash, const std::string& bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

// One shard: its own registry, model cache, router (fleet mode) and gateway —
// the pieces a real shard process would own.
struct ShardStack {
  MetricsRegistry metrics;
  ModelCache cache;
  GatewayRouter router;
  Gateway gateway;

  ShardStack(const InstructionRegistry& registry, const BatchPolicy& policy)
      : router(policy, &metrics), gateway(router, registry, GatewayConfig{}, &metrics) {
    router.SetModelProvider([this](const std::string&) -> Result<ContextIds> {
      Result<ContextFeatureMemory> memory = cache.Load(kModelPath);
      if (!memory.ok()) return memory.error();
      return ContextIds(SensitiveInstructionDetector(PaperTableThree()),
                        std::move(memory).value());
    });
    router.SetLaneCap(kLaneCap);
    router.EnablePerLaneTelemetry(false);  // 100k transient lanes ≠ 100k label sets
    if (!gateway.Start().ok()) std::abort();
  }
};

struct SweepResult {
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double wall_seconds = 0.0;
};

// Judges every home once over one pipelined connection (window well under the
// gateway's per-connection in-flight cap).
SweepResult SweepShard(std::uint16_t port, const std::vector<std::string>& homes,
                       SimTime time, const SensorSnapshot& snapshot) {
  SweepResult result;
  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", port);
  if (!client.ok()) std::abort();
  constexpr std::size_t kWindow = 128;
  std::size_t inflight = 0;
  std::uint64_t next_id = 1;
  const std::int64_t start_us = MonotonicMicros();
  const auto pump = [&](std::size_t down_to) {
    while (inflight > down_to) {
      Result<std::string_view> line = client.value().ReadLineView(30'000);
      if (!line.ok()) std::abort();
      Result<Json> response = Json::Parse(line.value());
      if (response.ok() && response.value().bool_or("ok", false)) {
        ++result.ok;
      } else {
        ++result.failed;
      }
      --inflight;
    }
  };
  for (const std::string& home : homes) {
    const std::string line = "{\"id\":" + std::to_string(next_id++) + "," +
                             JudgeRequestTail(home, "window.open", time, &snapshot);
    if (!client.value().Send(line).ok()) std::abort();
    ++inflight;
    pump(kWindow);
  }
  pump(0);
  result.wall_seconds = static_cast<double>(MonotonicMicros() - start_us) * 1e-6;
  return result;
}

// The exact per-sender Zipf pick stream RunLoad draws, digested — two runs of
// this from the same seed must agree bit for bit.
std::uint64_t ZipfStreamDigest(std::size_t keys, int senders, std::size_t picks) {
  const std::vector<double> cdf = ZipfCdf(keys, kZipfS);
  std::uint64_t digest = 1469598103934665603ull;
  for (int sender = 0; sender < senders; ++sender) {
    Rng rng = Rng(kZipfSeed).Fork(static_cast<std::uint64_t>(sender));
    for (std::size_t i = 0; i < picks; ++i) {
      digest = Fnv1a64(digest, std::to_string(ZipfPick(cdf, rng)));
    }
  }
  return digest;
}

std::uint64_t PlacementDigest(const FleetDirectory& directory,
                              const std::vector<std::string>& homes) {
  std::uint64_t digest = 1469598103934665603ull;
  for (const std::string& home : homes) {
    digest = Fnv1a64(digest, directory.PlaceHome(home).value());
  }
  return digest;
}

Json RemapJson(const RemapReport& report) {
  Json out = Json::Object();
  out["homes"] = report.homes;
  out["moved"] = report.moved;
  out["misplaced"] = report.misplaced;
  out["moved_fraction"] = report.moved_fraction;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fleet.json";

  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> built = BuildIdsFromScratch(registry, 99);
  if (!built.ok()) {
    std::fprintf(stderr, "build ids: %s\n", built.error().message().c_str());
    return 1;
  }
  if (!SaveCompact(built.value().memory(), kModelPath).ok()) {
    std::fprintf(stderr, "persist compact model failed\n");
    return 1;
  }

  SmartHome demo = BuildDemoHome(42);
  demo.Step(3 * kSecondsPerHour);
  const SensorSnapshot context = demo.Snapshot();
  const SimTime now = demo.now();

  Json report = Json::Object();
  report["bench"] = "fleet";
  report["homes"] = kHomes;
  report["shards"] = kShards;
  report["lane_cap"] = kLaneCap;
  report["hardware_concurrency"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());

  // --- placement: rendezvous-assign the whole population ------------------
  std::vector<std::string> homes;
  homes.reserve(kHomes);
  for (std::size_t i = 0; i < kHomes; ++i) homes.push_back(HomeName(i));
  FleetDirectory directory;
  for (int s = 0; s < kShards; ++s) {
    if (!directory.AddShard("shard-" + std::to_string(s)).ok()) std::abort();
  }
  std::vector<std::vector<std::string>> by_shard(kShards);
  for (const std::string& home : homes) {
    const std::string owner = directory.PlaceHome(home).value();
    by_shard[static_cast<std::size_t>(owner.back() - '0')].push_back(home);
  }

  // --- 1. coverage sweep: every home served once through its shard --------
  BatchPolicy policy;
  policy.max_batch = 16;
  policy.min_delay_us = policy.max_delay_us = 0;
  std::vector<std::unique_ptr<ShardStack>> shards;
  for (int s = 0; s < kShards; ++s) {
    shards.push_back(std::make_unique<ShardStack>(registry, policy));
  }

  std::vector<SweepResult> sweeps(kShards);
  {
    std::vector<std::thread> workers;
    for (int s = 0; s < kShards; ++s) {
      workers.emplace_back([&, s] {
        sweeps[static_cast<std::size_t>(s)] =
            SweepShard(shards[static_cast<std::size_t>(s)]->gateway.port(),
                       by_shard[static_cast<std::size_t>(s)], now, context);
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  std::uint64_t homes_served = 0;
  std::uint64_t sweep_failed = 0;
  double sweep_wall = 0.0;
  Json sweep_per_shard = Json::Array();
  for (int s = 0; s < kShards; ++s) {
    const SweepResult& sweep = sweeps[static_cast<std::size_t>(s)];
    homes_served += sweep.ok;
    sweep_failed += sweep.failed;
    sweep_wall = std::max(sweep_wall, sweep.wall_seconds);
    Json entry = Json::Object();
    entry["homes"] = by_shard[static_cast<std::size_t>(s)].size();
    entry["ok"] = sweep.ok;
    entry["failed"] = sweep.failed;
    entry["wall_seconds"] = sweep.wall_seconds;
    sweep_per_shard.as_array().push_back(std::move(entry));
  }
  const double sweep_rps =
      sweep_wall > 0 ? static_cast<double>(homes_served) / sweep_wall : 0.0;
  Json coverage = Json::Object();
  coverage["homes_served"] = homes_served;
  coverage["failed"] = sweep_failed;
  coverage["wall_seconds"] = sweep_wall;
  coverage["sweep_rps"] = sweep_rps;
  coverage["per_shard"] = std::move(sweep_per_shard);
  report["coverage"] = std::move(coverage);
  std::printf("coverage: %llu/%zu homes served through %d shards in %.1fs (%.0f rps)\n",
              static_cast<unsigned long long>(homes_served), kHomes, kShards, sweep_wall,
              sweep_rps);

  // --- 2. Zipf steady state: skewed traffic per shard, in parallel --------
  std::vector<LoadReport> zipf_runs(kShards);
  {
    std::vector<std::thread> workers;
    for (int s = 0; s < kShards; ++s) {
      workers.emplace_back([&, s] {
        const auto& mine = by_shard[static_cast<std::size_t>(s)];
        LoadOptions zipf;
        zipf.connections = 2;
        zipf.pipeline = 16;
        zipf.duration_ms = 1500;
        zipf.read_timeout_ms = 15'000;
        zipf.zipf_s = kZipfS;
        zipf.zipf_seed = kZipfSeed;
        const std::size_t keys = std::min(kZipfKeysPerShard, mine.size());
        zipf.request_tails.reserve(keys);
        for (std::size_t k = 0; k < keys; ++k) {
          zipf.request_tails.push_back(
              JudgeRequestTail(mine[k], "window.open", now, &context));
        }
        zipf_runs[static_cast<std::size_t>(s)] = RunLoad(
            "127.0.0.1", shards[static_cast<std::size_t>(s)]->gateway.port(), zipf);
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  double aggregate_rps = 0.0;
  std::uint64_t zipf_errors = 0;
  Json zipf_per_shard = Json::Array();
  for (int s = 0; s < kShards; ++s) {
    const LoadReport& run = zipf_runs[static_cast<std::size_t>(s)];
    aggregate_rps += run.throughput_rps;
    zipf_errors += run.errors;
    zipf_per_shard.as_array().push_back(run.ToJson());
  }
  Json zipf = Json::Object();
  zipf["s"] = kZipfS;
  zipf["seed"] = kZipfSeed;
  zipf["keys_per_shard"] = kZipfKeysPerShard;
  zipf["aggregate_rps"] = aggregate_rps;
  zipf["errors"] = zipf_errors;
  zipf["per_shard"] = std::move(zipf_per_shard);
  report["zipf"] = std::move(zipf);
  std::printf("zipf steady state: %.0f rps aggregate over %d shards\n", aggregate_rps,
              kShards);

  // --- residency + cold-start accounting (after both phases) --------------
  std::uint64_t lanes_resident = 0;
  std::uint64_t lane_evictions = 0;
  std::uint64_t cold_loads = 0;
  std::uint64_t cache_misses = 0;
  double cold_p99_ms = 0.0;
  double cold_p50_ms = 0.0;
  Json residency_per_shard = Json::Array();
  for (int s = 0; s < kShards; ++s) {
    ShardStack& shard = *shards[static_cast<std::size_t>(s)];
    lanes_resident += shard.router.resident_lanes();
    lane_evictions += shard.router.lane_evictions();
    cold_loads += shard.router.model_cold_loads();
    const ModelCache::Stats cache = shard.cache.stats();
    cache_misses += cache.misses;
    Histogram* cold = shard.metrics.GetHistogram("sidet_gateway_model_cold_load_seconds");
    const double p99_ms = cold->Quantile(0.99) * 1e3;
    const double p50_ms = cold->Quantile(0.50) * 1e3;
    cold_p99_ms = std::max(cold_p99_ms, p99_ms);
    cold_p50_ms = std::max(cold_p50_ms, p50_ms);
    Json entry = Json::Object();
    entry["lanes_resident"] = shard.router.resident_lanes();
    entry["lane_evictions"] = shard.router.lane_evictions();
    entry["model_cold_loads"] = shard.router.model_cold_loads();
    entry["cache_hits"] = cache.hits;
    entry["cache_misses"] = cache.misses;
    entry["cold_p50_ms"] = p50_ms;
    entry["cold_p99_ms"] = p99_ms;
    residency_per_shard.as_array().push_back(std::move(entry));
  }
  const double resident_fraction =
      static_cast<double>(lanes_resident) / static_cast<double>(kHomes);
  Json residency = Json::Object();
  residency["lanes_resident"] = lanes_resident;
  residency["resident_fraction"] = resident_fraction;
  residency["lane_evictions"] = lane_evictions;
  residency["model_cold_loads"] = cold_loads;
  residency["model_cache_misses"] = cache_misses;  // disk loads fleet-wide
  residency["per_shard"] = std::move(residency_per_shard);
  report["residency"] = std::move(residency);
  Json cold_start = Json::Object();
  cold_start["p50_ms"] = cold_p50_ms;
  cold_start["p99_ms"] = cold_p99_ms;
  cold_start["budget_ms"] = kColdStartBudgetMs;
  report["cold_start"] = std::move(cold_start);
  std::printf(
      "residency: %llu lanes resident (%.1f%% of homes), %llu evictions, %llu cold "
      "loads (%llu disk), cold p99 %.2f ms (budget %.0f ms)\n",
      static_cast<unsigned long long>(lanes_resident), resident_fraction * 100.0,
      static_cast<unsigned long long>(lane_evictions),
      static_cast<unsigned long long>(cold_loads),
      static_cast<unsigned long long>(cache_misses), cold_p99_ms, kColdStartBudgetMs);

  for (auto& shard : shards) shard->gateway.Shutdown();

  // --- 4. remap accounting: one shard leaves, one joins -------------------
  FleetDirectory without = directory;
  if (!without.RemoveShard("shard-2").ok()) std::abort();
  const RemapReport removal = DiffPlacements(directory, without, homes);
  FleetDirectory with = directory;
  if (!with.AddShard("shard-" + std::to_string(kShards)).ok()) std::abort();
  const RemapReport join = DiffPlacements(directory, with, homes);
  Json remap = Json::Object();
  remap["remove"] = RemapJson(removal);
  remap["add"] = RemapJson(join);
  report["remap"] = std::move(remap);
  std::printf("remap: remove moves %.3f (misplaced %zu), add moves %.3f (misplaced %zu)\n",
              removal.moved_fraction, removal.misplaced, join.moved_fraction,
              join.misplaced);

  // --- 5. determinism: placement and Zipf stream digests, twice -----------
  const std::uint64_t placement_a = PlacementDigest(directory, homes);
  FleetDirectory rebuilt;  // reversed insertion order must not matter
  for (int s = kShards - 1; s >= 0; --s) {
    if (!rebuilt.AddShard("shard-" + std::to_string(s)).ok()) std::abort();
  }
  const std::uint64_t placement_b = PlacementDigest(rebuilt, homes);
  const std::uint64_t zipf_a = ZipfStreamDigest(kZipfKeysPerShard, 2, 50'000);
  const std::uint64_t zipf_b = ZipfStreamDigest(kZipfKeysPerShard, 2, 50'000);
  const bool deterministic = placement_a == placement_b && zipf_a == zipf_b;
  Json determinism = Json::Object();
  determinism["placement_digest"] = std::to_string(placement_a);
  determinism["placement_digest_repeat"] = std::to_string(placement_b);
  determinism["zipf_digest"] = std::to_string(zipf_a);
  determinism["zipf_digest_repeat"] = std::to_string(zipf_b);
  determinism["deterministic"] = deterministic;
  report["determinism"] = std::move(determinism);

  StampCalibration(report);
  StampTelemetry(report);
  std::ofstream out(out_path);
  out << report.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());

  // --- acceptance gates ---------------------------------------------------
  if (homes_served < 100'000 || sweep_failed != 0) {
    std::fprintf(stderr, "FAIL: served %llu/%zu homes (%llu failed)\n",
                 static_cast<unsigned long long>(homes_served), kHomes,
                 static_cast<unsigned long long>(sweep_failed));
    return 1;
  }
  if (resident_fraction > 0.10) {
    std::fprintf(stderr, "FAIL: %.1f%% of homes resident (cap 10%%)\n",
                 resident_fraction * 100.0);
    return 1;
  }
  if (cold_p99_ms > kColdStartBudgetMs) {
    std::fprintf(stderr, "FAIL: cold-start p99 %.2f ms over the %.0f ms budget\n",
                 cold_p99_ms, kColdStartBudgetMs);
    return 1;
  }
  if (removal.misplaced != 0 || join.misplaced != 0) {
    std::fprintf(stderr, "FAIL: rendezvous misplaced homes (remove %zu, add %zu)\n",
                 removal.misplaced, join.misplaced);
    return 1;
  }
  if (removal.moved_fraction < 0.15 || removal.moved_fraction > 0.35) {
    std::fprintf(stderr, "FAIL: removal moved %.3f of homes, expected ~1/%d\n",
                 removal.moved_fraction, kShards);
    return 1;
  }
  if (join.moved_fraction < 0.12 || join.moved_fraction > 0.28) {
    std::fprintf(stderr, "FAIL: join moved %.3f of homes, expected ~1/%d\n",
                 join.moved_fraction, kShards + 1);
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: placement or Zipf stream digests diverged\n");
    return 1;
  }
  if (zipf_errors != 0) {
    std::fprintf(stderr, "FAIL: %llu transport errors under Zipf load\n",
                 static_cast<unsigned long long>(zipf_errors));
    return 1;
  }
  return 0;
}
