// Adversarial robustness bench, emitted to BENCH_adversarial.json.
//
// Mounts every campaign family in src/attacks/campaigns.h against the live
// collection path twice — once against the baseline IDS and once with the
// cross-sensor consistency tier installed — and scores the per-family
// detection matrix, the benign false-positive cost of the tier (from
// attack-free control runs), and interception under a combined
// chaos-plus-adversarial schedule (packet loss and latency jitter *while*
// campaigns run). Every run is driven purely by simulated time and seeded
// RNGs: the same seed and days produce a byte-identical report.
//
// The acceptance gate this bench feeds: on spoofed-context families the
// tiered IDS must block strictly more than the baseline, while the benign
// false-positive rate rises by less than two percentage points.
//
// Usage: bench_adversarial [out.json] [--seed N] [--days N]
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attacks/campaign_metrics.h"
#include "attacks/campaigns.h"
#include "core/ids.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "protocol/fault_schedule.h"
#include "protocol/miio_gateway.h"
#include "protocol/rest_bridge.h"
#include "util/args.h"

using namespace sidet;

namespace {

constexpr const char* kGatewayAddress = "udp://gw";
constexpr const char* kBridgeAddress = "http://ha";

// Benign sensitive probes on a fixed 30-minute cadence; their block rate in
// attack-free control runs is the false-positive cost of the defence.
const std::vector<std::string> kProbes = {"window.open", "curtain.open", "light.on"};

constexpr int kMinutesPerDay = 24 * 60;
constexpr int kVoiceMinute = 20 * 60 + 29;         // daily genuine voice command
constexpr int kBenignCaptureMinute = 13 * 60 + 1;  // day-0 benign recording

// When a family prepares, strikes and cleans up, in minutes of the day.
// Strikes land in the small hours of every attack day; the compromised pin
// installs two probe cycles early so the frozen-feed check has history; the
// stuck exploit wedges the bridge the *previous evening*, right after the
// voice window it wants to preserve.
struct FamilyPlan {
  int prepare_minute = -1;        // -1: nothing to install
  bool evening_prepare = false;   // prepare fires the day before the strikes
  std::vector<int> strike_minutes;
  int cleanup_minute = -1;
};

FamilyPlan PlanFor(AttackFamily family) {
  FamilyPlan plan;
  plan.strike_minutes = {1 * 60 + 35, 3 * 60 + 5, 4 * 60 + 35};
  plan.cleanup_minute = 5 * 60;
  switch (family) {
    case AttackFamily::kStuckSensorExploit:
      plan.prepare_minute = 20 * 60 + 31;
      plan.evening_prepare = true;
      break;
    case AttackFamily::kCompromisedSensorPin:
      plan.prepare_minute = 31;
      break;
    case AttackFamily::kBoundaryMimicry:
      plan.prepare_minute = -1;
      plan.cleanup_minute = -1;
      plan.strike_minutes = {5 * 60 + 45, 6 * 60 + 15, 21 * 60 + 5};
      break;
    default:  // transport forgeries install just before the first strike
      plan.prepare_minute = 1 * 60 + 30;
      break;
  }
  return plan;
}

enum class RunMode {
  kBenignOnly,     // control run: no campaigns at all
  kSingleFamily,   // one family strikes every attack day
  kAllFamilies,    // families rotate day by day (chaos composition run)
};

struct RunResult {
  CampaignScoreboard scoreboard;
  IdsStats ids_stats;
  Json consistency = Json(nullptr);  // tier stats when the tier is installed
  std::map<std::string, std::size_t> policy_blocks_by_tier;
  std::size_t compromised_replays = 0;
  std::size_t stuck_replays = 0;
  std::size_t collector_stale_serves = 0;
  std::size_t collector_stale_beyond_horizon = 0;
};

RunResult RunCampaigns(const InstructionRegistry& registry,
                       const ContextFeatureMemory& trained_memory, std::uint64_t seed,
                       int days, RunMode mode, AttackFamily single_family, bool tiered,
                       bool chaos) {
  RunResult result;

  SmartHome home = BuildDemoHome(seed & 0xffff);
  SimClock net_clock(home.now());
  InMemoryTransport transport(seed ^ 0xc0ffee);
  MiioGateway gateway(0x99, home);
  gateway.BindTo(transport, kGatewayAddress);
  RestBridge bridge(home, "adv-token");
  bridge.BindTo(transport, kBridgeAddress);

  auto miio = std::make_unique<MiioClient>(transport, kGatewayAddress);
  if (!miio->HandshakeForToken().ok()) {
    std::fprintf(stderr, "miio handshake failed\n");
    return result;
  }
  auto rest = std::make_unique<RestClient>(transport, kBridgeAddress, "adv-token");

  FaultSchedule base_schedule;
  if (chaos) {
    // The lossy-link ambient from the chaos bench: campaigns must survive a
    // degraded network, and so must the defence.
    FaultSpec spec;
    spec.drop_probability = 0.10;
    spec.duplicate_probability = 0.03;
    spec.latency_seconds = 1;
    spec.latency_jitter_seconds = 2;
    base_schedule.SetDefault(spec);
  }
  transport.SetFaultSchedule(base_schedule);
  transport.AttachClock(&net_clock);

  CollectorConfig config;
  config.max_retries = 4;
  config.backoff = {.initial_seconds = 1, .multiplier = 2.0, .max_seconds = 30, .jitter = 0.25};
  config.breaker = {.failure_threshold = 4, .open_seconds = 10 * kSecondsPerMinute};
  config.deadline_budget_seconds = 60;
  auto collector = std::make_unique<SensorDataCollector>(std::move(miio), std::move(rest),
                                                         config);
  collector->AttachClock(&net_clock);
  SensorDataCollector* collector_ptr = collector.get();

  Result<ContextFeatureMemory> memory =
      ContextFeatureMemory::FromJson(trained_memory.ToJson());
  if (!memory.ok()) {
    std::fprintf(stderr, "memory clone failed: %s\n", memory.error().message().c_str());
    return result;
  }
  ContextIds ids(SensitiveInstructionDetector(PaperTableThree()), std::move(memory).value(),
                 std::move(collector));
  if (tiered) {
    ids.SetConsistencyTier(std::make_unique<CrossSensorConsistency>());
    ids.consistency_tier()->SetActuatorProvider(HomeActuatorProvider(home));
  }
  AuditLog audit;
  ids.SetAuditLog(&audit);

  CampaignContext context;
  context.home = &home;
  context.transport = &transport;
  context.registry = &registry;
  context.gateway = &gateway;
  context.gateway_address = kGatewayAddress;
  context.bridge_address = kBridgeAddress;
  context.base_schedule = base_schedule;
  CampaignRunner campaigns(std::move(context));

  const int last_strike_day = days - 1;
  const auto family_for_day = [&](int day) -> AttackFamily {
    if (mode == RunMode::kSingleFamily) return single_family;
    return AllAttackFamilies()[static_cast<std::size_t>(day - 1) %
                               AllAttackFamilies().size()];
  };

  const auto judge = [&](const Instruction& instruction) -> bool {  // true = blocked
    Result<Judgement> verdict = ids.JudgeLive(instruction, home.now());
    return verdict.ok() ? !verdict.value().allowed : true;  // errors fail closed
  };

  bool tampering = false;
  const int minutes = days * kMinutesPerDay;
  for (int minute = 0; minute < minutes; ++minute) {
    home.Step(kSecondsPerMinute);
    net_clock.AdvanceTo(home.now());
    const int day = minute / kMinutesPerDay;
    const int mod = minute % kMinutesPerDay;

    if (mod == kVoiceMinute) home.TriggerVoiceCommand();
    if (day == 0 && mod == kBenignCaptureMinute) campaigns.RecordBenignContext();

    const bool attacking = mode != RunMode::kBenignOnly;
    if (attacking && day + 1 >= 1 && day + 1 <= last_strike_day) {
      // Evening prepares arm the *next* day's family.
      const AttackFamily next = family_for_day(day + 1);
      const FamilyPlan plan = PlanFor(next);
      if (plan.evening_prepare && mod == plan.prepare_minute) {
        if (campaigns.Prepare(next, home.now()).ok()) tampering = true;
      }
    }
    if (attacking && day >= 1 && day <= last_strike_day) {
      const AttackFamily family = family_for_day(day);
      const FamilyPlan plan = PlanFor(family);
      if (!plan.evening_prepare && plan.prepare_minute >= 0 && mod == plan.prepare_minute) {
        if (campaigns.Prepare(family, home.now()).ok()) tampering = true;
      }
      for (int strike_minute : plan.strike_minutes) {
        if (mod != strike_minute) continue;
        for (const Instruction* instruction : campaigns.Strike(family)) {
          result.scoreboard.RecordAttack(family, judge(*instruction));
        }
      }
      if (plan.cleanup_minute >= 0 && mod == plan.cleanup_minute) {
        campaigns.Cleanup();
        tampering = false;
      }
    }

    if (mod % 30 == 0) {
      // Probes run around the clock (they feed the tier's history), but only
      // waking-hours probes count as benign: the model blocks sensitive
      // actions at night by design, and calling that a false positive would
      // drown the tier's contribution in deliberate context blocks.
      const int hour = mod / 60;
      const bool waking = hour >= 8 && hour < 22;
      for (const std::string& name : kProbes) {
        const Instruction* probe = registry.FindByName(name);
        const bool blocked = judge(*probe);
        // Probes under active tampering judge forged context: blocking them
        // is correct, so they belong to neither the benign nor attack tally.
        if (!tampering && waking) result.scoreboard.RecordBenign(blocked);
      }
    }
  }

  result.ids_stats = ids.stats();
  if (tiered) result.consistency = ids.consistency_tier()->StatsToJson();
  for (const AuditRecord& record : audit.records()) {
    if (!record.tier.empty() && !record.allowed) ++result.policy_blocks_by_tier[record.tier];
  }
  result.compromised_replays = transport.compromised_replays();
  result.stuck_replays = transport.stuck_replays();
  result.collector_stale_serves = collector_ptr->stats().stale_serves;
  result.collector_stale_beyond_horizon = collector_ptr->stats().stale_beyond_horizon;
  return result;
}

Json SideJson(const RunResult& run, AttackFamily family) {
  Json out = Json::Object();
  out["attempts"] = static_cast<std::int64_t>(run.scoreboard.attack_attempts(family));
  out["blocked"] = static_cast<std::int64_t>(run.scoreboard.attack_blocked(family));
  out["detection_rate"] = run.scoreboard.DetectionRate(family);
  const ConfusionMatrix confusion = run.scoreboard.FamilyConfusion(family);
  Json matrix = Json::Object();
  matrix["tp"] = static_cast<std::int64_t>(confusion.tp);
  matrix["tn"] = static_cast<std::int64_t>(confusion.tn);
  matrix["fp"] = static_cast<std::int64_t>(confusion.fp);
  matrix["fn"] = static_cast<std::int64_t>(confusion.fn);
  out["confusion"] = std::move(matrix);
  return out;
}

Json PolicyBlocksJson(const RunResult& run) {
  Json out = Json::Object();
  for (const auto& [tier, count] : run.policy_blocks_by_tier) {
    out[tier] = static_cast<std::int64_t>(count);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_adversarial.json";
  if (argc > 1 && argv[1][0] != '-') {
    out_path = argv[1];
    --argc;
    ++argv;
  }
  ArgParser args;
  args.AddFlag("seed", "4242", "workload seed (same seed => identical report)");
  args.AddFlag("days", "4", "simulated days per run (attack days start at day 1)");
  const Status parsed = args.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.error().message().c_str(),
                 args.Help("bench_adversarial").c_str());
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed"));
  const int days = static_cast<int>(args.GetInt("days"));

  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> trained = BuildIdsFromScratch(registry, seed);
  if (!trained.ok()) {
    std::fprintf(stderr, "ids build failed: %s\n", trained.error().message().c_str());
    return 1;
  }
  const ContextFeatureMemory& memory = trained.value().memory();

  Json out = Json::Object();
  out["seed"] = seed;
  out["days"] = days;

  // Attack-free control runs: the tier's benign cost.
  std::fprintf(stderr, "running benign control (baseline, tiered)...\n");
  const RunResult benign_base =
      RunCampaigns(registry, memory, seed, days, RunMode::kBenignOnly,
                   AttackFamily::kMiioHazardSpoof, /*tiered=*/false, /*chaos=*/false);
  const RunResult benign_tier =
      RunCampaigns(registry, memory, seed, days, RunMode::kBenignOnly,
                   AttackFamily::kMiioHazardSpoof, /*tiered=*/true, /*chaos=*/false);
  const double base_fpr = benign_base.scoreboard.BenignFalsePositiveRate();
  const double tier_fpr = benign_tier.scoreboard.BenignFalsePositiveRate();
  {
    Json benign = Json::Object();
    benign["probes"] = static_cast<std::int64_t>(benign_base.scoreboard.benign_attempts());
    benign["baseline_fpr"] = base_fpr;
    benign["tiered_fpr"] = tier_fpr;
    benign["fpr_delta_points"] = (tier_fpr - base_fpr) * 100.0;
    out["benign"] = std::move(benign);
  }

  // Per-family detection matrix, baseline vs tiered.
  struct ClassTally {
    std::size_t base_attempts = 0, base_blocked = 0;
    std::size_t tier_attempts = 0, tier_blocked = 0;
  };
  std::map<std::string, ClassTally> classes;
  std::size_t spoof_base_attempts = 0, spoof_base_blocked = 0;
  std::size_t spoof_tier_attempts = 0, spoof_tier_blocked = 0;

  Json families = Json::Array();
  for (AttackFamily family : AllAttackFamilies()) {
    std::fprintf(stderr, "running family %s (baseline, tiered)...\n",
                 std::string(ToString(family)).c_str());
    const RunResult base = RunCampaigns(registry, memory, seed, days, RunMode::kSingleFamily,
                                        family, /*tiered=*/false, /*chaos=*/false);
    const RunResult tier = RunCampaigns(registry, memory, seed, days, RunMode::kSingleFamily,
                                        family, /*tiered=*/true, /*chaos=*/false);

    Json entry = Json::Object();
    entry["name"] = std::string(ToString(family));
    entry["class"] = std::string(ToString(ClassOf(family)));
    entry["baseline"] = SideJson(base, family);
    entry["tiered"] = SideJson(tier, family);
    entry["detection_gain"] =
        tier.scoreboard.DetectionRate(family) - base.scoreboard.DetectionRate(family);
    entry["tiered_consistency"] = tier.consistency;
    entry["tiered_policy_blocks"] = PolicyBlocksJson(tier);
    entry["compromised_replays"] = static_cast<std::int64_t>(tier.compromised_replays);
    entry["stuck_replays"] = static_cast<std::int64_t>(tier.stuck_replays);
    families.as_array().push_back(std::move(entry));

    ClassTally& tally = classes[std::string(ToString(ClassOf(family)))];
    tally.base_attempts += base.scoreboard.attack_attempts(family);
    tally.base_blocked += base.scoreboard.attack_blocked(family);
    tally.tier_attempts += tier.scoreboard.attack_attempts(family);
    tally.tier_blocked += tier.scoreboard.attack_blocked(family);
    if (ClassOf(family) == AttackClass::kSpoofing) {
      spoof_base_attempts += base.scoreboard.attack_attempts(family);
      spoof_base_blocked += base.scoreboard.attack_blocked(family);
      spoof_tier_attempts += tier.scoreboard.attack_attempts(family);
      spoof_tier_blocked += tier.scoreboard.attack_blocked(family);
    }
  }
  out["families"] = std::move(families);

  {
    Json by_class = Json::Array();
    for (const auto& [name, tally] : classes) {
      Json entry = Json::Object();
      entry["class"] = name;
      entry["baseline_rate"] =
          tally.base_attempts == 0 ? 0.0
                                   : static_cast<double>(tally.base_blocked) /
                                         static_cast<double>(tally.base_attempts);
      entry["tiered_rate"] = tally.tier_attempts == 0
                                 ? 0.0
                                 : static_cast<double>(tally.tier_blocked) /
                                       static_cast<double>(tally.tier_attempts);
      by_class.as_array().push_back(std::move(entry));
    }
    out["classes"] = std::move(by_class);
  }

  // Composition: every family rotating under an already-lossy network.
  std::fprintf(stderr, "running chaos+adversarial composition (baseline, tiered)...\n");
  const RunResult chaos_base =
      RunCampaigns(registry, memory, seed, days, RunMode::kAllFamilies,
                   AttackFamily::kMiioHazardSpoof, /*tiered=*/false, /*chaos=*/true);
  const RunResult chaos_tier =
      RunCampaigns(registry, memory, seed, days, RunMode::kAllFamilies,
                   AttackFamily::kMiioHazardSpoof, /*tiered=*/true, /*chaos=*/true);
  {
    Json chaos = Json::Object();
    chaos["baseline"] = chaos_base.scoreboard.ToJson();
    chaos["tiered"] = chaos_tier.scoreboard.ToJson();
    chaos["tiered_consistency"] = chaos_tier.consistency;
    chaos["tiered_policy_blocks"] = PolicyBlocksJson(chaos_tier);
    Json degraded = Json::Object();
    degraded["stale_serves"] = static_cast<std::int64_t>(chaos_tier.collector_stale_serves);
    degraded["stale_beyond_horizon"] =
        static_cast<std::int64_t>(chaos_tier.collector_stale_beyond_horizon);
    degraded["judged_degraded"] = static_cast<std::int64_t>(chaos_tier.ids_stats.judged_degraded);
    degraded["blocked_on_outage"] =
        static_cast<std::int64_t>(chaos_tier.ids_stats.blocked_on_outage);
    chaos["tiered_collector"] = std::move(degraded);
    out["chaos_adversarial"] = std::move(chaos);
  }

  const double spoof_base_rate =
      spoof_base_attempts == 0 ? 0.0
                               : static_cast<double>(spoof_base_blocked) /
                                     static_cast<double>(spoof_base_attempts);
  const double spoof_tier_rate =
      spoof_tier_attempts == 0 ? 0.0
                               : static_cast<double>(spoof_tier_blocked) /
                                     static_cast<double>(spoof_tier_attempts);
  {
    Json acceptance = Json::Object();
    acceptance["spoofing_baseline_blocked_rate"] = spoof_base_rate;
    acceptance["spoofing_tiered_blocked_rate"] = spoof_tier_rate;
    acceptance["spoofing_gap_ok"] = spoof_tier_rate > spoof_base_rate;
    acceptance["benign_fpr_delta_points"] = (tier_fpr - base_fpr) * 100.0;
    acceptance["fpr_delta_ok"] = (tier_fpr - base_fpr) * 100.0 < 2.0;
    out["acceptance"] = std::move(acceptance);
  }

  std::ofstream file(out_path);
  file << out.Dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
