// The §III.A attack, end to end: a malicious SmartApp injects the rule
// "if a fire occurs, open the back door" and forges the smoke sensor's value.
// Without the IDS the back door opens for the burglar; with the IDS installed
// as the trigger-action engine's guard, the spoof-triggered command is
// intercepted — while the same command during a *real* fire still goes
// through (the paper's "actively intercept high-threat instructions" claim).
#include <cstdio>

#include "automation/engine.h"
#include "core/ids.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

using namespace sidet;

namespace {

bool BackdoorOpen(SmartHome& home) {
  for (const auto& device : home.devices()) {
    if (device->IsOn("backdoor_open")) return true;
  }
  return false;
}

void ResetBackdoor(SmartHome& home) {
  for (const auto& device : home.devices()) {
    if (device->category() == DeviceCategory::kWindowAndLock) {
      device->SetState("backdoor_open", 0.0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> ids = BuildIdsFromScratch(registry, 99);
  if (!ids.ok()) {
    std::fprintf(stderr, "ids: %s\n", ids.error().message().c_str());
    return 1;
  }

  // Full pipeline observability: metrics into the process registry, one span
  // per pipeline stage into the tracer — exported at exit as a
  // chrome://tracing-loadable file plus a unified JSON dump.
  MetricsRegistry& metrics = MetricsRegistry::Global();
  SpanTracer tracer;
  ids.value().AttachTelemetry(&metrics, &tracer);

  SmartHome home = BuildDemoHome(15);
  RuleEngine engine(registry, home);
  engine.AttachTelemetry(&metrics, &tracer);
  // The attacker's rule, sitting among legitimate automations. It mimics the
  // sanctioned escape-route recipe, whose trigger is a *confirmed* fire
  // (smoke AND combustible gas).
  Result<Rule> malicious = MakeRule(666, "if a fire occurs, open the back door",
                                    "smoke and gas_leak", "backdoor.open", registry);
  engine.AddRule(std::move(malicious).value());
  home.Step(kSecondsPerHour * 9);  // mid-morning

  std::printf("=== Phase 1: no IDS, forged hazard sensors ===\n");
  home.FindSensor("kitchen_smoke")->Spoof(SensorValue::Binary(true));
  home.FindSensor("kitchen_gas")->Spoof(SensorValue::Binary(true));
  home.Step(kSecondsPerMinute);
  (void)engine.Poll();
  std::printf("back door open: %s   <- the burglary of §III.A\n",
              BackdoorOpen(home) ? "YES" : "no");
  home.FindSensor("kitchen_smoke")->ClearSpoof();
  home.FindSensor("kitchen_gas")->ClearSpoof();
  ResetBackdoor(home);

  std::printf("\n=== Phase 2: IDS guard installed, forged smoke sensor ===\n");
  engine.SetGuard(ids.value().AsGuard());
  home.Step(10 * kSecondsPerMinute);
  (void)engine.Poll();  // observe the hazard-free state so the edge re-arms
  home.FindSensor("kitchen_smoke")->Spoof(SensorValue::Binary(true));
  home.FindSensor("kitchen_gas")->Spoof(SensorValue::Binary(true));
  home.Step(kSecondsPerMinute);
  for (const FiredAction& action : engine.Poll()) {
    std::printf("rule fired: %s -> %s\n", action.action.c_str(),
                action.blocked ? "BLOCKED by IDS" : "executed");
  }
  std::printf("back door open: %s\n", BackdoorOpen(home) ? "YES" : "no");
  home.FindSensor("kitchen_smoke")->ClearSpoof();
  home.FindSensor("kitchen_gas")->ClearSpoof();

  std::printf("\n=== Phase 3: IDS guard installed, REAL fire ===\n");
  home.Step(10 * kSecondsPerMinute);
  (void)engine.Poll();  // re-arm the edge after the spoof cleared
  home.StartFire();
  home.StartGasLeak();  // the fire ruptures the gas line — a confirmed hazard
  home.Step(8 * kSecondsPerMinute);  // the physics develops: heat + foul air
  for (const FiredAction& action : engine.Poll()) {
    std::printf("rule fired: %s -> %s\n", action.action.c_str(),
                action.blocked ? "BLOCKED by IDS" : "executed (escape route open)");
  }
  std::printf("back door open: %s   <- safety preserved during a genuine fire\n",
              BackdoorOpen(home) ? "YES" : "no");

  const IdsStats& stats = ids.value().stats();
  std::printf("\nIDS stats: judged=%zu blocked=%zu allowed=%zu\n", stats.judged,
              stats.blocked, stats.allowed);

  // --- Unified telemetry dump + Chrome trace ---------------------------------------
  Json telemetry = MetricsSnapshotJson(metrics);
  telemetry["ids_stats"] = stats.ToJson();
  std::printf("\ntelemetry at exit:\n%s\n", telemetry.Pretty().c_str());

  // Generated artifact: default under build/ so a source-tree run leaves the
  // checkout clean; pass a path to write elsewhere. Without build/ (e.g. run
  // from inside the build tree) fall back to the working directory — both
  // spellings are gitignored.
  std::string trace_path = argc > 1 ? argv[1] : "build/smart_home_attack_trace.json";
  Status written = WriteChromeTrace(tracer, trace_path);
  if (!written.ok() && argc <= 1) {
    trace_path = "smart_home_attack_trace.json";
    written = WriteChromeTrace(tracer, trace_path);
  }
  if (!written.ok()) {
    std::fprintf(stderr, "trace: %s\n", written.error().message().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu spans; load in chrome://tracing or Perfetto)\n",
              trace_path.c_str(), tracer.size());
  return 0;
}
