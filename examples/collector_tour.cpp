// Tour of the two vendor protocol stacks (§IV.B), exactly as the paper's
// sensor data collector drives them:
//
//   Xiaomi path:   firmware dump -> instruction table at 0x102F80 ->
//                  miio hello handshake (developer mode discloses the token)
//                  -> MD5/AES-CBC encrypted get_prop queries;
//   SmartThings:   Home-Assistant-style REST bridge with a long-lived bearer
//                  token -> /api/states;
//   then both merge into one normalized JSON snapshot.
#include <cstdio>

#include "core/collector.h"
#include "firmware/firmware_image.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "protocol/miio_gateway.h"
#include "protocol/rest_bridge.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"

using namespace sidet;

int main() {
  // --- Firmware reverse engineering --------------------------------------------
  const Bytes image = BuildFirmwareImage(BuildStandardInstructionSet());
  std::printf("gateway firmware image: %zu bytes\n", image.size());
  Result<std::vector<FirmwareRecord>> records = ExtractInstructionTable(image);
  if (!records.ok()) {
    std::fprintf(stderr, "extract: %s\n", records.error().message().c_str());
    return 1;
  }
  std::printf("instruction table @0x%X: %zu records; e.g. 0x%08X -> %s (%s)\n\n",
              kFirmwareTableOffset, records.value().size(),
              records.value()[0].function_address,
              records.value()[0].instruction.name.c_str(),
              records.value()[0].instruction.handler.c_str());

  // --- A live home behind both stacks -------------------------------------------
  SmartHome home = BuildDemoHome(3);
  home.Step(8 * kSecondsPerHour);  // 08:01, residents up

  InMemoryTransport network(1);
  MiioGateway gateway(0x00A1B2C3, home);
  gateway.BindTo(network, "udp://192.168.1.54:54321");
  RestBridge home_assistant(home, "eyJhbGciOi-long-lived-access-token");
  home_assistant.BindTo(network, "http://homeassistant.local:8123");

  // --- Xiaomi path ----------------------------------------------------------------
  MiioClient miio(network, "udp://192.168.1.54:54321");
  if (!miio.HandshakeForToken().ok()) return 1;
  std::printf("miio handshake: device_id=0x%08X, token disclosed (developer mode)\n",
              miio.device_id());

  Result<Json> info = miio.Call("miIO.info", Json::Array());
  if (info.ok()) std::printf("miIO.info -> %s\n", info.value().Dump().c_str());

  Result<SensorSnapshot> xiaomi = miio.Poll({"kitchen_smoke", "living_temperature"});
  if (xiaomi.ok()) {
    std::printf("encrypted get_prop -> %s\n\n", xiaomi.value().ToJson().Dump().c_str());
  }

  // --- SmartThings path -------------------------------------------------------------
  RestClient rest(network, "http://homeassistant.local:8123",
                  "eyJhbGciOi-long-lived-access-token");
  Result<SensorSnapshot> entity = rest.PollEntity("binary_sensor.home_occupancy");
  if (entity.ok()) {
    std::printf("GET /api/states/binary_sensor.home_occupancy -> %s\n\n",
                entity.value().ToJson().Dump().c_str());
  }

  // --- Merged collection -------------------------------------------------------------
  auto miio_client = std::make_unique<MiioClient>(network, "udp://192.168.1.54:54321");
  (void)miio_client->HandshakeForToken();
  auto rest_client = std::make_unique<RestClient>(network, "http://homeassistant.local:8123",
                                                  "eyJhbGciOi-long-lived-access-token");
  SensorDataCollector collector(std::move(miio_client), std::move(rest_client));
  collector.AttachTelemetry(&MetricsRegistry::Global());
  Result<SensorSnapshot> merged = collector.Collect(home.now());
  if (!merged.ok()) {
    std::fprintf(stderr, "collect: %s\n", merged.error().message().c_str());
    return 1;
  }
  std::printf("merged two-vendor snapshot (%zu sensors), normalized JSON:\n%s\n",
              merged.value().size(), merged.value().ToJson().Pretty().c_str());

  // --- Unified telemetry dump -------------------------------------------------------
  Json telemetry = MetricsSnapshotJson(MetricsRegistry::Global());
  telemetry["collector_stats"] = collector.stats().ToJson();
  telemetry["snapshot_quality"] = merged.value().quality().ToJson();
  std::printf("\ntelemetry at exit:\n%s\n", telemetry.Pretty().c_str());
  return 0;
}
