// Operations walkthrough: the corpus/model lifecycle a deployment runs.
//
//   1. generate the strategy corpus and export it to the text rule format
//      (the shape of a real crawl dump);
//   2. re-import it, train the context feature memory, persist to JSON;
//   3. reload the memory cold (as a gateway would on boot) and judge;
//   4. feed back a human-corrected decision and retrain online (§VI).
#include <cstdio>

#include "automation/rule_io.h"
#include "core/ids.h"
#include "core/model_store.h"
#include "core/online_update.h"
#include "datagen/corpus_generator.h"
#include "instructions/standard_instruction_set.h"

using namespace sidet;

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();

  // --- 1. corpus -> rules.txt -----------------------------------------------
  Result<GeneratedCorpus> generated = GenerateCorpus(CorpusConfig{}, registry);
  if (!generated.ok()) return 1;
  const std::string corpus_text = FormatCorpus(generated.value().corpus);
  std::printf("exported corpus: %zu rules, %zu bytes of rule text\n",
              generated.value().corpus.size(), corpus_text.size());
  std::printf("first rule: %s\n\n",
              corpus_text.substr(corpus_text.find('\n') + 1,
                                 corpus_text.find('\n', corpus_text.find('\n') + 1) -
                                     corpus_text.find('\n') - 1)
                  .c_str());

  // --- 2. rules.txt -> trained memory -> memory.json ----------------------------
  Result<RuleCorpus> imported = ParseCorpus(corpus_text, registry);
  if (!imported.ok()) {
    std::fprintf(stderr, "import: %s\n", imported.error().message().c_str());
    return 1;
  }
  ContextFeatureMemory memory;
  if (const Status trained = memory.TrainFromCorpus(imported.value()); !trained.ok()) {
    std::fprintf(stderr, "train: %s\n", trained.error().message().c_str());
    return 1;
  }
  const std::string memory_path = "/tmp/sidet_memory.json";
  if (const Status saved = SaveMemory(memory, memory_path); !saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.error().message().c_str());
    return 1;
  }
  std::printf("trained %zu family models, persisted to %s\n\n", memory.Trained().size(),
              memory_path.c_str());

  // --- 3. cold boot: reload and judge -------------------------------------------
  Result<ContextFeatureMemory> reloaded = LoadMemory(memory_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load: %s\n", reloaded.error().message().c_str());
    return 1;
  }
  ContextIds ids(SensitiveInstructionDetector(PaperTableThree()),
                 std::move(reloaded).value());

  // A resident's odd-but-genuine habit: boiling the kettle at 04:30.
  SensorSnapshot night_kitchen;
  night_kitchen.Set("occupancy", SensorType::kOccupancy, SensorValue::Binary(true));
  night_kitchen.Set("motion", SensorType::kMotion, SensorValue::Binary(true));
  night_kitchen.Set("voice_command", SensorType::kVoiceCommand, SensorValue::Binary(false));
  const SimTime half_past_four = SimTime::FromDayTime(2, 4, 30);
  const Instruction* kettle = registry.FindByName("kettle.boil");

  Result<Judgement> before = ids.Judge(*kettle, night_kitchen, half_past_four);
  if (!before.ok()) return 1;
  std::printf("kettle.boil at 04:30 before feedback: %s (consistency %.3f)\n",
              before.value().allowed ? "ALLOW" : "BLOCK", before.value().consistency);

  // --- 4. the resident corrects the verdict; retrain online ----------------------
  FeedbackBuffer feedback;
  for (int night = 0; night < 12; ++night) {
    // Twelve mornings of "yes, that was really me".
    (void)feedback.Record(DeviceCategory::kKitchen, "kettle.boil", night_kitchen,
                          SimTime::FromDayTime(2 + night, 4, 30), /*legitimate=*/true);
  }
  ContextFeatureMemory updated;
  Result<ContextFeatureMemory> base = LoadMemory(memory_path);
  if (!base.ok()) return 1;
  updated = std::move(base).value();
  if (const Status retrained =
          RetrainWithFeedback(updated, imported.value(), feedback);
      !retrained.ok()) {
    std::fprintf(stderr, "retrain: %s\n", retrained.error().message().c_str());
    return 1;
  }
  ContextIds ids_after(SensitiveInstructionDetector(PaperTableThree()), std::move(updated));
  Result<Judgement> after = ids_after.Judge(*kettle, night_kitchen, half_past_four);
  if (!after.ok()) return 1;
  std::printf("kettle.boil at 04:30 after %zu feedback records: %s (consistency %.3f)\n",
              feedback.total(), after.value().allowed ? "ALLOW" : "BLOCK",
              after.value().consistency);
  std::remove(memory_path.c_str());
  return 0;
}
