// Serving-layer walkthrough: the TCP gateway in front of the IDS
// (DESIGN.md §12).
//
//   1. train an IDS, persist its model, and boot a gateway home lane from
//      the persisted document (the cold-start path);
//   2. connect over loopback (port 0 -> kernel-chosen port), push the home's
//      ambient sensor context, and judge a night scene — every wire verdict
//      must match a local reference IDS built from the same model document;
//   3. advance the home to midday, push the fresh context, and watch the
//      same instruction flip;
//   4. hot-reload the model over the wire while the connection stays open;
//   5. run a short closed-loop load burst and read back stats + Prometheus
//      metrics through the wire protocol.
//
// Exits non-zero on any mismatch, so CTest can run it as a fixture.
#include <cstdio>

#include "core/ids.h"
#include "core/model_store.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "replay/replay_engine.h"
#include "server/client.h"
#include "server/gateway.h"
#include "server/loadgen.h"
#include "server/router.h"
#include "telemetry/metrics.h"

using namespace sidet;

namespace {

int Fail(const char* what, const std::string& detail = "") {
  std::fprintf(stderr, "gateway_tour: %s %s\n", what, detail.c_str());
  return 1;
}

}  // namespace

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();

  // --- 1. train once, persist, boot the lane from the document ---------------
  Result<ContextIds> built = BuildIdsFromScratch(registry, 2021);
  if (!built.ok()) return Fail("build:", built.error().message());
  ContextIds reference = std::move(built).value();
  const std::string model_path = "/tmp/sidet_gateway_tour_model.json";
  if (const Status saved = SaveMemory(reference.memory(), model_path); !saved.ok()) {
    return Fail("save:", saved.error().message());
  }

  MetricsRegistry metrics;
  BatchPolicy policy;
  policy.max_batch = 32;
  policy.max_delay_us = 1000;
  GatewayRouter router(policy, &metrics);
  if (const Status added = router.AddHomeFromModel("default", model_path); !added.ok()) {
    return Fail("add home:", added.error().message());
  }

  Gateway gateway(router, registry, GatewayConfig{}, &metrics);
  if (const Status started = gateway.Start(); !started.ok()) {
    return Fail("start:", started.error().message());
  }
  std::printf("gateway up on 127.0.0.1:%u\n", gateway.port());

  Result<GatewayClient> connected = GatewayClient::Connect("127.0.0.1", gateway.port());
  if (!connected.ok()) return Fail("connect:", connected.error().message());
  GatewayClient client = std::move(connected).value();

  // --- 2./3. two scenes, wire verdicts vs the local reference IDS -------------
  SmartHome home = BuildDemoHome(7);
  const char* const commands[] = {"window.open", "lock.unlock", "camera.disable", "tv.on"};
  int id = 0;
  for (const int hour : {3, 12}) {  // night burglary window, then midday
    while (home.now().hour() < hour) home.Step(kSecondsPerHour);
    const SensorSnapshot snapshot = home.Snapshot();

    Json context = Json::Object();
    context["op"] = "context";
    context["id"] = ++id;
    context["snapshot"] = snapshot.ToJson();
    Result<Json> ack = client.Call(context);
    if (!ack.ok() || !ack.value().bool_or("ok", false)) return Fail("context push");

    std::printf("-- %02d:00 --\n", hour);
    for (const char* name : commands) {
      const Instruction* instruction = registry.FindByName(name);
      if (instruction == nullptr) return Fail("unknown instruction", name);
      Json judge = Json::Object();
      judge["op"] = "judge";
      judge["id"] = ++id;
      judge["instruction"] = name;
      judge["time"] = home.now().seconds();
      Result<Json> verdict = client.Call(judge);
      if (!verdict.ok() || !verdict.value().bool_or("ok", false)) {
        return Fail("judge failed:", name);
      }
      Result<Judgement> local = reference.Judge(*instruction, snapshot, home.now());
      const bool allowed = verdict.value().bool_or("allowed", false);
      std::printf("  %-12s %s  (%s)\n", name, allowed ? "ALLOW" : "BLOCK",
                  verdict.value().string_or("reason", "").c_str());
      if (!local.ok() || local.value().allowed != allowed ||
          local.value().sensitive != verdict.value().bool_or("sensitive", false)) {
        return Fail("wire verdict diverges from local reference on", name);
      }
    }
  }

  // --- 4. hot reload over the wire, connection stays open ---------------------
  Json reload = Json::Object();
  reload["op"] = "reload";
  reload["id"] = ++id;
  reload["path"] = model_path;
  Result<Json> reloaded = client.Call(reload, /*timeout_ms=*/60000);
  if (!reloaded.ok() || !reloaded.value().bool_or("ok", false)) return Fail("reload");
  if (router.reloads() != 1) return Fail("reload count");
  std::printf("hot reload ok (lane reloads=1, connection survived)\n");

  // --- 5. a short load burst, then stats/metrics over the wire ----------------
  LoadOptions load;
  load.connections = 2;
  load.pipeline = 16;
  load.duration_ms = 250;
  load.request_tails = {
      JudgeRequestTail("default", "window.open", home.now()),
      JudgeRequestTail("default", "tv.on", home.now()),
  };
  const LoadReport report = RunLoad("127.0.0.1", gateway.port(), load);
  if (report.sent == 0 || report.responses != report.sent || report.errors != 0) {
    return Fail("load burst lost responses");
  }
  std::printf("load: %llu judged at %.0f rps, p99 %.2f ms\n",
              static_cast<unsigned long long>(report.ok), report.throughput_rps,
              report.p99_ms);

  Json stats = Json::Object();
  stats["op"] = "stats";
  stats["id"] = ++id;
  Result<Json> stats_response = client.Call(stats);
  if (!stats_response.ok()) return Fail("stats");
  const Json* lane = stats_response.value().find("homes") != nullptr
                         ? stats_response.value().find("homes")->find("default")
                         : nullptr;
  if (lane == nullptr) return Fail("stats missing lane");
  std::printf("lane: %.0f batches, %.0f completed, fingerprint %s\n",
              lane->number_or("batches", 0), lane->number_or("completed", 0),
              lane->string_or("model_fingerprint", "?").c_str());

  Json prom = Json::Object();
  prom["op"] = "metrics";
  prom["id"] = ++id;
  Result<Json> prom_response = client.Call(prom);
  if (!prom_response.ok()) return Fail("metrics");
  const std::string exposition = prom_response.value().string_or("metrics", "");
  if (exposition.find("sidet_gateway_batches_total") == std::string::npos) {
    return Fail("metrics exposition missing gateway counters");
  }
  std::printf("metrics exposition: %zu bytes of Prometheus text\n", exposition.size());

  gateway.Shutdown();
  std::printf("gateway tour ok\n");
  return 0;
}
