// Quickstart: build the full IDS from scratch, then judge one legitimate and
// one out-of-context sensitive instruction against a live simulated home.
//
//   1. survey 340 users -> sensitive-instruction profile (the detector);
//   2. generate the automation-strategy corpus and train one decision-tree
//      context model per device family (the feature memory);
//   3. drive a simulated home and ask the judger about window.open in two
//      very different contexts.
#include <cstdio>

#include "core/ids.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"

using namespace sidet;

int main() {
  // The instruction catalogue — in a real deployment this is recovered from
  // gateway firmware (see collector_tour.cpp and src/firmware).
  const InstructionRegistry registry = BuildStandardInstructionSet();

  std::printf("Training the context IDS (survey -> corpus -> per-device trees)...\n");
  Result<ContextIds> ids = BuildIdsFromScratch(registry, /*seed=*/2021);
  if (!ids.ok()) {
    std::fprintf(stderr, "failed: %s\n", ids.error().message().c_str());
    return 1;
  }
  std::printf("Trained models for %zu device families.\n\n",
              ids.value().memory().Trained().size());

  // A four-room simulated smart home, two residents, 16 sensors.
  SmartHome home = BuildDemoHome(/*seed=*/7);
  const Instruction* window_open = registry.FindByName("window.open");

  // --- Scene 1: 3 a.m., everyone asleep, nothing wrong -------------------------
  home.Step(3 * kSecondsPerHour);  // advance to 03:01
  Result<Judgement> night =
      ids.value().Judge(*window_open, home.Snapshot(), home.now());
  std::printf("[%s] window.open -> %s (%s)\n", home.now().ToString().c_str(),
              night.ok() && night.value().allowed ? "ALLOW" : "BLOCK",
              night.ok() ? night.value().reason.c_str() : night.error().message().c_str());

  // --- Scene 2: a genuine kitchen fire ----------------------------------------
  home.StartFire();
  home.Step(10 * kSecondsPerMinute);  // smoke spreads, temperature climbs
  Result<Judgement> fire =
      ids.value().Judge(*window_open, home.Snapshot(), home.now());
  std::printf("[%s] window.open -> %s (%s)\n", home.now().ToString().c_str(),
              fire.ok() && fire.value().allowed ? "ALLOW" : "BLOCK",
              fire.ok() ? fire.value().reason.c_str() : fire.error().message().c_str());

  // --- What the window model learned -------------------------------------------
  // (The operational model trains with spoof-attack negatives, so physical
  // consequence channels may outrank the raw hazard bits; bench_fig6
  // regenerates the paper's spoof-less Fig 6 weights.)
  std::printf("\nOperational window-model feature weights:\n");
  const TrainedDeviceModel* model =
      ids.value().memory().Model(DeviceCategory::kWindowAndLock);
  for (const auto& [name, weight] : model->tree.RankedImportances()) {
    if (weight > 0.0) std::printf("  %-18s %.3f\n", name.c_str(), weight);
  }
  return 0;
}
