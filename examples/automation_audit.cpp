// Audit the automation-strategy corpus the way §IV.C and §V do: per-family
// rule mix, popularity concentration (Fig 5), and the camera-warning census
// (Fig 7). Also exports the window training dataset as CSV for external
// analysis.
#include <cstdio>

#include "datagen/corpus_generator.h"
#include "datagen/device_dataset.h"
#include "instructions/standard_instruction_set.h"
#include "util/table.h"

using namespace sidet;

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> generated = GenerateCorpus(CorpusConfig{}, registry);
  if (!generated.ok()) {
    std::fprintf(stderr, "corpus: %s\n", generated.error().message().c_str());
    return 1;
  }
  const RuleCorpus& corpus = generated.value().corpus;

  std::printf("Strategy corpus: %zu rules, %llu total adopting users\n\n", corpus.size(),
              static_cast<unsigned long long>(corpus.TotalUsers()));

  TextTable mix({"Device family", "Rules", "Users", "Most popular strategy"});
  for (const DeviceCategory category : AllDeviceCategories()) {
    const std::vector<const Rule*> rules = corpus.ForCategory(category);
    if (rules.empty()) continue;
    std::uint64_t users = 0;
    const Rule* top = rules.front();
    for (const Rule* rule : rules) {
      users += rule->user_count;
      if (rule->user_count > top->user_count) top = rule;
    }
    std::string headline = top->description;
    if (headline.size() > 44) headline = headline.substr(0, 41) + "...";
    mix.AddRow({std::string(DisplayName(category)), std::to_string(rules.size()),
                std::to_string(users), headline});
  }
  std::printf("%s\n", mix.Render().c_str());

  std::printf("Camera-warning linkage census (Fig 7):\n");
  BarChart census("", 40);
  for (const auto& [trigger, count] : generated.value().camera_census) {
    census.Add(trigger, count);
  }
  std::printf("%s\n", census.Render().c_str());

  // Show a few concrete strategies, the Table IV way.
  std::printf("Sample strategies:\n");
  int shown = 0;
  for (const Rule* rule : corpus.ByPopularity()) {
    std::printf("  [%6u users] WHEN %s DO %s\n      \"%s\"\n", rule->user_count,
                rule->condition_source.c_str(), rule->action.c_str(),
                rule->description.c_str());
    if (++shown == 5) break;
  }

  // Export the window dataset for external tools.
  Result<DeviceDataset> window = BuildDeviceDataset(
      corpus, DefaultConfigFor(DeviceCategory::kWindowAndLock));
  if (window.ok()) {
    const std::string csv = window.value().data.ToCsv();
    std::printf("\nWindow training dataset: %zu rows x %zu features "
                "(%.0f%% positive). First lines of CSV:\n",
                window.value().data.size(), window.value().data.num_features(),
                100.0 * window.value().data.PositiveFraction());
    std::printf("%s", csv.substr(0, csv.find('\n', csv.find('\n') + 1) + 1).c_str());
  }
  return 0;
}
