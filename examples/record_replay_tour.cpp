// Observability walkthrough: the flight-recorder / replay / drift loop a
// deployment runs (DESIGN.md §11).
//
//   1. attach a FlightRecorder (with a drift tee) to a live IDS and record a
//      day of judged traffic — batches and single verdicts;
//   2. shut down without ceremony: the recorder's destructor drains the ring
//      and seals the session with its footer (flush-on-shutdown);
//   3. load the session back and replay it through the same model — the
//      verdict diff must be empty, bit for bit;
//   4. replay it through a *different* model and read the diff as a
//      what-would-change report;
//   5. evaluate drift against the training baseline and run the stock alert
//      pack over the IDS metrics.
#include <cstdio>

#include "core/ids.h"
#include "core/model_store.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "replay/drift_monitor.h"
#include "replay/flight_recorder.h"
#include "replay/replay_engine.h"
#include "telemetry/metrics.h"

using namespace sidet;

int main() {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> built = BuildIdsFromScratch(registry, 2021);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.error().message().c_str());
    return 1;
  }
  ContextIds ids = std::move(built).value();

  MetricsRegistry registry_metrics;
  ids.AttachTelemetry(&registry_metrics);
  DriftMonitor drift(BaselineFromMemory(ids.memory()));
  drift.AttachTelemetry(&registry_metrics);

  // --- 1. record a day of traffic ------------------------------------------------
  const std::string session_path = "/tmp/sidet_session.ndjson";
  SmartHome home = BuildDemoHome(4242);
  {
    FlightRecorderOptions options;
    options.path = session_path;
    options.flush_interval_ms = 20;
    FlightRecorder recorder(options);
    recorder.SetDriftMonitor(&drift);  // drift streams off the flusher thread
    if (const Status started = recorder.StartSession(ids.memory().Fingerprint());
        !started.ok()) {
      std::fprintf(stderr, "start: %s\n", started.error().message().c_str());
      return 1;
    }
    ids.SetVerdictObserver(&recorder);

    std::size_t judged = 0;
    for (int hour = 0; hour < 24; ++hour) {
      home.Step(kSecondsPerHour);
      const SensorSnapshot snapshot = home.Snapshot();
      // The hour's command burst goes through the batch path...
      std::vector<JudgeRequest> burst;
      for (const Instruction& instruction : registry.all()) {
        burst.push_back({&instruction, &snapshot, home.now()});
      }
      judged += ids.JudgeBatch(burst, 1).size();
      // ...and one stray manual command through the single path.
      const Instruction* stray = registry.FindByName(hour % 2 ? "lock.unlock" : "tv.on");
      if (stray != nullptr && ids.Judge(*stray, snapshot, home.now()).ok()) ++judged;
    }
    ids.SetVerdictObserver(nullptr);
    std::printf("recorded %zu verdicts to %s\n", judged, session_path.c_str());
    // --- 2. no Flush(), no Close(): scope exit seals the session ----------------
  }

  // --- 3. load + same-model replay ----------------------------------------------
  Result<RecordedSession> session = LoadSession(session_path);
  if (!session.ok()) {
    std::fprintf(stderr, "load: %s\n", session.error().message().c_str());
    return 1;
  }
  std::printf("session: %zu events, %zu snapshots, %llu dropped, model %s\n",
              session.value().events.size(), session.value().snapshots.size(),
              static_cast<unsigned long long>(session.value().dropped),
              session.value().model_fingerprint.c_str());

  const std::string model_path = "/tmp/sidet_session_model.json";
  if (!SaveMemory(ids.memory(), model_path).ok()) return 1;
  Result<ContextFeatureMemory> reloaded = LoadMemory(model_path);
  if (!reloaded.ok()) return 1;
  ContextIds same_model = MakeReplayIds(std::move(reloaded).value());
  const ReplayReport same = Replay(session.value(), same_model, /*threads=*/1);
  std::printf("same-model replay: %zu replayed, %zu identical, %zu flips -> %s\n",
              same.replayed, same.identical, same.flips,
              same.bit_identical() ? "bit-identical" : "DIVERGED");
  if (!same.bit_identical()) return 1;

  // --- 4. what would a different model have done? --------------------------------
  Result<ContextIds> other = BuildIdsFromScratch(registry, 7);
  if (!other.ok()) return 1;
  const ReplayReport diff = Replay(session.value(), other.value(), /*threads=*/1);
  std::printf("new-model replay: %zu flips (%zu allow->block, %zu block->allow), "
              "max consistency delta %.3f\n",
              diff.flips, diff.allow_to_block, diff.block_to_allow,
              diff.max_consistency_delta);
  for (const VerdictFlip& flip : diff.flip_samples) {
    std::printf("  flip: %-18s %s -> %s (%.3f -> %.3f)\n", flip.instruction.c_str(),
                flip.recorded_allowed ? "ALLOW" : "BLOCK",
                flip.replayed_allowed ? "ALLOW" : "BLOCK", flip.recorded_consistency,
                flip.replayed_consistency);
    if (&flip - diff.flip_samples.data() >= 4) break;  // a taste, not the log
  }

  // --- 5. drift + alerts ----------------------------------------------------------
  const DriftReport drift_report = drift.Evaluate();
  std::printf("drift: %llu verdicts, max allow-rate delta %.3f, max feature z %.2f\n",
              static_cast<unsigned long long>(drift_report.verdicts),
              drift_report.max_rate_delta, drift_report.max_feature_z);

  AlertEvaluator alerts;
  for (AlertRule& rule : DefaultIdsAlerts()) alerts.AddRule(std::move(rule));
  for (const AlertState& state : alerts.Evaluate(registry_metrics)) {
    std::printf("alert %-24s %s (value %.4f)\n", state.name.c_str(),
                !state.has_data ? "no data" : state.firing ? "FIRING" : "ok",
                state.value);
  }

  std::remove(session_path.c_str());
  std::remove(model_path.c_str());
  return 0;
}
